#!/usr/bin/env python
"""Watch the online predictor learn a user's behaviour job by job.

Builds the full prediction pipeline by hand -- Table 2 features, degree-2
polynomial basis, NAG optimiser, E-Loss -- and feeds it a single
repetitive user with occasional failures, printing how predictions
converge and how the asymmetric loss biases them below the truth.

Run: ``python examples/online_prediction_demo.py``
"""

import numpy as np

from repro.predict import E_LOSS, MLPredictor
from repro.sim.results import JobRecord
from repro.workload import Job


def make_job(job_id: int, submit: float, runtime: float) -> Job:
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        processors=8,
        requested_time=4 * 3600.0,  # the user always asks for 4 hours
        user=1,
    )


def main() -> None:
    rng = np.random.default_rng(7)
    predictor = MLPredictor(E_LOSS)

    print("user behaviour: ~45 min jobs (lognormal), 5% crash early;")
    print("requested time: always 4 hours\n")
    print(f"{'job':>4s} {'actual(s)':>10s} {'predicted(s)':>13s} {'error':>9s}")

    now = 0.0
    shown = {1, 2, 3, 5, 10, 20, 40, 80, 120, 160, 200}
    errors_late = []
    for i in range(1, 201):
        runtime = float(np.clip(rng.lognormal(np.log(2700.0), 0.35), 60, 14000))
        if rng.random() < 0.05:
            runtime = float(rng.uniform(20.0, 120.0))  # crash
        job = make_job(i, now, runtime)
        record = JobRecord(job=job)
        predicted = predictor.predict(record, now)
        predictor.on_start(record, now)
        predictor.on_finish(record, now + runtime)
        if i in shown:
            print(f"{i:4d} {runtime:10.0f} {predicted:13.0f} {predicted - runtime:+9.0f}")
        if i > 100:
            errors_late.append(predicted - runtime)
        now += runtime + rng.uniform(60, 900)

    errors_late = np.array(errors_late)
    print(f"\nafter 100 warm-up jobs:")
    print(f"  median prediction error : {np.median(errors_late):+.0f} s")
    print(f"  under-prediction rate   : {np.mean(errors_late < 0):.0%}")
    print(
        "\nThe E-Loss penalises over-prediction quadratically but"
        "\nunder-prediction only linearly, so the learned predictions sit"
        "\ndeliberately below the actual runtimes -- which is what lets"
        "\nEASY-SJBF backfill aggressively (paper Section 6.4)."
    )


if __name__ == "__main__":
    main()
