#!/usr/bin/env python
"""Quickstart: simulate EASY backfilling with and without learned predictions.

Generates a synthetic KTH-SP2-class workload, runs three schedulers on it
and prints their average bounded slowdowns:

* standard EASY (user-requested running times);
* EASY++ (AVE2 prediction + incremental correction + SJBF order);
* the paper's winning triple (E-Loss learning + incremental + SJBF).

Run: ``python examples/quickstart.py``
"""

from repro import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    get_trace,
    run_triple_on_trace,
)


def main() -> None:
    trace = get_trace("KTH-SP2", n_jobs=1500)
    stats = trace.stats()
    print(f"workload: {stats.describe()}\n")

    print(f"{'scheduling approach':45s} {'AVEbsld':>8s} {'corrections':>12s}")
    for triple in (EASY_TRIPLE, EASYPP_TRIPLE, ELOSS_TRIPLE):
        result = run_triple_on_trace(trace, triple)
        print(
            f"{triple.describe():45s} {result.avebsld():8.1f} "
            f"{result.total_corrections():12d}"
        )

    print(
        "\nLower AVEbsld is better.  The learning-based triple backfills"
        "\nmore aggressively because its running-time predictions are far"
        "\ntighter than the users' requested times."
    )


if __name__ == "__main__":
    main()
