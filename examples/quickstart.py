#!/usr/bin/env python
"""Quickstart: simulate EASY backfilling with and without learned predictions.

Generates a synthetic KTH-SP2-class workload and runs three scheduling
scenarios on it, each described declaratively as a :class:`repro.CellSpec`
(the same object that keys the campaign cache and the distributed queue):

* standard EASY (user-requested running times);
* EASY++ (AVE2 prediction + incremental correction + SJBF order);
* the paper's winning triple (E-Loss learning + incremental + SJBF).

Run: ``python examples/quickstart.py``.  Set ``REPRO_EXAMPLE_JOBS`` to
shrink the workload (CI smoke runs use a few hundred jobs).
"""

import os

from repro import CellSpec, get_trace, run_spec_result

N_JOBS = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1500"))
LOG = "KTH-SP2"

SCENARIOS = [
    ("EASY (requested times)", "requested", None, "easy"),
    ("EASY++ (AVE2 + incremental + SJBF)", "ave2", "incremental", "easy-sjbf"),
    ("E-Loss + incremental + SJBF (paper)", "ml:sq-lin-large-area", "incremental", "easy-sjbf"),
]


def main() -> None:
    trace = get_trace(LOG, n_jobs=N_JOBS)
    stats = trace.stats()
    print(f"workload: {stats.describe()}\n")

    print(f"{'scheduling approach':45s} {'AVEbsld':>8s} {'corrections':>12s}")
    for label, predictor, corrector, scheduler in SCENARIOS:
        spec = CellSpec.make(
            workload={"log": LOG, "n_jobs": N_JOBS},
            predictor=predictor,
            corrector=corrector,
            scheduler=scheduler,
        )
        result = run_spec_result(spec)
        print(
            f"{label:45s} {result.avebsld():8.1f} "
            f"{result.total_corrections():12d}"
        )

    print(
        "\nLower AVEbsld is better.  The learning-based triple backfills"
        "\nmore aggressively because its running-time predictions are far"
        "\ntighter than the users' requested times."
    )


if __name__ == "__main__":
    main()
