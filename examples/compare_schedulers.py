#!/usr/bin/env python
"""Compare scheduling algorithms across all six workload classes.

Runs pure FCFS, EASY, EASY-SJBF and conservative backfilling (all with
user-requested times, plus a clairvoyant reference) on each archive log
and prints AVEbsld and utilization -- the classic "how much does
backfilling buy, and what do predictions add on top" picture.

Run: ``python examples/compare_schedulers.py``.  Set
``REPRO_EXAMPLE_JOBS`` to shrink the workloads for smoke runs.
"""

import os

from repro import get_trace, simulate
from repro.predict import ClairvoyantPredictor, RequestedTimePredictor
from repro.sched import make_scheduler
from repro.workload import LOG_NAMES

N_JOBS = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1000"))

SCHEDULERS = ("fcfs", "easy", "easy-sjbf", "conservative")


def main() -> None:
    print(
        f"{'log':12s} {'scheduler':14s} {'predictions':12s} "
        f"{'AVEbsld':>9s} {'util':>6s} {'max queue':>10s}"
    )
    for log in LOG_NAMES:
        trace = get_trace(log, n_jobs=N_JOBS)
        for scheduler_name in SCHEDULERS:
            from repro.sim import Simulator

            sim = Simulator(
                trace, make_scheduler(scheduler_name), RequestedTimePredictor()
            )
            result = sim.run()
            print(
                f"{log:12s} {scheduler_name:14s} {'requested':12s} "
                f"{result.avebsld():9.1f} {result.utilization():6.2f} "
                f"{sim.stats.max_queue_length:10d}"
            )
        # clairvoyant EASY-SJBF as the non-achievable reference
        result = simulate(
            trace, make_scheduler("easy-sjbf"), ClairvoyantPredictor()
        )
        print(
            f"{log:12s} {'easy-sjbf':14s} {'clairvoyant':12s} "
            f"{result.avebsld():9.1f} {result.utilization():6.2f} {'-':>10s}"
        )
        print()


if __name__ == "__main__":
    main()
