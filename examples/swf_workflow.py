#!/usr/bin/env python
"""Work with Standard Workload Format files end to end.

1. synthesise a Curie-class trace and write it as an SWF file (the
   format of the Parallel Workloads Archive);
2. parse it back, apply the standard cleaning filters;
3. simulate the paper's winning triple on the cleaned trace.

This is the exact workflow for running the library on *real* archive
logs: drop a ``.swf`` file in place of the synthetic one (or set
``REPRO_SWF_DIR``) and everything downstream is unchanged.

Run: ``python examples/swf_workflow.py``
"""

import os
import tempfile

from repro import ELOSS_TRIPLE, get_trace, load_swf, run_triple_on_trace, save_swf
from repro.workload import standard_clean


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-swf-")
    path = os.path.join(workdir, "Curie.swf")

    # 1. synthesise and export
    trace = get_trace("Curie", n_jobs=800)
    save_swf(trace, path)
    print(f"wrote {path} ({os.path.getsize(path)} bytes)")

    # 2. parse and clean
    loaded, report = load_swf(path)
    print(
        f"parsed {report.n_jobs} jobs ({report.n_skipped} skipped); "
        f"header keys: {sorted(report.header)[:4]}..."
    )
    cleaned = standard_clean(loaded)
    print(f"after standard cleaning: {len(cleaned)} jobs")
    print(f"workload: {cleaned.stats().describe()}\n")

    # 3. simulate the winning triple
    result = run_triple_on_trace(cleaned, ELOSS_TRIPLE)
    print(f"triple      : {ELOSS_TRIPLE.describe()}")
    print(f"AVEbsld     : {result.avebsld():.1f}")
    print(f"utilization : {result.utilization():.2f}")
    print(f"corrections : {result.total_corrections()}")


if __name__ == "__main__":
    main()
