#!/usr/bin/env python
"""Work with Standard Workload Format files end to end.

1. synthesise a Curie-class trace and write it as an SWF file (the
   format of the Parallel Workloads Archive);
2. parse it back, apply the standard cleaning filters;
3. simulate the paper's winning component triple on the cleaned trace
   via :func:`repro.run_components_on_trace` (registry spellings, the
   same stack spec files expand to).

This is the exact workflow for running the library on *real* archive
logs: drop a ``.swf`` file in place of the synthetic one (or set
``REPRO_SWF_DIR``) and everything downstream is unchanged.

Run: ``python examples/swf_workflow.py``.  Set ``REPRO_EXAMPLE_JOBS``
to shrink the workload for smoke runs.
"""

import os
import tempfile

from repro import get_trace, load_swf, run_components_on_trace, save_swf
from repro.workload import standard_clean

N_JOBS = int(os.environ.get("REPRO_EXAMPLE_JOBS", "800"))

WINNER = ("ml:sq-lin-large-area", "incremental", "easy-sjbf")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-swf-")
    path = os.path.join(workdir, "Curie.swf")

    # 1. synthesise and export
    trace = get_trace("Curie", n_jobs=N_JOBS)
    save_swf(trace, path)
    print(f"wrote {path} ({os.path.getsize(path)} bytes)")

    # 2. parse and clean
    loaded, report = load_swf(path)
    print(
        f"parsed {report.n_jobs} jobs ({report.n_skipped} skipped); "
        f"header keys: {sorted(report.header)[:4]}..."
    )
    cleaned = standard_clean(loaded)
    print(f"after standard cleaning: {len(cleaned)} jobs")
    print(f"workload: {cleaned.stats().describe()}\n")

    # 3. simulate the winning triple
    predictor, corrector, scheduler = WINNER
    result = run_components_on_trace(cleaned, predictor, corrector, scheduler)
    print(f"components  : {predictor} + {corrector} + {scheduler}")
    print(f"AVEbsld     : {result.avebsld():.1f}")
    print(f"utilization : {result.utilization():.2f}")
    print(f"corrections : {result.total_corrections()}")


if __name__ == "__main__":
    main()
