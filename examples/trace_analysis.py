#!/usr/bin/env python
"""Characterise a workload and visualise a schedule, all in the terminal.

1. synthesise a SDSC-BLUE-class trace and print its population statistics
   (runtime/width distributions, estimate accuracy, arrival pattern);
2. run EASY and the paper's winning triple on it, each spelled as
   registry components and run via :func:`repro.run_components_on_trace`;
3. render machine utilization over time for both schedules and show where
   the learned predictions reclaim backfilling holes.

Run: ``python examples/trace_analysis.py``.  Set ``REPRO_EXAMPLE_JOBS``
to shrink the workload for smoke runs.
"""

import os

import numpy as np

from repro import get_trace, run_components_on_trace
from repro.sim import ascii_timeline, queue_timeline

N_JOBS = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1500"))

SCENARIOS = [
    ("EASY (requested times)", "requested", None, "easy"),
    ("E-Loss + incremental + SJBF (paper)", "ml:sq-lin-large-area", "incremental", "easy-sjbf"),
]


def percentile_row(label, values, unit=""):
    q = np.percentile(values, [10, 50, 90, 99])
    return (
        f"  {label:24s} p10={q[0]:10.0f}{unit}  median={q[1]:10.0f}{unit}  "
        f"p90={q[2]:10.0f}{unit}  p99={q[3]:10.0f}{unit}"
    )


def main() -> None:
    trace = get_trace("SDSC-BLUE", n_jobs=N_JOBS)
    stats = trace.stats()
    print(f"workload: {stats.describe()}\n")

    runtimes = np.array([j.runtime for j in trace])
    widths = np.array([j.processors for j in trace])
    ratios = np.array([j.overestimation_factor for j in trace])
    inter = np.diff(np.array([j.submit_time for j in trace]))
    print("population characteristics:")
    print(percentile_row("runtime", runtimes, "s"))
    print(percentile_row("width (processors)", widths))
    print(percentile_row("requested/actual", ratios, "x"))
    print(percentile_row("inter-arrival", inter, "s"))

    # how modal are the requested times? (the paper's Section 2 premise)
    requested = np.array([j.requested_time for j in trace])
    values, counts = np.unique(requested, return_counts=True)
    top = np.argsort(counts)[::-1][:5]
    share = counts[top].sum() / len(trace)
    print(
        f"\n  requested times: {len(values)} distinct values; the top 5 cover "
        f"{share:.0%} of jobs\n"
    )

    for label, predictor, corrector, scheduler in SCENARIOS:
        result = run_components_on_trace(trace, predictor, corrector, scheduler)
        _times, depth = queue_timeline(result)
        print(f"=== {label} ===")
        print(f"AVEbsld {result.avebsld():.1f}, max queue depth {depth.max()}")
        print(ascii_timeline(result, width=70, height=8))
        print()


if __name__ == "__main__":
    main()
