#!/usr/bin/env python
"""Explore the paper's loss-function design space on one workload.

The paper's key design question (Section 4.2): which combination of
under/over-prediction branch and job weighting trains the most *useful*
predictor for backfilling?  This example sweeps all 20 loss
configurations (Table 5) on a Curie-class workload inside the winning
scheduling context (Incremental + EASY-SJBF) and reports both prediction
metrics and the resulting AVEbsld -- demonstrating the paper's finding
that prediction accuracy (MAE) and scheduling usefulness diverge.

Each configuration is spelled the registry way (``"ml:<loss key>"``) and
run on the shared trace with :func:`repro.run_components_on_trace` -- the
same component stack a ``[[grid]]`` spec file expands to.

Run: ``python examples/custom_loss_functions.py``.  Set
``REPRO_EXAMPLE_JOBS`` to shrink the workload for smoke runs.
"""

import os

from repro import E_LOSS, get_trace, run_components_on_trace
from repro.metrics import mean_absolute_error, mean_loss
from repro.predict import all_loss_specs

N_JOBS = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1200"))


def main() -> None:
    trace = get_trace("Curie", n_jobs=N_JOBS)
    print(f"workload: {trace.stats().describe()}\n")

    print(
        f"{'loss (over-under-weight)':32s} {'AVEbsld':>8s} "
        f"{'MAE(s)':>8s} {'mean E-Loss':>12s}"
    )
    rows = []
    for spec in all_loss_specs():
        result = run_components_on_trace(
            trace, f"ml:{spec.key}", "incremental", "easy-sjbf"
        )
        rows.append(
            (
                spec.key,
                result.avebsld(),
                mean_absolute_error(result),
                mean_loss(result, E_LOSS),
            )
        )
    rows.sort(key=lambda r: r[1])
    for key, avebsld, mae, eloss in rows:
        marker = "  <- paper's E-Loss" if key == E_LOSS.key else ""
        print(f"{key:32s} {avebsld:8.1f} {mae:8.0f} {eloss:12.3g}{marker}")

    best = rows[0]
    print(
        f"\nbest loss on this workload: {best[0]} (AVEbsld {best[1]:.1f})\n"
        "note how the MAE ranking differs from the AVEbsld ranking: the\n"
        "most accurate predictor is not the most useful one for EASY."
    )


if __name__ == "__main__":
    main()
