"""Figure 4 -- ECDF of prediction errors on the Curie-class log.

Series: E-Loss regression, Requested Time, squared-loss regression and
AVE2.  Shapes: the E-Loss curve sits left of the squared-loss curve
(more under-prediction, by design of the asymmetric loss); Requested
Time never under-predicts, so its ECDF is 0 for negative errors.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import ascii_ecdf_chart

from conftest import write_artifact

HOUR = 3600.0


def test_fig4(curie_prediction_analysis, benchmark):
    analysis, _result, _procs = curie_prediction_analysis
    errors = {name: analysis.errors(name) / HOUR for name in analysis.predictions}

    chart = ascii_ecdf_chart(
        errors,
        x_min=-24.0,
        x_max=24.0,
        x_label="prediction error, hours (f - p)",
    )
    header = "Figure 4: ECDF of prediction errors (Curie-class log)\n"
    print("\n" + write_artifact("fig4.txt", header + chart))

    eloss = analysis.errors("E-Loss Regression")
    squared = analysis.errors("Squared Loss Regression")
    requested = analysis.errors("Requested Time")

    # Shape 1: Requested Time is an upper bound -- never under-predicts.
    assert (requested >= -1e-9).all()

    # Shape 2: the E-Loss ECDF is left-shifted vs squared loss: strictly
    # more mass below zero (the paper's "more under-prediction errors").
    under_eloss = float(np.mean(eloss < 0))
    under_squared = float(np.mean(squared < 0))
    assert under_eloss > under_squared, (
        f"E-Loss under-prediction rate {under_eloss:.2f} must exceed "
        f"squared-loss rate {under_squared:.2f}"
    )

    # Shape 3: E-Loss under-predicts the majority of jobs.
    assert under_eloss > 0.5

    # Benchmark: ECDF evaluation over a fine grid for all four series.
    grid = np.linspace(-24.0, 24.0, 2000)

    def evaluate_ecdfs():
        from repro.metrics import ecdf_at

        return {name: ecdf_at(v, grid) for name, v in errors.items()}

    benchmark(evaluate_ecdfs)
