"""Table 8 -- MAE vs mean E-Loss of the prediction techniques (Curie).

Paper's values (seconds):

    Technique        MAE     Mean E-Loss
    AVE2             5217    10.2e8
    E-Loss learning  6762    2.35e5

Shape: AVE2 is competitive (or better) on symmetric MAE yet loses to the
E-Loss-trained model by *orders of magnitude* on the scheduling-aware
E-Loss -- accuracy and usefulness for backfilling are different things.
"""

from __future__ import annotations

from repro.core.prediction_analysis import table8_rows
from repro.core.reporting import format_table
from repro.predict import E_LOSS, MLPredictor

from conftest import write_artifact


def test_table8(curie_prediction_analysis, benchmark):
    analysis, result, processors = curie_prediction_analysis
    rows = table8_rows(analysis, processors)
    rendered = [
        (name, f"{mae:.0f}", f"{eloss:.3g}") for name, mae, eloss in rows
    ]
    table = format_table(
        ["Prediction Technique", "MAE (s)", "Mean E-Loss"],
        rendered,
        title="Table 8: prediction error vs E-Loss on the Curie-class log "
        "(paper: AVE2 MAE 5217 / E-Loss 10.2e8; learning MAE 6762 / 2.35e5)",
    )
    print("\n" + write_artifact("table8.txt", table))

    scores = {name: (mae, eloss) for name, mae, eloss in rows}
    ave2_mae, ave2_eloss = scores["AVE2"]
    ml_mae, ml_eloss = scores["E-Loss Regression"]

    # Shape 1: the E-Loss model crushes AVE2 on the E-Loss metric.
    assert ml_eloss < ave2_eloss / 10.0, (
        f"E-Loss learning ({ml_eloss:.3g}) must beat AVE2 ({ave2_eloss:.3g}) "
        "by a wide margin on mean E-Loss"
    )
    # Shape 2: on plain MAE the two are within the same order of magnitude
    # (the paper's AVE2 is somewhat better; either may win on a synthetic
    # draw, but the E-Loss model must not dominate both metrics).
    assert ml_mae < ave2_mae * 10.0 and ave2_mae < ml_mae * 10.0

    # Benchmark: online predictor throughput (predict + learn) -- the cost
    # a production scheduler would pay per job.
    from repro.sim.results import JobRecord

    def train_predictor():
        pred = MLPredictor(E_LOSS)
        for rec in result:
            clone = JobRecord(job=rec.job)
            pred.predict(clone, rec.submit_time)
            pred.on_start(clone, rec.submit_time)
            pred.on_finish(clone, rec.submit_time + rec.runtime)
        return pred.n_updates

    benchmark(train_predictor)
