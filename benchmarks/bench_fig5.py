"""Figure 5 -- ECDF of the predicted values themselves (Curie-class log).

Series: the actual runtimes plus every prediction technique.  Shapes:
the E-Loss model is strongly biased toward small predictions (its ECDF
rises fastest); Requested Time produces the largest values (rightmost
curve); the actual-value curve sits between them.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import ascii_ecdf_chart

from conftest import write_artifact

HOUR = 3600.0


def test_fig5(curie_prediction_analysis, benchmark):
    analysis, result, _procs = curie_prediction_analysis
    series = {"Actual value": analysis.runtimes / HOUR}
    for name, values in analysis.predictions.items():
        series[name] = values / HOUR

    chart = ascii_ecdf_chart(
        series,
        x_min=0.0,
        x_max=24.0,
        x_label="predicted value, hours",
    )
    header = "Figure 5: ECDF of predicted values (Curie-class log)\n"
    print("\n" + write_artifact("fig5.txt", header + chart))

    def median(name: str) -> float:
        return float(np.median(series[name]))

    # Shape 1: the E-Loss model is biased towards small predictions --
    # its median prediction is below the median actual value.
    assert median("E-Loss Regression") <= median("Actual value") + 1e-9

    # Shape 2: requested times are the largest values of all series.
    for name in series:
        if name != "Requested Time":
            assert median("Requested Time") >= median(name), name

    # Shape 3: the E-Loss curve dominates (is above) the requested-time
    # curve everywhere: for any threshold, more E-Loss predictions fall
    # below it.
    from repro.metrics import ecdf_at

    grid = np.linspace(0.0, 24.0, 200)
    ecdf_eloss = ecdf_at(series["E-Loss Regression"], grid)
    ecdf_req = ecdf_at(series["Requested Time"], grid)
    assert (ecdf_eloss >= ecdf_req - 1e-9).all()

    benchmark(lambda: {name: np.median(v) for name, v in series.items()})
