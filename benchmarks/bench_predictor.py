"""Micro-benchmarks: prediction pipeline throughput (not a paper artefact).

Measures the per-job cost of the ML pipeline's stages -- feature
extraction, polynomial expansion, NAG updates -- which is the overhead a
production job manager would pay at submission and completion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.predict import E_LOSS, MLPredictor, NagOptimizer
from repro.predict.base import UserHistoryTracker
from repro.predict.basis import PolynomialBasis
from repro.predict.features import N_FEATURES, extract_features
from repro.sim.results import JobRecord
from repro.workload import get_trace

from conftest import bench_n_jobs


@pytest.fixture(scope="module")
def trace():
    return get_trace("Curie", n_jobs=min(bench_n_jobs(), 1500))


def test_feature_extraction_throughput(trace, benchmark):
    def extract_all():
        tracker = UserHistoryTracker()
        total = 0.0
        for job in trace:
            x = extract_features(job, tracker, job.submit_time)
            tracker.on_submit(job, job.submit_time)
            total += x[0]
        return total

    benchmark(extract_all)


def test_basis_expansion_throughput(benchmark):
    basis = PolynomialBasis(N_FEATURES)
    rng = np.random.default_rng(0)
    xs = rng.uniform(0, 1e4, size=(500, N_FEATURES))

    def expand_all():
        return sum(basis.expand(x)[0] for x in xs)

    benchmark(expand_all)


def test_nag_update_throughput(benchmark):
    basis = PolynomialBasis(N_FEATURES)
    rng = np.random.default_rng(0)
    phis = [basis.expand(x) for x in rng.uniform(0, 1e4, size=(500, N_FEATURES))]
    targets = rng.uniform(60, 86400, size=500)

    def train():
        opt = NagOptimizer(basis.dim, eta=0.5)
        for phi, y in zip(phis, targets, strict=True):
            pred = opt.predict(phi)
            opt.update(phi, 2.0 * (pred - y))
        return opt.t

    assert benchmark(train) == 500


def test_full_ml_predictor_throughput(trace, benchmark):
    """Whole pipeline per job: predict at submit, learn at completion."""

    def run_stream():
        pred = MLPredictor(E_LOSS)
        for job in trace:
            rec = JobRecord(job=job)
            pred.predict(rec, job.submit_time)
            pred.on_start(rec, job.submit_time)
            pred.on_finish(rec, job.submit_time + job.runtime)
        return pred.n_updates

    assert benchmark(run_stream) == len(trace)
