"""Table 1 -- AVEbsld of EASY vs EASY-Clairvoyant on the six logs.

Paper's values (real logs, single run each):

    Log          EASY    Clairvoyant  (decrease)
    KTH-SP2      92.6    71.7         (22%)
    CTC-SP2      49.6    37.2         (25%)
    SDSC-SP2     87.9    70.5         (19%)
    SDSC-BLUE    36.5    30.6         (16%)
    Curie        202.1   69.9         (65%)
    Metacentrum  97.6    81.7         (16%)

Shape to reproduce: replacing user estimates with actual running times in
plain EASY reduces AVEbsld on (the average of) every log; the mean
reduction is substantial (paper: 27%).
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.predict import RequestedTimePredictor
from repro.sched import EasyScheduler
from repro.sim import simulate
from repro.workload import get_trace

from conftest import bench_n_jobs, write_artifact

PAPER_VALUES = {
    "KTH-SP2": (92.6, 71.7),
    "CTC-SP2": (49.6, 37.2),
    "SDSC-SP2": (87.9, 70.5),
    "SDSC-BLUE": (36.5, 30.6),
    "Curie": (202.1, 69.9),
    "Metacentrum": (97.6, 81.7),
}


def test_table1(campaign, benchmark):
    rows = campaign.table1_rows()
    table_rows = []
    for log, easy, clair, reduction in rows:
        paper_easy, paper_clair = PAPER_VALUES[log]
        table_rows.append(
            (
                log,
                easy,
                clair,
                format_percent(reduction),
                f"{paper_easy:.1f}",
                f"{paper_clair:.1f}",
            )
        )
    table = format_table(
        ["Log", "EASY", "Clairv.", "decrease", "paper EASY", "paper Clairv."],
        table_rows,
        title="Table 1: EASY vs EASY-Clairvoyant (AVEbsld; measured vs paper)",
    )
    print("\n" + write_artifact("table1.txt", table))

    reductions = np.array([r[3] for r in rows])
    # Shape assertions: clairvoyance helps on average and on most logs.
    assert reductions.mean() > 0.0, "mean clairvoyance gain must be positive"
    assert (reductions > 0).sum() >= 5, "clairvoyance must help on >= 5/6 logs"

    # Benchmark: one standard EASY simulation of a KTH-class trace.
    trace = get_trace("KTH-SP2", n_jobs=bench_n_jobs())

    def run_easy():
        return simulate(trace, EasyScheduler("fcfs"), RequestedTimePredictor()).avebsld()

    benchmark(run_easy)
