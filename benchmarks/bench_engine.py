"""Engine benchmarks: profile-based scheduling path vs the seed rescan.

Two entry points:

* **Script mode** (used by CI):

  .. code-block:: console

     python benchmarks/bench_engine.py --quick [--out BENCH_engine.json]

  Builds synthetic week-long traces, runs each scenario through the
  profile-based schedulers *and* the frozen seed implementations
  (``repro.sched.legacy``), verifies the two produce byte-identical
  per-job schedules, and writes a JSON report with per-scenario and
  overall speedups.  ``--quick`` is bounded to well under 60 s of wall
  time; the default (full) mode uses larger traces for stabler numbers.

* **pytest-benchmark mode** (developer profiling):

  .. code-block:: console

     pytest benchmarks/bench_engine.py

Everything is deterministically seeded; no network, no optional deps.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path and not os.environ.get("REPRO_NO_SRC_PATH"):
    sys.path.insert(0, _SRC)

import numpy as np

from repro.correct import IncrementalCorrector
from repro.predict import RecentAveragePredictor, RequestedTimePredictor
from repro.sched import make_scheduler
from repro.sim import SimSession
from repro.sim.engine import ENGINE_VERSION
from repro.workload import Job, Trace

WEEK_SECONDS = 7 * 86400.0


def make_week_trace(
    processors: int,
    runtime_log_mu: float,
    runtime_log_sigma: float,
    widths: tuple[int, ...],
    width_probs: tuple[float, ...],
    offered_load: float,
    seed: int,
    name: str = "bench-week",
) -> Trace:
    """A deterministic synthetic week of submissions sized to a target load.

    The job count is derived from the load identity
    ``n = load * m * T / (E[runtime] * E[width])`` so the same shape can
    be scaled to any machine size.  Runtimes are lognormal (clipped to
    [1 min, 3 days]), widths drawn from a fixed mix, and requested times
    over-estimate the runtime by a uniform 1.2-3x margin -- the classic
    production-log regime the paper targets.
    """
    rng = np.random.default_rng(seed)
    mean_runtime = float(np.exp(runtime_log_mu + runtime_log_sigma**2 / 2))
    mean_width = float(np.dot(widths, width_probs))
    n_jobs = int(offered_load * processors * WEEK_SECONDS / (mean_runtime * mean_width))
    submit = np.sort(rng.uniform(0.0, WEEK_SECONDS, n_jobs))
    runtime = np.clip(
        rng.lognormal(runtime_log_mu, runtime_log_sigma, n_jobs), 60.0, 3 * 86400.0
    )
    width = rng.choice(widths, n_jobs, p=width_probs)
    margin = rng.uniform(1.2, 3.0, n_jobs)
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(submit[i]),
            runtime=float(runtime[i]),
            processors=int(width[i]),
            requested_time=float(runtime[i] * margin[i]),
            user=int(i % 50),
        )
        for i in range(n_jobs)
    ]
    return Trace(jobs, processors=processors, name=name)


def _wide_trace(quick: bool) -> Trace:
    """Big machine, mostly narrow day-scale jobs: many concurrent runners
    stress EASY's release bookkeeping."""
    return make_week_trace(
        processors=2048 if quick else 4096,
        runtime_log_mu=10.2,
        runtime_log_sigma=0.8,
        widths=(1, 2, 4, 8, 32),
        width_probs=(0.55, 0.2, 0.15, 0.07, 0.03),
        offered_load=1.0,
        seed=1234,
        name="bench-week-wide",
    )


def _narrow_trace(quick: bool) -> Trace:
    """Medium machine, hour-scale jobs, deep queue: stresses conservative
    reservations and the correction path."""
    return make_week_trace(
        processors=192 if quick else 256,
        runtime_log_mu=9.3,
        runtime_log_sigma=1.0,
        widths=(1, 2, 4, 8),
        width_probs=(0.6, 0.2, 0.12, 0.08),
        offered_load=0.92 if quick else 0.95,
        seed=99,
        name="bench-week-narrow",
    )


def _components(spec: str):
    """(predictor, corrector) factories for a scenario spec."""
    if spec == "requested":
        return RequestedTimePredictor(), None
    if spec == "ave2+incremental":
        return RecentAveragePredictor(2), IncrementalCorrector()
    raise ValueError(f"unknown predictor spec {spec!r}")


def _schedule_bytes(result) -> bytes:
    """Canonical byte serialisation of the per-job schedule."""
    rows = sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections) for r in result
    )
    return json.dumps(rows).encode("utf-8")


def run_scenario(
    label: str, trace: Trace, scheduler: str, predictor_spec: str
) -> dict:
    """Time profile-based vs seed scheduling on one (trace, triple) cell."""
    timings = {}
    schedules = {}
    for side, sched_name in (("profile", scheduler), ("legacy", f"legacy-{scheduler}")):
        predictor, corrector = _components(predictor_spec)
        session = SimSession(
            trace.processors,
            make_scheduler(sched_name),
            predictor,
            corrector,
            trace_name=trace.name,
        )
        t0 = time.perf_counter()
        session.feed(trace)
        session.drain()
        result = session.result()
        timings[side] = time.perf_counter() - t0
        schedules[side] = _schedule_bytes(result)
    identical = schedules["profile"] == schedules["legacy"]
    return {
        "scenario": label,
        "scheduler": scheduler,
        "predictor": predictor_spec,
        "trace": {
            "name": trace.name,
            "n_jobs": len(trace),
            "processors": trace.processors,
            "duration_days": round(trace.duration / 86400.0, 2),
        },
        "profile_seconds": round(timings["profile"], 4),
        "legacy_seconds": round(timings["legacy"], 4),
        "speedup": round(timings["legacy"] / timings["profile"], 2),
        "schedules_identical": identical,
    }


def run_dispatch_bench(quick: bool) -> dict:
    """Per-cell dispatch overhead: fsqueue backend vs in-process backend.

    Runs one small campaign cell-set twice through ``run_campaign``'s
    broker layer -- once on :class:`repro.dist.LocalBroker` (single
    inline worker) and once on :class:`repro.dist.FsQueueBroker` with a
    single in-thread ``run_worker`` draining a tmp queue -- and charges
    the wall-clock difference to the queue mechanics (shard files,
    claim-by-rename, lease renewals, result tailing).  Simulation work
    is identical on both sides, so the delta/cell is the price of going
    distributed; it should stay far below a cell's simulation cost.
    """
    import tempfile
    import threading

    from repro.core import CampaignConfig
    from repro.core.campaign import trace_digest
    from repro.dist import FsQueueBroker, LocalBroker, run_worker

    log = "KTH-SP2"
    n_jobs = 100 if quick else 250
    config = CampaignConfig(logs=(log,), n_jobs=n_jobs, replicas=1)
    seed = config.seeds_for(log)[0]
    triple_keys = [
        "requested|none|easy",
        "requested|none|easy-sjbf",
        "clairvoyant|none|easy",
        "clairvoyant|none|easy-sjbf",
        "ave2|incremental|easy",
        "ave2|incremental|easy-sjbf",
        "ave3|incremental|easy-sjbf",
        "requested|none|conservative",
    ]
    cells = [config.cell_spec(log, key, seed) for key in triple_keys]
    trace_digest(log, n_jobs, seed)  # warm the shared bundle cache

    def on_result(_spec, _value, _seconds=None):
        pass

    t0 = time.perf_counter()
    LocalBroker(workers=1).dispatch(cells, on_result)
    local_seconds = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-queue-") as tmp:
        queue_dir = os.path.join(tmp, "queue")
        broker = FsQueueBroker(
            queue_dir, cells_per_shard=2, lease_ttl=120.0, poll_interval=0.02
        )
        worker = threading.Thread(
            target=run_worker,
            args=(queue_dir,),
            kwargs={"worker_id": "bench", "poll_interval": 0.02, "max_idle": 60.0},
            daemon=True,
        )
        worker.start()
        t0 = time.perf_counter()
        broker.dispatch(cells, on_result)
        fsqueue_seconds = time.perf_counter() - t0
        worker.join(timeout=30)

    overhead = max(0.0, fsqueue_seconds - local_seconds)
    return {
        "cells": len(cells),
        "n_jobs": n_jobs,
        "local_seconds": round(local_seconds, 4),
        "fsqueue_seconds": round(fsqueue_seconds, 4),
        "overhead_seconds_per_cell": round(overhead / len(cells), 4),
        "overhead_percent": round(overhead / local_seconds * 100.0, 1),
    }


def run_batch_bench(quick: bool) -> dict:
    """Per-cell fixed cost: batched shared-bundle runs vs cold per-cell runs.

    Runs one shared-trace group of cells twice -- once with the bundle
    cache cleared before **every** cell (the pre-batching regime: trace
    materialisation, digest, and static feature matrix paid per cell)
    and once through :class:`repro.core.BatchRunner` over a single warm
    bundle.  Scores must match exactly; the per-cell wall-clock
    difference is the fixed cost the batched campaign path amortises
    across the group.  Minimum over a few repetitions per side so
    background noise cancels.
    """
    from repro.core import BatchRunner, CampaignConfig, clear_bundle_cache, run_cell

    log = "KTH-SP2"
    n_jobs = 100 if quick else 250
    config = CampaignConfig(logs=(log,), n_jobs=n_jobs, replicas=1)
    seed = config.seeds_for(log)[0]
    triple_keys = [
        "requested|none|easy",
        "requested|none|easy-sjbf",
        "clairvoyant|none|easy",
        "clairvoyant|none|easy-sjbf",
        "ave2|incremental|easy",
        "ave2|incremental|easy-sjbf",
        "ave3|incremental|easy-sjbf",
        "requested|none|conservative",
    ]
    cells = [config.cell_spec(log, key, seed) for key in triple_keys]

    reps = 2 if quick else 3
    sequential = batched = float("inf")
    identical = True
    for _ in range(reps):
        sequential_scores = []
        t0 = time.perf_counter()
        for spec in cells:
            clear_bundle_cache()  # every cell pays the full fixed cost
            sequential_scores.append(run_cell(spec))
        sequential = min(sequential, time.perf_counter() - t0)

        clear_bundle_cache()  # one cold build, then the group shares it
        t0 = time.perf_counter()
        results = BatchRunner().run(cells)
        batched = min(batched, time.perf_counter() - t0)
        batched_scores = [score for _spec, score, _report in results]
        identical = identical and batched_scores == sequential_scores
    drop = (sequential - batched) / len(cells)
    return {
        "cells": len(cells),
        "n_jobs": n_jobs,
        "trace_groups": 1,
        "sequential_seconds": round(sequential, 4),
        "batched_seconds": round(batched, 4),
        "fixed_cost_drop_seconds_per_cell": round(drop, 6),
        "fixed_cost_drop_percent": round(
            (sequential - batched) / sequential * 100.0, 1
        ),
        "scores_identical": identical,
    }


def run_telemetry_bench(quick: bool) -> dict:
    """Telemetry cost on the correction-heavy scenario, both ways.

    Runs the narrow ave2+incremental cell with telemetry disabled (the
    default ``NOOP`` registry -- hot paths pay one attribute check) and
    with a live registry, interleaved over a few repetitions with the
    per-side minimum kept so background noise cancels.  Asserts the two
    schedules are byte-identical: instrumentation must observe, never
    steer.  The disabled side is the exact configuration the speedup
    scenarios above time, so the ``--min-speedup`` gate doubles as the
    disabled-path overhead gate.
    """
    from repro.obs import Telemetry

    trace = _narrow_trace(quick)

    def run_once(telemetry):
        predictor, corrector = _components("ave2+incremental")
        session = SimSession(
            trace.processors,
            make_scheduler("easy-sjbf"),
            predictor,
            corrector,
            trace_name=trace.name,
            telemetry=telemetry,
        )
        t0 = time.perf_counter()
        session.feed(trace)
        session.drain()
        result = session.result()
        return time.perf_counter() - t0, _schedule_bytes(result)

    reps = 2 if quick else 3
    disabled = enabled = float("inf")
    disabled_bytes = enabled_bytes = b""
    for _ in range(reps):
        seconds, disabled_bytes = run_once(None)
        disabled = min(disabled, seconds)
        seconds, enabled_bytes = run_once(Telemetry(component="bench"))
        enabled = min(enabled, seconds)
    return {
        "scenario": "easy-sjbf/corrections",
        "disabled_seconds": round(disabled, 4),
        "enabled_seconds": round(enabled, 4),
        "enabled_overhead_percent": round((enabled - disabled) / disabled * 100.0, 1),
        "schedules_identical": disabled_bytes == enabled_bytes,
    }


def run_benchmark(quick: bool) -> dict:
    """All scenarios; returns the BENCH_engine.json payload."""
    wide = _wide_trace(quick)
    narrow = _narrow_trace(quick)
    plan = [
        ("easy/wide", wide, "easy", "requested"),
        ("easy-sjbf/wide", wide, "easy-sjbf", "requested"),
        ("easy-sjbf/corrections", narrow, "easy-sjbf", "ave2+incremental"),
        ("conservative/narrow", narrow, "conservative", "requested"),
    ]
    t0 = time.perf_counter()
    scenarios = []
    for label, trace, scheduler, predictor_spec in plan:
        scenario = run_scenario(label, trace, scheduler, predictor_spec)
        scenarios.append(scenario)
        print(
            f"  {label:24s} profile={scenario['profile_seconds']:7.3f}s "
            f"legacy={scenario['legacy_seconds']:7.3f}s "
            f"speedup={scenario['speedup']:5.2f}x "
            f"identical={scenario['schedules_identical']}"
        )
    dispatch = run_dispatch_bench(quick)
    print(
        f"  {'dispatch/fsqueue':24s} local={dispatch['local_seconds']:7.3f}s "
        f"fsqueue={dispatch['fsqueue_seconds']:7.3f}s "
        f"overhead={dispatch['overhead_seconds_per_cell']*1000:6.1f}ms/cell "
        f"({dispatch['overhead_percent']:.1f}%)"
    )
    batched = run_batch_bench(quick)
    print(
        f"  {'batched/shared-trace':24s} "
        f"sequential={batched['sequential_seconds']:7.3f}s "
        f"batched={batched['batched_seconds']:7.3f}s "
        f"drop={batched['fixed_cost_drop_seconds_per_cell']*1000:6.1f}ms/cell "
        f"({batched['fixed_cost_drop_percent']:.1f}%) "
        f"identical={batched['scores_identical']}"
    )
    telemetry = run_telemetry_bench(quick)
    print(
        f"  {'telemetry/enabled':24s} off={telemetry['disabled_seconds']:7.3f}s "
        f"on={telemetry['enabled_seconds']:7.3f}s "
        f"overhead={telemetry['enabled_overhead_percent']:5.1f}% "
        f"identical={telemetry['schedules_identical']}"
    )
    total_legacy = sum(s["legacy_seconds"] for s in scenarios)
    total_profile = sum(s["profile_seconds"] for s in scenarios)
    return {
        "benchmark": "engine-scheduling-path",
        "mode": "quick" if quick else "full",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "scenarios": scenarios,
        "dispatch": dispatch,
        "batched": batched,
        "telemetry": telemetry,
        "total_profile_seconds": round(total_profile, 4),
        "total_legacy_seconds": round(total_legacy, 4),
        "overall_speedup": round(total_legacy / total_profile, 2),
        "all_schedules_identical": (
            all(s["schedules_identical"] for s in scenarios)
            and telemetry["schedules_identical"]
        ),
        "wall_seconds": round(time.perf_counter() - t0, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traces, bounded well under 60s wall time (CI smoke)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="where to write the JSON report (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless the overall speedup reaches this factor (default 3.0)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"overall speedup: {report['overall_speedup']}x "
        f"(profile {report['total_profile_seconds']}s vs "
        f"legacy {report['total_legacy_seconds']}s); wrote {args.out}"
    )
    if not report["all_schedules_identical"]:
        print(
            "FAIL: schedules diverge (profile vs seed implementation, "
            "or telemetry-on vs telemetry-off)"
        )
        return 1
    if report["overall_speedup"] < args.min_speedup:
        print(f"FAIL: overall speedup below the {args.min_speedup}x target")
        return 1
    batched = report["batched"]
    if not batched["scores_identical"]:
        print("FAIL: batched shared-bundle scores diverge from per-cell runs")
        return 1
    if batched["fixed_cost_drop_seconds_per_cell"] <= 0.0:
        print(
            "FAIL: batching did not reduce the per-cell fixed cost "
            f"(sequential {batched['sequential_seconds']}s vs "
            f"batched {batched['batched_seconds']}s)"
        )
        return 1
    return 0


# -- pytest-benchmark mode ---------------------------------------------------
try:  # pragma: no cover - only when pytest(-benchmark) is present
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def trace():
        from conftest import bench_n_jobs
        from repro.workload import get_trace

        return get_trace("KTH-SP2", n_jobs=min(bench_n_jobs(), 1500))

    @pytest.mark.parametrize(
        "scheduler_name",
        ["fcfs", "easy", "easy-sjbf", "conservative", "legacy-easy", "legacy-conservative"],
    )
    def test_engine_throughput(trace, scheduler_name, benchmark):
        def run():
            session = SimSession(
                trace.processors,
                make_scheduler(scheduler_name),
                RequestedTimePredictor(),
                trace_name=trace.name,
            )
            session.feed(trace)
            session.drain()
            return len(session.result())

        n_jobs = benchmark(run)
        assert n_jobs == len(trace)

    def test_engine_with_corrections_throughput(trace, benchmark):
        """AVE2 + incremental: the correction-heavy path (EXPIRE events)."""

        def run():
            session = SimSession(
                trace.processors,
                make_scheduler("easy-sjbf"),
                RecentAveragePredictor(2),
                IncrementalCorrector(),
                trace_name=trace.name,
            )
            session.feed(trace)
            session.drain()
            return session.result().total_corrections()

        corrections = benchmark(run)
        assert corrections > 0


if __name__ == "__main__":
    sys.exit(main())
