"""Engine benchmarks: profile-based scheduling path vs the seed rescan.

Two entry points:

* **Script mode** (used by CI):

  .. code-block:: console

     python benchmarks/bench_engine.py --quick [--out BENCH_engine.json]

  Builds synthetic week-long traces, runs each scenario through the
  profile-based schedulers *and* the frozen seed implementations
  (``repro.sched.legacy``), verifies the two produce byte-identical
  per-job schedules, and writes a JSON report with per-scenario and
  overall speedups.  ``--quick`` is bounded to well under 60 s of wall
  time; the default (full) mode uses larger traces for stabler numbers.

* **pytest-benchmark mode** (developer profiling):

  .. code-block:: console

     pytest benchmarks/bench_engine.py

Everything is deterministically seeded; no network, no optional deps.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path and not os.environ.get("REPRO_NO_SRC_PATH"):
    sys.path.insert(0, _SRC)

import numpy as np

from repro.correct import IncrementalCorrector
from repro.predict import RecentAveragePredictor, RequestedTimePredictor
from repro.sched import make_scheduler
from repro.sim import Simulator
from repro.sim.engine import ENGINE_VERSION
from repro.workload import Job, Trace

WEEK_SECONDS = 7 * 86400.0


def make_week_trace(
    processors: int,
    runtime_log_mu: float,
    runtime_log_sigma: float,
    widths: tuple[int, ...],
    width_probs: tuple[float, ...],
    offered_load: float,
    seed: int,
    name: str = "bench-week",
) -> Trace:
    """A deterministic synthetic week of submissions sized to a target load.

    The job count is derived from the load identity
    ``n = load * m * T / (E[runtime] * E[width])`` so the same shape can
    be scaled to any machine size.  Runtimes are lognormal (clipped to
    [1 min, 3 days]), widths drawn from a fixed mix, and requested times
    over-estimate the runtime by a uniform 1.2-3x margin -- the classic
    production-log regime the paper targets.
    """
    rng = np.random.default_rng(seed)
    mean_runtime = float(np.exp(runtime_log_mu + runtime_log_sigma**2 / 2))
    mean_width = float(np.dot(widths, width_probs))
    n_jobs = int(offered_load * processors * WEEK_SECONDS / (mean_runtime * mean_width))
    submit = np.sort(rng.uniform(0.0, WEEK_SECONDS, n_jobs))
    runtime = np.clip(
        rng.lognormal(runtime_log_mu, runtime_log_sigma, n_jobs), 60.0, 3 * 86400.0
    )
    width = rng.choice(widths, n_jobs, p=width_probs)
    margin = rng.uniform(1.2, 3.0, n_jobs)
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(submit[i]),
            runtime=float(runtime[i]),
            processors=int(width[i]),
            requested_time=float(runtime[i] * margin[i]),
            user=int(i % 50),
        )
        for i in range(n_jobs)
    ]
    return Trace(jobs, processors=processors, name=name)


def _wide_trace(quick: bool) -> Trace:
    """Big machine, mostly narrow day-scale jobs: many concurrent runners
    stress EASY's release bookkeeping."""
    return make_week_trace(
        processors=2048 if quick else 4096,
        runtime_log_mu=10.2,
        runtime_log_sigma=0.8,
        widths=(1, 2, 4, 8, 32),
        width_probs=(0.55, 0.2, 0.15, 0.07, 0.03),
        offered_load=1.0,
        seed=1234,
        name="bench-week-wide",
    )


def _narrow_trace(quick: bool) -> Trace:
    """Medium machine, hour-scale jobs, deep queue: stresses conservative
    reservations and the correction path."""
    return make_week_trace(
        processors=192 if quick else 256,
        runtime_log_mu=9.3,
        runtime_log_sigma=1.0,
        widths=(1, 2, 4, 8),
        width_probs=(0.6, 0.2, 0.12, 0.08),
        offered_load=0.92 if quick else 0.95,
        seed=99,
        name="bench-week-narrow",
    )


def _components(spec: str):
    """(predictor, corrector) factories for a scenario spec."""
    if spec == "requested":
        return RequestedTimePredictor(), None
    if spec == "ave2+incremental":
        return RecentAveragePredictor(2), IncrementalCorrector()
    raise ValueError(f"unknown predictor spec {spec!r}")


def _schedule_bytes(result) -> bytes:
    """Canonical byte serialisation of the per-job schedule."""
    rows = sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections) for r in result
    )
    return json.dumps(rows).encode("utf-8")


def run_scenario(
    label: str, trace: Trace, scheduler: str, predictor_spec: str
) -> dict:
    """Time profile-based vs seed scheduling on one (trace, triple) cell."""
    timings = {}
    schedules = {}
    for side, sched_name in (("profile", scheduler), ("legacy", f"legacy-{scheduler}")):
        predictor, corrector = _components(predictor_spec)
        sim = Simulator(trace, make_scheduler(sched_name), predictor, corrector)
        t0 = time.perf_counter()
        result = sim.run()
        timings[side] = time.perf_counter() - t0
        schedules[side] = _schedule_bytes(result)
    identical = schedules["profile"] == schedules["legacy"]
    return {
        "scenario": label,
        "scheduler": scheduler,
        "predictor": predictor_spec,
        "trace": {
            "name": trace.name,
            "n_jobs": len(trace),
            "processors": trace.processors,
            "duration_days": round(trace.duration / 86400.0, 2),
        },
        "profile_seconds": round(timings["profile"], 4),
        "legacy_seconds": round(timings["legacy"], 4),
        "speedup": round(timings["legacy"] / timings["profile"], 2),
        "schedules_identical": identical,
    }


def run_benchmark(quick: bool) -> dict:
    """All scenarios; returns the BENCH_engine.json payload."""
    wide = _wide_trace(quick)
    narrow = _narrow_trace(quick)
    plan = [
        ("easy/wide", wide, "easy", "requested"),
        ("easy-sjbf/wide", wide, "easy-sjbf", "requested"),
        ("easy-sjbf/corrections", narrow, "easy-sjbf", "ave2+incremental"),
        ("conservative/narrow", narrow, "conservative", "requested"),
    ]
    t0 = time.perf_counter()
    scenarios = []
    for label, trace, scheduler, predictor_spec in plan:
        scenario = run_scenario(label, trace, scheduler, predictor_spec)
        scenarios.append(scenario)
        print(
            f"  {label:24s} profile={scenario['profile_seconds']:7.3f}s "
            f"legacy={scenario['legacy_seconds']:7.3f}s "
            f"speedup={scenario['speedup']:5.2f}x "
            f"identical={scenario['schedules_identical']}"
        )
    total_legacy = sum(s["legacy_seconds"] for s in scenarios)
    total_profile = sum(s["profile_seconds"] for s in scenarios)
    return {
        "benchmark": "engine-scheduling-path",
        "mode": "quick" if quick else "full",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "scenarios": scenarios,
        "total_profile_seconds": round(total_profile, 4),
        "total_legacy_seconds": round(total_legacy, 4),
        "overall_speedup": round(total_legacy / total_profile, 2),
        "all_schedules_identical": all(s["schedules_identical"] for s in scenarios),
        "wall_seconds": round(time.perf_counter() - t0, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traces, bounded well under 60s wall time (CI smoke)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="where to write the JSON report (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless the overall speedup reaches this factor (default 3.0)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"overall speedup: {report['overall_speedup']}x "
        f"(profile {report['total_profile_seconds']}s vs "
        f"legacy {report['total_legacy_seconds']}s); wrote {args.out}"
    )
    if not report["all_schedules_identical"]:
        print("FAIL: profile-based schedules diverge from the seed implementation")
        return 1
    if report["overall_speedup"] < args.min_speedup:
        print(f"FAIL: overall speedup below the {args.min_speedup}x target")
        return 1
    return 0


# -- pytest-benchmark mode ---------------------------------------------------
try:  # pragma: no cover - only when pytest(-benchmark) is present
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def trace():
        from conftest import bench_n_jobs
        from repro.workload import get_trace

        return get_trace("KTH-SP2", n_jobs=min(bench_n_jobs(), 1500))

    @pytest.mark.parametrize(
        "scheduler_name",
        ["fcfs", "easy", "easy-sjbf", "conservative", "legacy-easy", "legacy-conservative"],
    )
    def test_engine_throughput(trace, scheduler_name, benchmark):
        def run():
            sim = Simulator(
                trace,
                make_scheduler(scheduler_name),
                RequestedTimePredictor(),
            )
            result = sim.run()
            return len(result)

        n_jobs = benchmark(run)
        assert n_jobs == len(trace)

    def test_engine_with_corrections_throughput(trace, benchmark):
        """AVE2 + incremental: the correction-heavy path (EXPIRE events)."""

        def run():
            sim = Simulator(
                trace,
                make_scheduler("easy-sjbf"),
                RecentAveragePredictor(2),
                IncrementalCorrector(),
            )
            return sim.run().total_corrections()

        corrections = benchmark(run)
        assert corrections > 0


if __name__ == "__main__":
    sys.exit(main())
