"""Micro-benchmarks: simulator throughput (not a paper artefact).

Measures end-to-end simulation speed (events/second) for each scheduler
family and the scaling of the EASY scheduling pass, to document the
cost structure of the testbed itself.
"""

from __future__ import annotations

import pytest

from repro.correct import IncrementalCorrector
from repro.predict import RecentAveragePredictor, RequestedTimePredictor
from repro.sched import make_scheduler
from repro.sim import Simulator
from repro.workload import get_trace

from conftest import bench_n_jobs


@pytest.fixture(scope="module")
def trace():
    return get_trace("KTH-SP2", n_jobs=min(bench_n_jobs(), 1500))


@pytest.mark.parametrize("scheduler_name", ["fcfs", "easy", "easy-sjbf", "conservative"])
def test_engine_throughput(trace, scheduler_name, benchmark):
    def run():
        sim = Simulator(
            trace,
            make_scheduler(scheduler_name),
            RequestedTimePredictor(),
        )
        result = sim.run()
        return len(result)

    n_jobs = benchmark(run)
    assert n_jobs == len(trace)


def test_engine_with_corrections_throughput(trace, benchmark):
    """AVE2 + incremental: the correction-heavy path (EXPIRE events)."""

    def run():
        sim = Simulator(
            trace,
            make_scheduler("easy-sjbf"),
            RecentAveragePredictor(2),
            IncrementalCorrector(),
        )
        return sim.run().total_corrections()

    corrections = benchmark(run)
    assert corrections > 0
