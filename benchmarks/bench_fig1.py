"""Figure 1 -- the shape of the asymmetric loss function.

The paper plots L(x, f, p) against the prediction error f - p for the
example gamma = 1, squared branch on over-prediction, linear branch on
under-prediction.  We regenerate the curve, render it in ASCII and assert
its defining properties (zero at a perfect prediction, quadratic growth
on one side, linear on the other).
"""

from __future__ import annotations

import numpy as np

from repro.predict.loss import LossSpec

from conftest import write_artifact


def render_loss_curve(spec: LossSpec, p: float, q: float, width=64, height=16) -> str:
    errors = np.linspace(-2.0, 2.0, width)
    values = np.array([spec.value(p + e, p, q) for e in errors])
    top = values.max() or 1.0
    grid = [[" "] * width for _ in range(height)]
    for col, v in enumerate(values):
        row = height - 1 - int(round(v / top * (height - 1)))
        grid[row][col] = "*"
    lines = ["".join(r) for r in grid]
    axis = "-" * (width // 2) + "+" + "-" * (width - width // 2 - 1)
    return "\n".join(lines) + "\n" + axis + "\n" + "underprediction".ljust(width // 2) + "overprediction"


def test_fig1(benchmark):
    # unit-weight spec: gamma == 1 requires q*p == e for large-area; use
    # the constant weight to match the figure's gamma_j = 1.
    spec = LossSpec(over="squared", under="linear", weight="constant")
    p, q = 100.0, 4.0

    chart = render_loss_curve(spec, p, q)
    header = (
        "Figure 1: asymmetric loss, gamma=1, squared over-prediction branch,\n"
        "linear under-prediction branch (value vs prediction error f - p)\n"
    )
    print("\n" + write_artifact("fig1.txt", header + chart))

    # Defining properties of the figure's curve:
    assert spec.value(p, p, q) == 0.0
    # over-prediction branch is quadratic: L(p + 2z) = 4 L(p + z)
    assert spec.value(p + 2.0, p, q) == 4.0 * spec.value(p + 1.0, p, q)
    # under-prediction branch is linear: L(p - 2z) = 2 L(p - z)
    assert spec.value(p - 2.0, p, q) == 2.0 * spec.value(p - 1.0, p, q)
    # continuity at zero error
    assert abs(spec.value(p + 1e-9, p, q) - spec.value(p - 1e-9, p, q)) < 1e-6

    # Benchmark: loss + gradient evaluation over a grid (the inner loop of
    # online training).
    errors = np.linspace(-3600.0, 3600.0, 10_000)

    def evaluate_grid():
        total = 0.0
        for e in errors:
            total += spec.value(p + e, p, q) + spec.gradient(p + e, p, q)
        return total

    benchmark(evaluate_grid)
