"""Table 4 -- the workload-log inventory, and synthesis fidelity checks.

The published metadata is reproduced verbatim from the archive module;
the benchmark additionally verifies that every synthetic stand-in
realises its calibration targets (job count exact, offered load near
target, multiple users, heavy requested-time over-estimation) and times
trace synthesis.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.workload import ARCHIVE, get_trace, synthesize, table4_rows
from repro.workload.archive import stable_seed

from conftest import bench_n_jobs, write_artifact


def test_table4(benchmark):
    rows = table4_rows()
    table = format_table(
        ["Name", "Year", "# CPUs", "# Jobs", "Duration"],
        rows,
        title="Table 4: workload logs (published metadata, verbatim)",
    )
    lines = [table, "", "Synthetic stand-ins (simulation-sized subsets):"]
    n = min(bench_n_jobs(), 1500)
    detail_rows = []
    for name in ARCHIVE:
        trace = get_trace(name, n_jobs=n)
        stats = trace.stats()
        detail_rows.append(
            (
                name,
                stats.processors,
                stats.n_jobs,
                f"{stats.duration / 86400:.1f}d",
                f"{stats.offered_load:.2f}",
                stats.n_users,
                f"{stats.mean_overestimation:.0f}x",
            )
        )
        # Fidelity assertions per log.
        assert stats.n_jobs == n
        assert stats.n_users >= 5
        assert stats.offered_load > 0.45
        assert stats.mean_overestimation > 2.0
    lines.append(
        format_table(
            ["Log", "m(sim)", "jobs", "span", "load", "users", "req/actual"],
            detail_rows,
        )
    )
    print("\n" + write_artifact("table4.txt", "\n".join(lines)))

    model = ARCHIVE["KTH-SP2"].model.resized(n)

    def synthesize_kth():
        return synthesize(model, seed=stable_seed("KTH-SP2"))

    benchmark(synthesize_kth)
