"""Figure 3 -- cross-log scatter of heuristic-triple performance.

The paper scatters each triple's AVEbsld on MetaCentrum against
SDSC-BLUE, colour-coded by scheduler and prediction family, and reports
that the pairwise Pearson correlation across logs is low (mean 0.26,
min 0.01, max 0.80): a triple's rank does not transfer between systems,
motivating cross-validated selection.
"""

from __future__ import annotations

from repro.core import HeuristicTriple, campaign_triples, reference_triples
from repro.core.reporting import ascii_scatter
from repro.metrics import correlation_summary

from conftest import write_artifact


def _family(triple: HeuristicTriple) -> str:
    if triple.is_clairvoyant:
        base = "Clairvoyant"
    elif triple.uses_learning:
        base = "Machine Learning"
    elif triple.predictor == "ave2":
        base = "AVE2"
    else:
        base = "Requested Time"
    sched = "SJBF" if triple.scheduler == "easy-sjbf" else "FCFS"
    return f"{base} / {sched}"


def test_fig3(campaign, benchmark):
    logs = campaign.config.logs
    keys = campaign.triple_keys()

    # Scatter: MetaCentrum vs SDSC-BLUE (the paper's pair), by family.
    points: dict[str, list[tuple[float, float]]] = {}
    for triple in campaign_triples() + reference_triples():
        x = campaign.mean("SDSC-BLUE", triple)
        y = campaign.mean("Metacentrum", triple)
        points.setdefault(_family(triple), []).append((x, y))
    chart = ascii_scatter(
        points,
        x_label="AVEbsld SDSC-BLUE",
        y_label="AVEbsld MetaCentrum",
        log_scale=True,
    )

    # Pairwise Pearson correlations over the 128 campaign triples.
    scores_by_log = {log: campaign.score_vector(log, keys) for log in logs}
    summary = correlation_summary(scores_by_log)
    corr_text = (
        f"pairwise Pearson correlation of triple scores across logs:\n"
        f"  mean={summary['mean']:.2f}  min={summary['min']:.2f}  "
        f"max={summary['max']:.2f}  over {int(summary['n_pairs'])} log pairs\n"
        f"  (paper: mean 0.26, min 0.01, max 0.80)"
    )
    print("\n" + write_artifact("fig3.txt", chart + "\n\n" + corr_text))

    # Shape 1: correlation is far from perfect -- triples do not transfer.
    assert summary["mean"] < 0.85
    assert summary["min"] < 0.6

    # Shape 2: the clairvoyant SJBF point is on the Pareto corner (best or
    # near-best on both axes of the scatter pair).
    clair_sjbf = HeuristicTriple("clairvoyant", None, "easy-sjbf")
    for log in ("SDSC-BLUE", "Metacentrum"):
        clair = campaign.mean(log, clair_sjbf)
        best_campaign = min(campaign.mean(log, k) for k in keys)
        assert clair <= best_campaign * 2.0, log

    benchmark(lambda: correlation_summary(scores_by_log))
