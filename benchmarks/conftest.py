"""Shared fixtures for the benchmark harness.

The expensive inputs (the 128-triple campaign, the prediction analysis)
are computed once per session and cached on disk under
``benchmarks/.cache/``, so the whole harness re-runs instantly once the
campaign has been simulated.

The harness is headless-CI-safe: every RNG is seeded deterministically,
nothing opens a display, and optional dependencies (e.g. matplotlib for
local plotting experiments) cause a clean skip instead of a collection
error -- use :func:`optional_import` for any such import.

Scale knobs (environment variables):

* ``REPRO_BENCH_JOBS``      -- jobs per synthetic log (default 2000);
* ``REPRO_BENCH_REPLICAS``  -- trace replicas per log (default 5);
* ``REPRO_BENCH_FULL=1``    -- preset for a heavier run (3000 jobs).

Every benchmark writes its rendered table/figure to
``benchmarks/out/<name>.txt`` so the paper-versus-measured record in
EXPERIMENTS.md can be regenerated from artefacts.
"""

from __future__ import annotations

import importlib
import os
import random

import numpy as np
import pytest

from repro.core import CampaignConfig, analyze_predictions, run_campaign

_HERE = os.path.dirname(os.path.abspath(__file__))
CACHE_DIR = os.path.join(_HERE, ".cache")
OUT_DIR = os.path.join(_HERE, "out")

#: Fixed seed for any benchmark that needs ad-hoc randomness.
BENCH_SEED = 20150915  # the paper's conference year/month/day


def optional_import(name: str):
    """Import an optional dependency or skip the requesting module.

    Usage at the top of a benchmark module::

        matplotlib = optional_import("matplotlib")

    Keeps the harness runnable on minimal CI images: a missing optional
    package skips that benchmark instead of failing collection.
    """
    try:
        return importlib.import_module(name)
    except ImportError:
        pytest.skip(f"optional dependency {name!r} not installed", allow_module_level=True)


@pytest.fixture(autouse=True)
def _seed_all_rngs():
    """Reset the global RNGs before every benchmark, for run-to-run and
    machine-to-machine reproducibility (the library itself only uses
    explicitly seeded generators; this guards ad-hoc benchmark code)."""
    random.seed(BENCH_SEED)
    np.random.seed(BENCH_SEED % (2**32))
    yield


def bench_n_jobs() -> int:
    if os.environ.get("REPRO_BENCH_FULL"):
        return int(os.environ.get("REPRO_BENCH_JOBS", "3000"))
    return int(os.environ.get("REPRO_BENCH_JOBS", "2000"))


def bench_replicas() -> int:
    return int(os.environ.get("REPRO_BENCH_REPLICAS", "5"))


def write_artifact(name: str, content: str) -> str:
    """Store a rendered table/figure under benchmarks/out/ and return it."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content if content.endswith("\n") else content + "\n")
    return content


@pytest.fixture(scope="session")
def campaign():
    """The full 6-log x 130-triple campaign (cached on disk)."""
    config = CampaignConfig(n_jobs=bench_n_jobs(), replicas=bench_replicas())
    cache_path = os.path.join(
        CACHE_DIR, f"campaign_n{config.n_jobs}_r{config.replicas}.jsonl"
    )
    progress_path = os.path.join(
        CACHE_DIR, f"campaign_n{config.n_jobs}_r{config.replicas}.progress.jsonl"
    )
    return run_campaign(
        config, cache_path=cache_path, progress=True, progress_path=progress_path
    )


@pytest.fixture(scope="session")
def curie_prediction_analysis():
    """Prediction replay on the Curie-class log (Table 8, Figs 4-5)."""
    return analyze_predictions(log="Curie", n_jobs=bench_n_jobs())
