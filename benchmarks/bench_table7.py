"""Table 7 -- leave-one-out cross-validated triple selection.

Paper's values:

    Log          C-V triple     EASY    EASY++
    KTH-SP2      51.4 (44%)     92.6    63.5 (31%)
    CTC-SP2      20.5 (59%)     49.6    85.8 (-72%)
    SDSC-SP2     75.0 (15%)     87.9    79.4 (10%)
    SDSC-BLUE    34.7 (05%)     36.5    21.0 (42%)
    Curie        27.9 (86%)     202.1   193.5 (04%)
    Metacentrum  84.2 (14%)     97.6    87.2 (11%)

Headline shapes: the cross-validated triple beats EASY on (nearly) every
log with a large average reduction (paper: 28%); it also beats EASY++ on
average (paper: 11%); the same triple is selected in (almost) every fold
and uses SJBF ordering with a learning predictor.
"""

from __future__ import annotations

from repro.core import average_reductions, leave_one_out, selection_consensus
from repro.core.reporting import format_percent, format_table

from conftest import write_artifact

PAPER_ROWS = {
    "KTH-SP2": (51.4, 44, 92.6, 63.5),
    "CTC-SP2": (20.5, 59, 49.6, 85.8),
    "SDSC-SP2": (75.0, 15, 87.9, 79.4),
    "SDSC-BLUE": (34.7, 5, 36.5, 21.0),
    "Curie": (27.9, 86, 202.1, 193.5),
    "Metacentrum": (84.2, 14, 97.6, 87.2),
}


def test_table7(campaign, benchmark):
    rows = leave_one_out(campaign)
    consensus, folds = selection_consensus(rows)
    vs_easy, vs_easypp = average_reductions(rows)

    rendered = []
    for row in rows:
        paper_cv, paper_red, paper_easy, paper_pp = PAPER_ROWS[row.log]
        rendered.append(
            (
                row.log,
                f"{row.cv_score:.1f} {format_percent(row.reduction_vs_easy)}",
                f"{row.easy_score:.1f}",
                f"{row.easypp_score:.1f} {format_percent(row.reduction_vs_easypp)}",
                f"{paper_cv:.1f} ({paper_red}%)",
            )
        )
    table = format_table(
        ["Log", "C-V triple", "EASY", "EASY++", "paper C-V"],
        rendered,
        title="Table 7: cross-validated heuristic triple (measured vs paper)",
    )
    summary = "\n".join(
        [
            f"consensus triple : {consensus.key} (selected in {folds}/6 folds)",
            f"selected triples : "
            + ", ".join(sorted({r.selected.key for r in rows})),
            f"avg reduction vs EASY  : {vs_easy:.0f}%  (paper: 28%)",
            f"avg reduction vs EASY++: {vs_easypp:.0f}%  (paper: 11%)",
        ]
    )
    print("\n" + write_artifact("table7.txt", table + "\n\n" + summary))

    # Shape assertions.
    n_beat_easy = sum(1 for r in rows if r.reduction_vs_easy > 0)
    assert n_beat_easy >= 5, f"C-V triple beats EASY on only {n_beat_easy}/6 logs"
    assert vs_easy > 10.0, "average reduction vs EASY should be substantial"
    # Versus EASY++ the paper reports +11%; on synthetic workload draws the
    # cross-validated selection lands at rough parity (see EXPERIMENTS.md:
    # AVE2-family triples are competitive with learning here, and the best
    # *per-log* learning triple does beat EASY++ -- bench_table6 asserts
    # that).  Guard against regression to clearly-worse-than-EASY++.
    assert vs_easypp > -15.0, (
        f"C-V triple must stay near EASY++ parity, got {vs_easypp:.0f}%"
    )
    # The consensus is a predictive-corrective SJBF triple, as in the paper
    # (ours sometimes selects the AVE2 predictor instead of a learned one).
    assert consensus.scheduler == "easy-sjbf"
    assert consensus.predictor != "requested"
    assert folds >= 3, "selection should be (nearly) unanimous across folds"
    n_predictive = sum(1 for r in rows if r.selected.predictor != "requested")
    assert n_predictive == len(rows), "every fold must pick a predictive triple"

    benchmark(lambda: leave_one_out(campaign))
