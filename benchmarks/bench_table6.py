"""Table 6 -- AVEbsld overview of every approach on every log.

Paper layout: per log, the clairvoyant references (FCFS / SJBF backfill
order), standard EASY, EASY++, and the best-worst range over the 60
learning triples of each backfill order.

Shapes to reproduce:

* Clairvoyant EASY-SJBF (nearly) always outperforms its competitors;
* the best learning triple is obtained with SJBF and beats EASY;
* learning ranges are wide (the worst learned models are bad), which is
  why triple *selection* (Table 7) matters.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table

from conftest import write_artifact

#: Paper's Table 6 (Clairvoyant FCFS, SJBF; EASY; EASY++; learning ranges).
PAPER_TABLE6 = {
    "KTH-SP2": (71.7, 49.8, 92.6, 63.5, (62.6, 93.2), (51.4, 74.5)),
    "CTC-SP2": (37.2, 17.6, 49.6, 85.8, (25.5, 163.5), (16.3, 134.7)),
    "SDSC-SP2": (70.5, 56.8, 87.9, 79.4, (70.9, 102.3), (69.7, 194.8)),
    "SDSC-BLUE": (30.6, 13.2, 36.5, 21.0, (16.5, 48.0), (12.6, 47.8)),
    "Curie": (69.9, 12.1, 202.1, 193.5, (26.3, 9348.8), (24.3, 4010.0)),
    "Metacentrum": (81.7, 67.2, 97.6, 87.2, (86.3, 98.1), (81.5, 89.8)),
}


def test_table6(campaign, benchmark):
    rows = campaign.table6_rows()
    rendered = []
    for log, clair_fcfs, clair_sjbf, easy, easypp, rng_f, rng_s in rows:
        rendered.append(
            (
                log,
                clair_fcfs,
                clair_sjbf,
                easy,
                easypp,
                f"{rng_f[0]:.1f} - {rng_f[1]:.1f}",
                f"{rng_s[0]:.1f} - {rng_s[1]:.1f}",
            )
        )
    table = format_table(
        ["Trace", "Clairv FCFS", "Clairv SJBF", "EASY", "EASY++",
         "Learning FCFS", "Learning SJBF"],
        rendered,
        title="Table 6: AVEbsld overview (measured; paper layout)",
    )
    paper_rows = [
        (log, v[0], v[1], v[2], v[3], f"{v[4][0]:.1f} - {v[4][1]:.1f}",
         f"{v[5][0]:.1f} - {v[5][1]:.1f}")
        for log, v in PAPER_TABLE6.items()
    ]
    paper_table = format_table(
        ["Trace", "Clairv FCFS", "Clairv SJBF", "EASY", "EASY++",
         "Learning FCFS", "Learning SJBF"],
        paper_rows,
        title="Paper's Table 6 (for comparison)",
    )
    print("\n" + write_artifact("table6.txt", table + "\n\n" + paper_table))

    # Shape 1: Clairvoyant SJBF is the best column on (nearly) every log.
    wins = 0
    for _log, clair_fcfs, clair_sjbf, easy, easypp, _rng_f, _rng_s in rows:
        if clair_sjbf <= min(clair_fcfs, easy) and clair_sjbf <= easypp * 1.25:
            wins += 1
    assert wins >= 4, f"Clairvoyant SJBF best-in-class on only {wins}/6 logs"

    # Shape 2: on every log the best learning triple (SJBF order) beats EASY.
    for log, _cf, _cs, easy, _pp, _rf, rng_s in rows:
        assert rng_s[0] < easy, f"{log}: best learning triple must beat EASY"

    # Shape 3 (the paper's Sec 6.3.1 claim): the best approach is always a
    # predictive-corrective one -- the best learning triple matches or
    # beats EASY++ on (nearly) every log.
    best_beats_easypp = sum(
        1 for _log, _cf, _cs, _e, easypp, _rf, rng_s in rows if rng_s[0] <= easypp * 1.05
    )
    assert best_beats_easypp >= 4, (
        f"best learning triple competitive with EASY++ on only "
        f"{best_beats_easypp}/6 logs"
    )

    # Shape 4: learning ranges are wide (worst >= 1.5x best) on most logs --
    # picking the wrong loss/correction really hurts, hence Table 7.
    wide = sum(1 for row in rows if row[6][1] >= 1.5 * row[6][0])
    assert wide >= 4

    # Benchmark: aggregating the 128-triple score table for all logs.
    def aggregate():
        return campaign.table6_rows()

    benchmark(aggregate)


def test_campaign_has_exactly_128_triples(campaign, benchmark):
    """The paper: 'the experimental campaign runs 128 simulations' per log."""
    keys = campaign.triple_keys()
    assert len(keys) == 128
    for log in campaign.config.logs:
        vector = campaign.score_vector(log, keys)
        assert vector.shape == (128,)
        assert np.isfinite(vector).all()
        assert (vector >= 1.0).all()

    benchmark(lambda: campaign.score_vector("Curie", keys))
