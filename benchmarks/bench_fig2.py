"""Figure 2 -- the canonical EASY backfilling example.

Three jobs on a 4-processor machine, submitted together, FCFS priority
1 < 2 < 3: job 1 (3 procs) starts at t=0; job 2 (3 procs) does not fit
and reserves t=100 (job 1's predicted end); job 3 (1 proc, runtime 90)
is backfilled at t=0 because it finishes before the reservation.  The
paper uses this to show why running-time knowledge controls backfilling:
had job 1 been much shorter, job 3 could not have been backfilled.
"""

from __future__ import annotations

from repro.predict import ClairvoyantPredictor
from repro.sched import EasyScheduler
from repro.sim import simulate
from repro.workload import Job, Trace

from conftest import write_artifact


def figure2_trace() -> Trace:
    jobs = [
        Job(job_id=1, submit_time=0.0, runtime=100.0, processors=3, requested_time=100.0),
        Job(job_id=2, submit_time=0.0, runtime=50.0, processors=3, requested_time=50.0),
        Job(job_id=3, submit_time=0.0, runtime=90.0, processors=1, requested_time=90.0),
    ]
    return Trace(jobs, processors=4, name="figure2")


def render_gantt(result, processors: int, horizon: float, width: int = 60) -> str:
    rows = []
    for rec in sorted(result, key=lambda r: r.job_id):
        scale = width / horizon
        start = int(rec.start_time * scale)
        length = max(1, int(rec.runtime * scale))
        bar = " " * start + str(rec.job_id) * length
        rows.append(f"job {rec.job_id} (q={rec.processors}): |{bar.ljust(width)}|")
    return "\n".join(rows)


def test_fig2(benchmark):
    trace = figure2_trace()
    result = simulate(trace, EasyScheduler("fcfs"), ClairvoyantPredictor())
    by_id = {r.job_id: r for r in result}

    chart = render_gantt(result, trace.processors, horizon=160.0)
    header = "Figure 2: EASY on the 3-job example (time ->)\n"
    print("\n" + write_artifact("fig2.txt", header + chart))

    # The exact schedule of the figure:
    assert by_id[1].start_time == 0.0
    assert by_id[3].start_time == 0.0  # backfilled
    assert by_id[2].start_time == 100.0  # after job 1 completes

    # The figure's counterfactual: if job 1 were much shorter, job 3 (90s)
    # would no longer fit the backfill window and could not jump ahead.
    short_jobs = [
        Job(job_id=1, submit_time=0.0, runtime=30.0, processors=3, requested_time=30.0),
        Job(job_id=2, submit_time=0.0, runtime=50.0, processors=4, requested_time=50.0),
        Job(job_id=3, submit_time=0.0, runtime=90.0, processors=1, requested_time=90.0),
    ]
    short = simulate(
        Trace(short_jobs, processors=4, name="figure2b"),
        EasyScheduler("fcfs"),
        ClairvoyantPredictor(),
    )
    short_by_id = {r.job_id: r for r in short}
    assert short_by_id[3].start_time > 0.0  # no longer backfilled

    # Benchmark: the scheduling decision itself (select_jobs on this queue).
    from repro.sim.machine import Machine
    from repro.sim.results import JobRecord

    def schedule_once():
        sched = EasyScheduler("fcfs")
        machine = Machine(4)
        for job in trace:
            rec = JobRecord(job=job)
            rec.predicted_runtime = job.runtime
            sched.on_submit(rec)
        return sched.select_jobs(0.0, machine)

    benchmark(schedule_once)
