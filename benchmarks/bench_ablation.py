"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artefacts, but decompositions of the winning triple's gain:

1. backfill order (FCFS vs SJBF) at fixed prediction technique;
2. correction mechanism at fixed predictor;
3. loss asymmetry (symmetric squared vs E-Loss) at fixed context.

All numbers come from the shared campaign, so this file is cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core import HeuristicTriple
from repro.core.reporting import format_table

from conftest import write_artifact


def _mean_over_logs(campaign, triple: HeuristicTriple) -> float:
    return float(
        np.mean([campaign.mean(log, triple) for log in campaign.config.logs])
    )


def test_ablation_backfill_order(campaign, benchmark):
    """SJBF vs FCFS scan order, holding the prediction technique fixed."""
    rows = []
    for predictor, corrector in [
        ("clairvoyant", None),
        ("requested", None),
        ("ave2", "incremental"),
        ("ml:sq-lin-large-area", "incremental"),
    ]:
        fcfs = _mean_over_logs(campaign, HeuristicTriple(predictor, corrector, "easy"))
        sjbf = _mean_over_logs(
            campaign, HeuristicTriple(predictor, corrector, "easy-sjbf")
        )
        rows.append((predictor, fcfs, sjbf, f"{(fcfs - sjbf) / fcfs * 100:.0f}%"))
    table = format_table(
        ["Predictor", "FCFS order", "SJBF order", "SJBF gain"],
        rows,
        title="Ablation: backfill order (mean AVEbsld over all logs)",
    )
    print("\n" + write_artifact("ablation_order.txt", table))

    # SJBF must help when predictions are accurate (clairvoyant row).
    clair_row = rows[0]
    assert clair_row[2] < clair_row[1], "SJBF must beat FCFS under clairvoyance"

    benchmark(lambda: [_mean_over_logs(campaign, HeuristicTriple("clairvoyant", None, s))
                       for s in ("easy", "easy-sjbf")])


def test_ablation_correction_mechanism(campaign, benchmark):
    """Correction choice at fixed predictor (AVE2 and the E-Loss model)."""
    rows = []
    for predictor in ("ave2", "ml:sq-lin-large-area"):
        scores = {
            corrector: _mean_over_logs(
                campaign, HeuristicTriple(predictor, corrector, "easy-sjbf")
            )
            for corrector in ("requested", "incremental", "doubling")
        }
        rows.append(
            (predictor, scores["requested"], scores["incremental"], scores["doubling"])
        )
    table = format_table(
        ["Predictor", "Requested", "Incremental", "Doubling"],
        rows,
        title="Ablation: correction mechanism (mean AVEbsld, EASY-SJBF)",
    )
    print("\n" + write_artifact("ablation_correction.txt", table))

    # All three corrections must produce finite, valid schedules.
    for row in rows:
        assert all(np.isfinite(v) and v >= 1.0 for v in row[1:])

    benchmark(lambda: _mean_over_logs(
        campaign, HeuristicTriple("ave2", "incremental", "easy-sjbf")))


def test_ablation_loss_asymmetry(campaign, benchmark):
    """Symmetric squared loss vs the asymmetric E-Loss, same context."""
    symmetric = HeuristicTriple("ml:sq-sq-constant", "incremental", "easy-sjbf")
    eloss = HeuristicTriple("ml:sq-lin-large-area", "incremental", "easy-sjbf")
    rows = []
    for log in campaign.config.logs:
        rows.append(
            (log, campaign.mean(log, symmetric), campaign.mean(log, eloss))
        )
    sym_mean = float(np.mean([r[1] for r in rows]))
    eloss_mean = float(np.mean([r[2] for r in rows]))
    rows.append(("MEAN", sym_mean, eloss_mean))
    table = format_table(
        ["Log", "squared (sym.)", "E-Loss (asym.)"],
        rows,
        title="Ablation: loss asymmetry (AVEbsld, Incremental + EASY-SJBF)",
    )
    note = (
        "\nNote: on the paper's production logs the asymmetric E-Loss wins; "
        "on these synthetic draws the symmetric squared loss is often "
        "stronger.  Which loss wins is log-dependent (that is exactly the "
        "paper's Figure 3 finding), so this ablation records the direction "
        "rather than asserting it.  EXPERIMENTS.md discusses the deviation."
    )
    print("\n" + write_artifact("ablation_loss.txt", table + note))

    # Both losses must still deliver the headline property: better than
    # EASY on average.
    easy_mean = _mean_over_logs(campaign, HeuristicTriple("requested", None, "easy"))
    assert eloss_mean < easy_mean
    assert sym_mean < easy_mean

    benchmark(lambda: campaign.mean("Curie", eloss))
