"""Shared test factories, importable as ``tests.helpers``.

Kept outside ``conftest.py`` so test modules can import them with a
normal absolute import (``from tests.helpers import make_job``) instead
of the relative ``from ..conftest import ...`` that pytest cannot
resolve for rootdir-anchored test packages.
"""

from __future__ import annotations

from repro.sim.results import JobRecord
from repro.workload import Job

__all__ = ["make_job", "make_record"]


def make_job(
    job_id: int = 1,
    submit_time: float = 0.0,
    runtime: float = 100.0,
    processors: int = 1,
    requested_time: float | None = None,
    user: int = 1,
    **kwargs,
) -> Job:
    """Job factory with sane defaults (requested defaults to 2x runtime)."""
    if requested_time is None:
        requested_time = 2.0 * runtime
    return Job(
        job_id=job_id,
        submit_time=submit_time,
        runtime=runtime,
        processors=processors,
        requested_time=requested_time,
        user=user,
        **kwargs,
    )


def make_record(
    job_id: int = 1,
    submit_time: float = 0.0,
    runtime: float = 100.0,
    processors: int = 1,
    requested_time: float | None = None,
    predicted_runtime: float | None = None,
    user: int = 1,
) -> JobRecord:
    """JobRecord factory; prediction defaults to the requested time."""
    job = make_job(
        job_id=job_id,
        submit_time=submit_time,
        runtime=runtime,
        processors=processors,
        requested_time=requested_time,
        user=user,
    )
    record = JobRecord(job=job)
    record.predicted_runtime = (
        predicted_runtime if predicted_runtime is not None else job.requested_time
    )
    record.initial_prediction = record.predicted_runtime
    record.raw_prediction = record.predicted_runtime
    return record
