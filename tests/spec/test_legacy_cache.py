"""Legacy (v4 tuple-keyed) cache rows next to spec-keyed rows.

The CACHE_VERSION 5 bump re-keyed every cell by spec digest; these tests
pin the compatibility story: pre-redesign cache files stay readable, a
warm campaign over one runs zero simulations, and the merge tool can
re-key them explicitly.
"""

import json

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.core.campaign import (
    CACHE_VERSION,
    LEGACY_CACHE_VERSION,
    ResultCache,
    cell_token,
    trace_digest,
    upgrade_legacy_token,
)
from repro.core.triples import HeuristicTriple
from repro.sim.engine import ENGINE_VERSION

CONFIG = CampaignConfig(logs=("KTH-SP2",), n_jobs=60, replicas=1)
TRIPLES = [
    HeuristicTriple("requested", None, "easy"),
    HeuristicTriple("ave2", "incremental", "easy-sjbf"),
]


def legacy_token(config, log, triple_key, seed, engine=ENGINE_VERSION):
    """A token exactly as CACHE_VERSION 4 wrote it."""
    digest = trace_digest(log, config.n_jobs, seed)
    return (
        f"v{LEGACY_CACHE_VERSION}|e{engine}|{log}@{digest}|{triple_key}"
        f"|n={config.n_jobs}|s={seed}"
        f"|mp={config.min_prediction:g}|tau={config.tau:g}"
    )


def write_legacy_cache(path, rows):
    with open(path, "w", encoding="utf-8") as fh:
        for token, value in rows:
            fh.write(json.dumps({"token": token, "value": value}) + "\n")


class TestUpgradeLegacyToken:
    def test_equivalent_to_current_token(self):
        seed = CONFIG.seeds_for("KTH-SP2")[0]
        old = legacy_token(CONFIG, "KTH-SP2", "ave2|incremental|easy-sjbf", seed)
        new = CONFIG.cache_token("KTH-SP2", "ave2|incremental|easy-sjbf", seed)
        assert upgrade_legacy_token(old) == new
        assert new.startswith(f"v{CACHE_VERSION}|e{ENGINE_VERSION}|")

    def test_reuses_embedded_trace_digest(self):
        # the embedded digest is trusted verbatim -- a made-up one must
        # survive into the upgraded token (that is what makes upgrading
        # free) rather than being recomputed
        old = (
            f"v{LEGACY_CACHE_VERSION}|e{ENGINE_VERSION}|KTH-SP2@deadbeef00000000"
            f"|requested|none|easy|n=60|s=9|mp=60|tau=10"
        )
        upgraded = upgrade_legacy_token(old)
        assert upgraded is not None
        assert "KTH-SP2@deadbeef00000000" in upgraded

    def test_other_engine_version_refused(self):
        seed = CONFIG.seeds_for("KTH-SP2")[0]
        old = legacy_token(
            CONFIG, "KTH-SP2", "requested|none|easy", seed, engine=ENGINE_VERSION + 1
        )
        assert upgrade_legacy_token(old) is None

    @pytest.mark.parametrize(
        "token",
        [
            "v3|e2|KTH-SP2@aa|requested|none|easy|n=60|s=1|mp=60|tau=10",
            "v4|e2|KTH-SP2@aa|requested|none|n=60|s=1|mp=60|tau=10",  # 9 parts
            "v4|e2|KTH-SP2aa|requested|none|easy|n=60|s=1|mp=60|tau=10",  # no @
            "v4|e2|KTH-SP2@aa|requested|none|easy|n=x|s=1|mp=60|tau=10",
            "v4|e2|KTH-SP2@aa|galactic|none|easy|n=60|s=1|mp=60|tau=10",
            "not a token at all",
        ],
    )
    def test_malformed_or_foreign_refused(self, token):
        assert upgrade_legacy_token(token) is None


class TestResultCacheLegacyRows:
    def test_legacy_rows_served_under_new_identity(self, tmp_path):
        seed = CONFIG.seeds_for("KTH-SP2")[0]
        path = tmp_path / "old.jsonl"
        write_legacy_cache(
            path,
            [(legacy_token(CONFIG, "KTH-SP2", t.key, seed), 10.0 + i)
             for i, t in enumerate(TRIPLES)],
        )
        cache = ResultCache(str(path))
        assert cache.legacy_rows == len(TRIPLES)
        for i, triple in enumerate(TRIPLES):
            assert cache.get(CONFIG.cache_token("KTH-SP2", triple.key, seed)) == 10.0 + i

    def test_current_row_wins_over_legacy_row(self, tmp_path):
        seed = CONFIG.seeds_for("KTH-SP2")[0]
        key = TRIPLES[0].key
        new_token = CONFIG.cache_token("KTH-SP2", key, seed)
        path = tmp_path / "mixed.jsonl"
        write_legacy_cache(
            path,
            [
                (legacy_token(CONFIG, "KTH-SP2", key, seed), 1.0),
                (new_token, 2.0),
            ],
        )
        assert ResultCache(str(path)).get(new_token) == 2.0
        # ...in either file order
        write_legacy_cache(
            path,
            [
                (new_token, 2.0),
                (legacy_token(CONFIG, "KTH-SP2", key, seed), 1.0),
            ],
        )
        assert ResultCache(str(path)).get(new_token) == 2.0

    def test_warm_campaign_from_legacy_cache_runs_zero_sims(self, tmp_path, monkeypatch):
        """The acceptance scenario: a cache written before the redesign
        still warm-loads the redesigned campaign end to end."""
        path = tmp_path / "legacy.jsonl"
        seed = CONFIG.seeds_for("KTH-SP2")[0]
        # first run the real campaign to learn the true scores...
        reference = run_campaign(CONFIG, triples=TRIPLES, workers=1)
        # ...then rewrite them as v4 rows only
        write_legacy_cache(
            path,
            [
                (
                    legacy_token(CONFIG, "KTH-SP2", t.key, seed),
                    reference.scores["KTH-SP2"][t.key][0],
                )
                for t in TRIPLES
            ],
        )

        def boom(_spec, with_telemetry=False):
            raise AssertionError("a warm legacy cache must not simulate")

        import repro.core.run as run_mod

        monkeypatch.setattr(run_mod, "run_cell_report", boom)
        result = run_campaign(
            CONFIG, cache_path=str(path), triples=TRIPLES, workers=1
        )
        assert result.scores == reference.scores


class TestMergeUpgradeLegacy:
    def test_merge_rejects_legacy_by_default(self, tmp_path):
        from repro.dist import merge_caches
        from repro.dist.merge import MergeVersionError

        seed = CONFIG.seeds_for("KTH-SP2")[0]
        path = tmp_path / "old.jsonl"
        write_legacy_cache(
            path, [(legacy_token(CONFIG, "KTH-SP2", TRIPLES[0].key, seed), 1.0)]
        )
        with pytest.raises(MergeVersionError):
            merge_caches([str(path)])

    def test_merge_upgrade_legacy_rekeys(self, tmp_path):
        from repro.dist import merge_caches

        seed = CONFIG.seeds_for("KTH-SP2")[0]
        key = TRIPLES[0].key
        path = tmp_path / "old.jsonl"
        write_legacy_cache(
            path,
            [
                (legacy_token(CONFIG, "KTH-SP2", key, seed), 1.0),
                # un-upgradable: foreign engine version
                (
                    legacy_token(
                        CONFIG, "KTH-SP2", key, seed + 1, engine=ENGINE_VERSION + 1
                    ),
                    2.0,
                ),
            ],
        )
        cells, report = merge_caches([str(path)], upgrade_legacy=True)
        assert report.legacy_upgraded == 1
        assert report.legacy_skipped == 1
        assert cells == {CONFIG.cache_token("KTH-SP2", key, seed): 1.0}

    def test_upgraded_rows_dedup_against_current_rows(self, tmp_path):
        from repro.dist import merge_caches

        seed = CONFIG.seeds_for("KTH-SP2")[0]
        key = TRIPLES[0].key
        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        write_legacy_cache(
            old, [(legacy_token(CONFIG, "KTH-SP2", key, seed), 1.5)]
        )
        write_legacy_cache(
            new, [(CONFIG.cache_token("KTH-SP2", key, seed), 1.5)]
        )
        cells, report = merge_caches([str(new), str(old)], upgrade_legacy=True)
        assert report.duplicates == 1
        assert len(cells) == 1


class TestCellTokenProperties:
    def test_token_embeds_spec_digest_and_versions(self):
        spec = CONFIG.cell_spec("KTH-SP2", TRIPLES[0], 7)
        token = cell_token(spec)
        assert token.startswith(f"v{CACHE_VERSION}|e{ENGINE_VERSION}|KTH-SP2@")
        assert token.endswith(f"|spec:{spec.digest()}")

    def test_non_plain_workload_digest_differs(self):
        from repro.spec import CellSpec

        plain = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 60, "seed": 7},
            predictor="requested", corrector=None, scheduler="easy",
        )
        filtered = CellSpec.make(
            workload={
                "log": "KTH-SP2", "n_jobs": 60, "seed": 7,
                "filters": [{"name": "max-width", "params": {"processors": 25}}],
            },
            predictor="requested", corrector=None, scheduler="easy",
        )
        assert cell_token(plain) != cell_token(filtered)
        # the filtered trace digest reflects the filtered jobs
        plain_digest = cell_token(plain).split("@")[1].split("|")[0]
        filtered_digest = cell_token(filtered).split("@")[1].split("|")[0]
        assert plain_digest != filtered_digest
