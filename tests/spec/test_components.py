"""The unified component registry: normalization, building, lowering."""

import pytest

from repro.spec import (
    ComponentSpec,
    corrector_registry,
    filter_registry,
    predictor_registry,
    scheduler_registry,
)


class TestComponentSpec:
    def test_param_order_is_canonical(self):
        a = ComponentSpec.make("x", {"b": 1, "a": 2})
        b = ComponentSpec.make("x", {"a": 2, "b": 1})
        assert a == b
        assert a.params == (("a", 2), ("b", 1))

    def test_from_obj_accepts_str_dict_and_spec(self):
        spec = ComponentSpec.make("easy", {"order": "sjbf"})
        assert ComponentSpec.from_obj("easy") == ComponentSpec.make("easy")
        assert ComponentSpec.from_obj({"name": "easy", "params": {"order": "sjbf"}}) == spec
        assert ComponentSpec.from_obj(spec) is spec

    def test_rejects_non_scalar_params(self):
        with pytest.raises(TypeError, match="scalar"):
            ComponentSpec.make("x", {"bad": [1, 2]})

    def test_rejects_unknown_obj_keys(self):
        with pytest.raises(ValueError, match="exactly 'name'"):
            ComponentSpec.from_obj({"name": "x", "junk": 1})


class TestPredictorRegistry:
    def test_legacy_strings_lower_to_params(self):
        registry = predictor_registry()
        assert registry.normalize("ave2") == ComponentSpec.make("ave", {"k": 2})
        assert registry.normalize("ave7") == ComponentSpec.make("ave", {"k": 7})
        ml = registry.normalize("ml:sq-lin-large-area")
        assert ml.name == "ml"
        assert ml.param_dict["over"] == "sq"
        assert ml.param_dict["under"] == "lin"
        assert ml.param_dict["weight"] == "large-area"
        assert ml.param_dict["eta"] == 0.5  # defaults made explicit

    def test_two_spellings_normalize_identically(self):
        registry = predictor_registry()
        assert registry.normalize("ave2") == registry.normalize(
            {"name": "ave", "params": {"k": 2}}
        )

    def test_legacy_name_round_trips(self):
        registry = predictor_registry()
        for name in ("requested", "clairvoyant", "ave2", "ave5",
                     "ml:sq-lin-large-area", "ml:lin-sq-constant"):
            assert registry.legacy_name(registry.normalize(name)) == name

    def test_tuned_hyperparams_have_no_legacy_name(self):
        registry = predictor_registry()
        tuned = {"name": "ml", "params": {
            "over": "sq", "under": "lin", "weight": "large-area", "eta": 0.9}}
        assert registry.legacy_name(tuned) is None

    def test_builds_real_predictors(self):
        registry = predictor_registry()
        assert registry.build("ave3").k == 3
        ml = registry.build({"name": "ml", "params": {
            "over": "sq", "under": "lin", "weight": "large-area"}})
        assert ml.name == "ml:sq-lin-large-area"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            predictor_registry().normalize("oracle-9000")

    def test_malformed_ml_key_rejected(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            predictor_registry().normalize("ml:sq-banana")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown param"):
            predictor_registry().normalize({"name": "ave", "params": {"q": 1}})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            predictor_registry().normalize({"name": "ml", "params": {"over": "sq"}})

    def test_numeric_coercion_unifies_int_and_float(self):
        registry = predictor_registry()
        a = registry.normalize({"name": "ml", "params": {
            "over": "sq", "under": "lin", "weight": "constant", "eta": 1}})
        b = registry.normalize({"name": "ml", "params": {
            "over": "sq", "under": "lin", "weight": "constant", "eta": 1.0}})
        assert a == b
        assert isinstance(a.param_dict["eta"], float)

    def test_int_param_rejects_fractional(self):
        with pytest.raises(TypeError, match="integer"):
            predictor_registry().normalize({"name": "ave", "params": {"k": 2.5}})

    def test_legacy_shorthand_with_params_rejected(self):
        with pytest.raises(ValueError, match="cannot take explicit params"):
            predictor_registry().normalize(
                {"name": "ave2", "params": {"k": 3}}
            )


class TestSchedulerRegistry:
    def test_order_suffix_lowering(self):
        registry = scheduler_registry()
        assert registry.normalize("easy-sjbf") == ComponentSpec.make(
            "easy", {"order": "sjbf"}
        )
        assert registry.normalize("easy") == ComponentSpec.make(
            "easy", {"order": "fcfs"}
        )
        assert registry.normalize("conservative-sjbf").name == "conservative"
        assert registry.normalize("legacy-easy-sjbf").name == "legacy-easy"

    def test_legacy_name_round_trips(self):
        registry = scheduler_registry()
        for name in ("fcfs", "easy", "easy-sjbf", "easy-saf", "easy-narrow",
                     "conservative", "conservative-sjbf", "multifactor",
                     "multifactor-sjbf", "legacy-easy", "legacy-conservative-sjbf"):
            assert registry.legacy_name(registry.normalize(name)) == name

    def test_builds_ordered_schedulers(self):
        sched = scheduler_registry().build("easy-sjbf")
        assert sched.name == "easy-sjbf"

    def test_invalid_order_rejected_at_build(self):
        with pytest.raises(KeyError):
            scheduler_registry().build({"name": "easy", "params": {"order": "zigzag"}})


class TestCorrectorAndFilterRegistries:
    def test_correctors(self):
        registry = corrector_registry()
        for name in ("requested", "incremental", "doubling"):
            assert registry.build(name).name == name
            assert registry.legacy_name(name) == name

    def test_filters_build_callables(self):
        from repro.workload import get_trace

        trace = get_trace("KTH-SP2", n_jobs=50, seed=1)
        narrow = filter_registry().build(
            {"name": "max-width", "params": {"processors": 4}}
        )(trace)
        assert all(job.processors <= 4 for job in narrow)

    def test_filter_requires_its_param(self):
        with pytest.raises(ValueError, match="missing required"):
            filter_registry().normalize("max-width")


class TestMakeFactories:
    """The redesigned make_* factories accept every spelling."""

    def test_make_predictor_accepts_dict(self):
        from repro.predict import make_predictor

        assert make_predictor({"name": "ave", "params": {"k": 4}}).k == 4
        assert make_predictor("requested").name == "requested"

    def test_make_scheduler_accepts_dict(self):
        from repro.sched import make_scheduler

        assert make_scheduler({"name": "easy", "params": {"order": "saf"}}).name == "easy-saf"

    def test_make_corrector_accepts_dict(self):
        from repro.correct import make_corrector

        assert make_corrector({"name": "doubling"}).name == "doubling"

    def test_make_predictor_unknown_still_keyerror(self):
        from repro.predict import make_predictor

        with pytest.raises(KeyError):
            make_predictor("nope")
