"""Canonical encoding and digest stability of CellSpec.

The golden digests pinned here are the cache-key core: they must be
byte-identical on every supported platform and Python (3.10-3.12 in CI),
and any change to the canonical encoding must bump ``SPEC_VERSION`` and
re-pin them deliberately.
"""

import json
import pickle

import pytest

from repro.spec import SPEC_VERSION, CellSpec, WorkloadSpec

#: (constructor kwargs template id, expected 16-hex digest).  Golden:
#: re-pin only on a deliberate SPEC_VERSION bump.
GOLDEN = {
    "paper-easy": "ce205acb6c522614",
    "eloss-tuned-engine": "97e7dd32c0a561e4",
    "smallbox-ml": "7b928cd48ca3c08c",
}


def golden_cells():
    return {
        "paper-easy": CellSpec.from_triple(
            "KTH-SP2", "requested|none|easy", n_jobs=2000, seed=7
        ),
        "eloss-tuned-engine": CellSpec.from_triple(
            "Curie",
            "ml:sq-lin-large-area|incremental|easy-sjbf",
            n_jobs=1500,
            seed=42,
            min_prediction=30.0,
            tau=5.0,
        ),
        "smallbox-ml": CellSpec.make(
            workload={
                "log": "KTH-SP2",
                "n_jobs": 600,
                "seed": 1,
                "processors": 25,
                "filters": [{"name": "max-width", "params": {"processors": 25}}],
            },
            predictor={
                "name": "ml",
                "params": {
                    "over": "sq", "under": "lin", "weight": "large-area", "eta": 1.0,
                },
            },
            corrector="incremental",
            scheduler={"name": "easy", "params": {"order": "sjbf"}},
        ),
    }


class TestGoldenDigests:
    def test_spec_version_is_one(self):
        # the goldens below encode version 1; a bump must re-pin them
        assert SPEC_VERSION == 1

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_digest_pinned(self, name):
        assert golden_cells()[name].digest() == GOLDEN[name]

    def test_canonical_json_shape(self):
        cell = golden_cells()["paper-easy"]
        assert cell.canonical() == (
            '{"corrector":null,"engine":{"min_prediction":60.0,"tau":10.0},'
            '"predictor":{"name":"requested","params":{}},'
            '"scheduler":{"name":"easy","params":{"order":"fcfs"}},'
            '"spec_version":1,'
            '"workload":{"filters":[],"log":"KTH-SP2","n_jobs":2000,'
            '"processors":null,"seed":7}}'
        )


class TestCanonicalEquivalence:
    def test_spelling_invariance(self):
        """Legacy strings, dicts and explicit params digest identically."""
        via_triple = CellSpec.from_triple(
            "KTH-SP2", "ave2|incremental|easy-sjbf", n_jobs=100, seed=3
        )
        via_dicts = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 100, "seed": 3},
            predictor={"name": "ave", "params": {"k": 2}},
            corrector={"name": "incremental"},
            scheduler={"name": "easy", "params": {"order": "sjbf"}},
        )
        assert via_triple.digest() == via_dicts.digest()
        assert via_triple == via_dicts

    def test_raw_workloadspec_normalizes_like_make(self):
        """A hand-constructed WorkloadSpec with unnormalized filters must
        digest identically to the normalized spelling (one config, one
        cache key)."""
        from repro.spec import ComponentSpec

        raw = WorkloadSpec(
            "KTH-SP2", n_jobs=100, seed=1,
            filters=(ComponentSpec.make("drop-flurries"),),
        )
        a = CellSpec.make(raw, "requested", None, "easy")
        b = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 100, "seed": 1,
                      "filters": ["drop-flurries"]},
            predictor="requested", corrector=None, scheduler="easy",
        )
        assert a.digest() == b.digest()
        # string filters and an unresolved seed work too
        c = CellSpec.make(
            WorkloadSpec("KTH-SP2", n_jobs=100, filters=("drop-oversized",)),
            "requested", None, "easy",
        )
        assert c.workload.seed is not None
        assert c.workload.filters[0].name == "drop-oversized"

    def test_int_float_param_spelling_invariance(self):
        a = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 100, "seed": 3},
            predictor={"name": "ml", "params": {
                "over": "sq", "under": "lin", "weight": "constant", "eta": 1}},
            corrector=None,
            scheduler="easy",
        )
        b = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 100, "seed": 3},
            predictor={"name": "ml", "params": {
                "over": "sq", "under": "lin", "weight": "constant", "eta": 1.0}},
            corrector=None,
            scheduler="easy",
        )
        assert a.digest() == b.digest()

    def test_distinct_params_distinct_digests(self):
        base = dict(
            workload={"log": "KTH-SP2", "n_jobs": 100, "seed": 3},
            predictor="requested",
            corrector=None,
            scheduler="easy",
        )
        a = CellSpec.make(**base)
        b = CellSpec.make(**{**base, "scheduler": "easy-sjbf"})
        c = CellSpec.make(**{**base, "tau": 20.0})
        d = CellSpec.make(**{**base, "workload": {"log": "KTH-SP2", "n_jobs": 101, "seed": 3}})
        assert len({a.digest(), b.digest(), c.digest(), d.digest()}) == 4


class TestRoundTrip:
    def test_obj_round_trip(self):
        for cell in golden_cells().values():
            assert CellSpec.from_obj(cell.to_obj()) == cell
            assert CellSpec.from_obj(json.loads(cell.canonical())) == cell

    def test_pickle_round_trip(self):
        cell = golden_cells()["smallbox-ml"]
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell
        assert clone.digest() == cell.digest()

    def test_unknown_field_rejected(self):
        obj = golden_cells()["paper-easy"].to_obj()
        obj["gpu"] = True
        with pytest.raises(ValueError, match="unknown cell field"):
            CellSpec.from_obj(obj)

    def test_future_spec_version_rejected(self):
        obj = golden_cells()["paper-easy"].to_obj()
        obj["spec_version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="spec_version"):
            CellSpec.from_obj(obj)


class TestWorkloadSpec:
    def test_seed_resolves_to_stable_seed(self):
        from repro.workload import stable_seed

        workload = WorkloadSpec.make("KTH-SP2", n_jobs=100)
        assert workload.seed == stable_seed("KTH-SP2")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            WorkloadSpec.make("KTH-SP2", n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadSpec.make("KTH-SP2", processors=-1)

    def test_triple_key_and_label(self):
        cells = golden_cells()
        assert cells["paper-easy"].triple_key == "requested|none|easy"
        assert cells["paper-easy"].label == "requested|none|easy"
        # tuned eta: no legacy spelling, label falls back to components
        assert cells["smallbox-ml"].triple_key is None
        assert "eta=1.0" in cells["smallbox-ml"].label

    def test_engine_knob_validation(self):
        with pytest.raises(ValueError, match="min_prediction"):
            CellSpec.make(
                workload={"log": "KTH-SP2"},
                predictor="requested",
                corrector=None,
                scheduler="easy",
                min_prediction=0.0,
            )


class TestBuildWorkload:
    def test_filters_and_processors_applied(self):
        from repro.core import build_workload

        workload = WorkloadSpec.make(
            "KTH-SP2",
            n_jobs=80,
            seed=5,
            processors=25,
            filters=({"name": "max-width", "params": {"processors": 25}},),
        )
        trace = build_workload(workload)
        assert trace.processors == 25
        assert all(job.processors <= 25 for job in trace)

    def test_too_small_override_raises_with_hint(self):
        from repro.core import build_workload

        workload = WorkloadSpec.make("KTH-SP2", n_jobs=80, seed=5, processors=1)
        with pytest.raises(ValueError, match="max-width"):
            build_workload(workload)

    def test_run_spec_on_modified_workload(self):
        from repro.core import run_spec

        spec = CellSpec.make(
            workload={
                "log": "KTH-SP2", "n_jobs": 60, "seed": 5, "processors": 25,
                "filters": [{"name": "max-width", "params": {"processors": 25}}],
            },
            predictor="requested",
            corrector=None,
            scheduler="easy",
        )
        outcome = run_spec(spec)
        assert outcome.avebsld >= 1.0
        assert outcome.spec_digest == spec.digest()
