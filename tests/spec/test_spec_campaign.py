"""The declarative campaign path end to end: run_cells == legacy path,
under the local pool and the fsqueue backend, with shared warm caches."""

import threading

import pytest

from repro.core import CampaignConfig, run_campaign, run_cells
from repro.core.triples import HeuristicTriple
from repro.spec import expand_spec_obj

TRIPLES = [
    HeuristicTriple("requested", None, "easy"),
    HeuristicTriple("requested", None, "easy-sjbf"),
    HeuristicTriple("ave2", "incremental", "easy-sjbf"),
    HeuristicTriple("clairvoyant", None, "easy"),
]

CONFIG = CampaignConfig(logs=("KTH-SP2",), n_jobs=80, replicas=2)

SPEC_DOC = {
    "campaign": {
        "name": "mini-paper",
        "logs": ["KTH-SP2"],
        "n_jobs": 80,
        "replicas": 2,
    },
    "grid": [
        {
            "predictor": ["requested"],
            "corrector": ["none"],
            "scheduler": ["easy", "easy-sjbf"],
        },
        {
            "predictor": ["ave2"],
            "corrector": ["incremental"],
            "scheduler": ["easy-sjbf"],
        },
        {
            "predictor": ["clairvoyant"],
            "corrector": ["none"],
            "scheduler": ["easy"],
        },
    ],
}


@pytest.fixture(scope="module")
def legacy_result(tmp_path_factory):
    cache = tmp_path_factory.mktemp("legacy") / "cache.jsonl"
    return (
        run_campaign(CONFIG, cache_path=str(cache), workers=2, triples=TRIPLES),
        cache,
    )


class TestSpecCampaignEquivalence:
    def test_scores_identical_to_legacy_path(self, legacy_result, tmp_path):
        reference, _ = legacy_result
        cells = expand_spec_obj(SPEC_DOC)
        result = run_cells(cells, cache_path=str(tmp_path / "c.jsonl"), workers=2)
        campaign = result.to_campaign_result()
        assert campaign is not None
        assert campaign.scores == reference.scores

    def test_shares_cache_with_legacy_path(self, legacy_result, monkeypatch):
        """Spec-file cells hit the very same cache rows the legacy
        campaign wrote -- zero simulations on a warm legacy cache."""
        import repro.core.run as run_mod

        _, cache = legacy_result

        def boom(_spec, with_telemetry=False):
            raise AssertionError("warm spec campaign must not simulate")

        monkeypatch.setattr(run_mod, "run_cell_report", boom)
        cells = expand_spec_obj(SPEC_DOC)
        result = run_cells(cells, cache_path=str(cache), workers=1)
        assert len(result.scores) == len(cells)

    def test_fsqueue_backend_matches(self, legacy_result, tmp_path):
        from repro.dist import FsQueueBroker, run_worker

        reference, _ = legacy_result
        qdir = str(tmp_path / "q")
        results = {}

        def target():
            results["stats"] = run_worker(
                qdir, worker_id="w0", poll_interval=0.05, max_idle=60.0
            )

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        broker = FsQueueBroker(
            qdir, cells_per_shard=2, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        cells = expand_spec_obj(SPEC_DOC)
        result = run_cells(
            cells, cache_path=str(tmp_path / "c.jsonl"), backend=broker
        )
        thread.join(timeout=60)
        campaign = result.to_campaign_result()
        assert campaign is not None
        assert campaign.scores == reference.scores
        assert results["stats"].shards > 0

    def test_non_legacy_grid_gets_leaderboard_not_tables(self):
        doc = {
            "campaign": {"logs": ["KTH-SP2"], "n_jobs": 40, "replicas": 1},
            "grid": [
                {
                    "predictor": [
                        {"name": "ave", "params": {"k": 2}},
                        {"name": "ml", "params": {
                            "over": "sq", "under": "lin",
                            "weight": "large-area", "eta": 1.0}},
                    ],
                    "corrector": ["incremental"],
                    "scheduler": ["easy-sjbf"],
                }
            ],
        }
        cells = expand_spec_obj(doc)
        result = run_cells(cells, workers=1)
        assert result.to_campaign_result() is None  # tuned eta: no triple key
        board = result.leaderboard()
        assert len(board) == 2
        assert all(row.mean_score >= 1.0 for row in board)
        # both cells were simulated this run, so timing columns are live
        assert all(row.n_cells == 1 for row in board)
        assert all(
            row.mean_seconds is None or row.mean_seconds > 0 for row in board
        )

    def test_heterogeneous_n_jobs_in_one_campaign(self, tmp_path):
        """Per-cell workload sizes -- impossible under the old positional
        API where n_jobs was campaign-global."""
        doc = {
            "campaign": {"logs": ["KTH-SP2"], "replicas": 1},
            "grid": [
                {"n_jobs": 30, "predictor": ["requested"], "scheduler": ["easy"]},
                {"n_jobs": 60, "predictor": ["requested"], "scheduler": ["easy"]},
            ],
        }
        cells = expand_spec_obj(doc)
        assert [c.workload.n_jobs for c in cells] == [30, 60]
        result = run_cells(cells, cache_path=str(tmp_path / "c.jsonl"), workers=1)
        assert len(result.scores) == 2
