"""Spec-level sweep syntax: list-valued knobs and component params."""

import pytest

from repro.spec import SpecFileError, expand_spec_obj
from repro.spec._toml import load_toml_text

SWEEP_TOML = """
[campaign]
name = "sweeps"
logs = ["KTH-SP2"]
n_jobs = 120
replicas = 1
tau = [5.0, 10.0, 20.0]

[[grid]]
predictor = [
  "requested",
  { name = "ml", params = { over = "sq", under = "lin", weight = "large-area", eta = [0.3, 0.5] } },
]
corrector = ["incremental"]
scheduler = ["easy-sjbf"]
"""


def base_doc(**campaign_overrides):
    doc = {
        "campaign": {
            "name": "t",
            "logs": ["KTH-SP2"],
            "n_jobs": 100,
            "replicas": 1,
            **campaign_overrides,
        },
        "grid": [
            {
                "predictor": ["requested"],
                "corrector": ["none"],
                "scheduler": ["easy"],
            }
        ],
    }
    return doc


class TestKnobSweeps:
    def test_scalar_knobs_still_expand_to_one_cell(self):
        assert len(expand_spec_obj(base_doc())) == 1

    def test_tau_list_is_a_grid_axis(self):
        cells = expand_spec_obj(base_doc(tau=[5.0, 10.0, 20.0]))
        assert [c.tau for c in cells] == [5.0, 10.0, 20.0]
        # tau is part of the spec digest: three distinct cells
        assert len({c.digest() for c in cells}) == 3

    def test_n_jobs_and_min_prediction_sweep(self):
        cells = expand_spec_obj(
            base_doc(n_jobs=[100, 200], min_prediction=[30.0, 60.0])
        )
        combos = {(c.workload.n_jobs, c.min_prediction) for c in cells}
        assert combos == {(100, 30.0), (100, 60.0), (200, 30.0), (200, 60.0)}

    def test_knob_sweep_order_is_documented(self):
        """n_jobs varies slower than tau (n_jobs axis is outermost)."""
        cells = expand_spec_obj(base_doc(n_jobs=[100, 200], tau=[5.0, 10.0]))
        assert [(c.workload.n_jobs, c.tau) for c in cells] == [
            (100, 5.0), (100, 10.0), (200, 5.0), (200, 10.0),
        ]

    def test_empty_knob_sweep_rejected(self):
        with pytest.raises(SpecFileError, match="empty tau sweep"):
            expand_spec_obj(base_doc(tau=[]))

    def test_non_numeric_knob_entry_rejected(self):
        with pytest.raises(SpecFileError, match="must be numbers"):
            expand_spec_obj(base_doc(tau=[5.0, "ten"]))

    def test_grid_level_override_sweeps_too(self):
        doc = base_doc()
        doc["grid"][0]["tau"] = [1.0, 2.0]
        cells = expand_spec_obj(doc)
        assert [c.tau for c in cells] == [1.0, 2.0]


class TestParamSweeps:
    def test_component_param_list_cross_products(self):
        doc = base_doc()
        doc["grid"][0]["predictor"] = [
            {
                "name": "ml",
                "params": {
                    "over": "sq",
                    "under": "lin",
                    "weight": "large-area",
                    "eta": [0.3, 0.5],
                },
            }
        ]
        cells = expand_spec_obj(doc)
        etas = [dict(c.predictor.params).get("eta") for c in cells]
        assert etas == [0.3, 0.5]
        assert len({c.digest() for c in cells}) == 2

    def test_two_swept_params_cross_product_in_declaration_order(self):
        doc = base_doc()
        doc["grid"][0]["scheduler"] = ["easy"]
        doc["grid"][0]["predictor"] = [
            {"name": "ave", "params": {"k": [2, 3]}},
        ]
        doc["grid"][0]["corrector"] = ["none"]
        cells = expand_spec_obj(doc)
        assert [dict(c.predictor.params)["k"] for c in cells] == [2, 3]

    def test_empty_param_sweep_rejected(self):
        doc = base_doc()
        doc["grid"][0]["predictor"] = [{"name": "ave", "params": {"k": []}}]
        with pytest.raises(SpecFileError, match="empty sweep"):
            expand_spec_obj(doc)

    def test_scalar_params_pass_through_unchanged(self):
        doc = base_doc()
        doc["grid"][0]["predictor"] = [{"name": "ave", "params": {"k": 4}}]
        cells = expand_spec_obj(doc)
        assert len(cells) == 1
        assert dict(cells[0].predictor.params)["k"] == 4


class TestSweepTomlEndToEnd:
    def test_toml_parses_and_expands_to_nine(self):
        """The checked-in sweeps.toml shape: 3 tau x (1 + 2 etas)."""
        cells = expand_spec_obj(load_toml_text(SWEEP_TOML))
        assert len(cells) == 9
        assert len({c.digest() for c in cells}) == 9

    def test_sweeps_are_deduplicated_by_digest(self):
        cells = expand_spec_obj(base_doc(tau=[5.0, 5.0]))
        assert len(cells) == 1
