"""Experiment spec files: parsing, grid expansion, the paper matrix."""

import json

import pytest

from repro.spec import (
    SpecFileError,
    expand_spec_file,
    expand_spec_obj,
    triple_keys_of,
    validate_spec_file,
)
from repro.spec._toml import _parse_subset, load_toml_text

MINI_TOML = """
[campaign]
name = "mini"
logs = ["KTH-SP2"]
n_jobs = 120
replicas = 2

[[grid]]
predictor = ["requested", { name = "ave", params = { k = 3 } }]
corrector = ["none"]
scheduler = ["easy", "easy-sjbf"]
"""


class TestExpansion:
    def test_mini_grid_counts(self, tmp_path):
        path = tmp_path / "mini.toml"
        path.write_text(MINI_TOML)
        cells = expand_spec_file(str(path))
        # 2 predictors x 1 corrector x 2 schedulers x 1 log x 2 replicas
        assert len(cells) == 8
        assert triple_keys_of(cells) == [
            "requested|none|easy",
            "requested|none|easy-sjbf",
            "ave3|none|easy",
            "ave3|none|easy-sjbf",
        ]

    def test_replica_seeds_match_campaign_config(self, tmp_path):
        from repro.core import CampaignConfig

        path = tmp_path / "mini.toml"
        path.write_text(MINI_TOML)
        cells = expand_spec_file(str(path))
        config = CampaignConfig(logs=("KTH-SP2",), n_jobs=120, replicas=2)
        assert sorted({c.workload.seed for c in cells}) == sorted(
            config.seeds_for("KTH-SP2")
        )

    def test_json_spec_equivalent(self, tmp_path):
        doc = load_toml_text(MINI_TOML)
        toml_path = tmp_path / "mini.toml"
        toml_path.write_text(MINI_TOML)
        json_path = tmp_path / "mini.json"
        json_path.write_text(json.dumps(doc))
        assert [c.digest() for c in expand_spec_file(str(json_path))] == [
            c.digest() for c in expand_spec_file(str(toml_path))
        ]

    def test_duplicate_cells_collapse(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"].append(dict(doc["grid"][0]))  # same block twice
        cells = expand_spec_obj(doc)
        assert len(cells) == 8

    def test_explicit_seeds(self):
        doc = load_toml_text(MINI_TOML)
        del doc["campaign"]["replicas"]
        doc["campaign"]["seeds"] = [11, 12, 13]
        cells = expand_spec_obj(doc)
        assert sorted({c.workload.seed for c in cells}) == [11, 12, 13]

    def test_seeds_and_replicas_conflict_in_one_table(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["seeds"] = [1]
        doc["grid"][0]["replicas"] = 2
        with pytest.raises(SpecFileError, match="pick one"):
            expand_spec_obj(doc)

    def test_grid_seeds_override_campaign_replicas(self):
        # MINI_TOML sets [campaign] replicas = 3; a grid pinning seeds
        # must win (the advertised per-block override)
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["seeds"] = [42]
        cells = expand_spec_obj(doc)
        assert {c.workload.seed for c in cells} == {42}

    def test_grid_replicas_override_campaign_seeds(self):
        doc = load_toml_text(MINI_TOML)
        del doc["campaign"]["replicas"]
        doc["campaign"]["seeds"] = [42]
        doc["grid"][0]["replicas"] = 1
        cells = expand_spec_obj(doc)
        from repro.workload import stable_seed

        assert {c.workload.seed for c in cells} == {stable_seed("KTH-SP2")}

    def test_unknown_log_rejected_at_validation(self):
        doc = load_toml_text(MINI_TOML)
        doc["campaign"]["logs"] = ["KTH-SP3"]
        with pytest.raises(SpecFileError, match="unknown log"):
            expand_spec_obj(doc)

    def test_ml_wildcard_expands_to_20(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["predictor"] = ["ml:*"]
        doc["campaign"]["replicas"] = 1
        cells = expand_spec_obj(doc)
        assert len(cells) == 20 * 2  # x schedulers

    def test_ml_wildcard_only_on_predictor_axis(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["scheduler"] = ["ml:*"]
        with pytest.raises(SpecFileError, match="predictor axis"):
            expand_spec_obj(doc)

    def test_unknown_component_is_spec_file_error(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["predictor"] = ["galactic"]
        with pytest.raises(SpecFileError, match="galactic"):
            expand_spec_obj(doc)

    def test_unknown_campaign_key_rejected(self):
        doc = load_toml_text(MINI_TOML)
        doc["campaign"]["gpus"] = 8
        with pytest.raises(SpecFileError, match="gpus"):
            expand_spec_obj(doc)

    def test_grid_overrides_campaign_defaults(self):
        doc = load_toml_text(MINI_TOML)
        doc["grid"][0]["n_jobs"] = 55
        cells = expand_spec_obj(doc)
        assert all(c.workload.n_jobs == 55 for c in cells)

    def test_missing_grid_rejected(self):
        with pytest.raises(SpecFileError, match="grid"):
            expand_spec_obj({"campaign": {"logs": ["KTH-SP2"]}})


class TestCheckedInSpecs:
    """The repository's experiment files must stay valid and exact."""

    def test_paper_spec_expands_to_the_128_triples(self):
        from repro.core.triples import campaign_triples, reference_triples

        name, cells = validate_spec_file("experiments/paper.toml")
        keys = triple_keys_of(cells)
        campaign_keys = [t.key for t in campaign_triples()]
        reference_keys = [t.key for t in reference_triples()]
        assert keys[: len(campaign_keys)] == campaign_keys  # exact, in order
        assert keys[len(campaign_keys):] == reference_keys
        # full matrix: 130 triples x 6 logs x 3 replicas
        assert len(cells) == 130 * 6 * 3

    def test_paper_spec_cells_equal_legacy_campaign_cells(self):
        from repro.core import CampaignConfig
        from repro.core.triples import campaign_triples, reference_triples

        cells = expand_spec_file("experiments/paper.toml")
        config = CampaignConfig()
        legacy = config.cell_specs(campaign_triples() + reference_triples())
        assert {c.digest() for c in cells} == {c.digest() for c in legacy}

    def test_smallbox_spec_is_valid(self):
        name, cells = validate_spec_file("experiments/smallbox.toml")
        assert name == "smallbox"
        assert all(c.workload.processors == 25 for c in cells)
        assert any(c.triple_key is None for c in cells)  # tuned params


class TestTomlFallback:
    """The 3.10 subset parser must agree with tomllib on our spec files."""

    def test_agrees_on_mini(self):
        assert _parse_subset(MINI_TOML) == load_toml_text(MINI_TOML)

    @pytest.mark.parametrize(
        "path", ["experiments/paper.toml", "experiments/smallbox.toml"]
    )
    def test_agrees_on_checked_in_specs(self, path):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        assert _parse_subset(text) == load_toml_text(text)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            _parse_subset("key value-without-equals\n")

    def test_multiline_arrays_and_comments(self):
        text = 'a = [\n  1, # one\n  2,\n]\nb = "x#y"\n'
        assert _parse_subset(text) == {"a": [1, 2], "b": "x#y"}
