"""Unit tests for the prediction-quality metrics."""

import numpy as np
import pytest

from repro.metrics import mean_absolute_error, mean_loss, prediction_errors
from repro.metrics.prediction import prediction_report, under_prediction_rate
from repro.predict import E_LOSS, SQUARED_LOSS
from repro.sim.results import SimulationResult

from tests.helpers import make_record


def result_with_predictions(pred_actual_pairs, processors=4):
    records = []
    for i, (prediction, runtime) in enumerate(pred_actual_pairs, start=1):
        rec = make_record(job_id=i, runtime=runtime, processors=processors,
                          requested_time=max(prediction, runtime) * 2)
        rec.initial_prediction = prediction
        rec.start_time = 0.0
        rec.end_time = runtime
        records.append(rec)
    return SimulationResult(records, machine_processors=64)


class TestErrorMetrics:
    def test_signed_errors(self):
        result = result_with_predictions([(150.0, 100.0), (50.0, 100.0)])
        assert prediction_errors(result).tolist() == [50.0, -50.0]

    def test_mae(self):
        result = result_with_predictions([(150.0, 100.0), (40.0, 100.0)])
        assert mean_absolute_error(result) == pytest.approx(55.0)

    def test_under_prediction_rate(self):
        result = result_with_predictions([(150.0, 100.0), (50.0, 100.0), (100.0, 100.0)])
        assert under_prediction_rate(result) == pytest.approx(1 / 3)

    def test_mean_loss_eloss(self):
        result = result_with_predictions([(150.0, 100.0)])
        gamma = np.log(100.0 * 4)
        assert mean_loss(result, E_LOSS) == pytest.approx(gamma * 50.0**2)

    def test_report_keys(self):
        result = result_with_predictions([(150.0, 100.0), (50.0, 100.0)])
        report = prediction_report(result, SQUARED_LOSS)
        assert set(report) == {"mae", "mean_loss", "under_rate", "over_rate", "mean_error"}
        assert report["under_rate"] + report["over_rate"] <= 1.0

    def test_perfect_predictions(self):
        result = result_with_predictions([(100.0, 100.0)] * 3)
        assert mean_absolute_error(result) == 0.0
        assert mean_loss(result, E_LOSS) == 0.0


class TestTable8Shape:
    def test_accurate_but_overpredicting_loses_on_eloss(self):
        """An AVE2-like predictor (small symmetric errors, occasionally
        hugely over) has lower MAE but far higher E-Loss than a predictor
        that always slightly under-predicts -- Table 8's phenomenon."""
        runtimes = [1000.0] * 100
        ave2_like = [(1050.0 if i % 2 else 950.0, r) for i, r in enumerate(runtimes)]
        ave2_like[10] = (30000.0, 1000.0)  # one catastrophic over-prediction
        eloss_like = [(r - 400.0, r) for r in runtimes]
        res_a = result_with_predictions(ave2_like)
        res_b = result_with_predictions(eloss_like)
        assert mean_absolute_error(res_a) < mean_absolute_error(res_b)
        assert mean_loss(res_a, E_LOSS) > mean_loss(res_b, E_LOSS)
