"""Test package."""
