"""Unit + property tests for the bounded-slowdown metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import DEFAULT_TAU, bounded_slowdowns


class TestBoundedSlowdown:
    def test_paper_formula(self):
        # bsld = max((wait + p) / max(p, tau), 1)
        values = bounded_slowdowns(np.array([90.0]), np.array([10.0]))
        assert values[0] == pytest.approx(10.0)

    def test_tau_guards_short_jobs(self):
        # a 1-second job waiting 9 seconds: (9+1)/max(1,10) = 1
        values = bounded_slowdowns(np.array([9.0]), np.array([1.0]))
        assert values[0] == 1.0

    def test_floor_is_one(self):
        values = bounded_slowdowns(np.array([0.0]), np.array([100.0]))
        assert values[0] == 1.0

    def test_default_tau_is_ten(self):
        assert DEFAULT_TAU == 10.0

    def test_validates_negative_wait(self):
        with pytest.raises(ValueError):
            bounded_slowdowns(np.array([-1.0]), np.array([10.0]))

    def test_validates_runtime(self):
        with pytest.raises(ValueError):
            bounded_slowdowns(np.array([1.0]), np.array([0.0]))

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            bounded_slowdowns(np.array([1.0, 2.0]), np.array([10.0]))

    def test_validates_tau(self):
        with pytest.raises(ValueError):
            bounded_slowdowns(np.array([1.0]), np.array([10.0]), tau=0.0)


@given(
    waits=st.lists(st.floats(min_value=0.0, max_value=1e7), min_size=1, max_size=50),
    runtimes=st.lists(st.floats(min_value=0.1, max_value=1e7), min_size=50, max_size=50),
)
def test_bsld_properties(waits, runtimes):
    """Properties: bsld >= 1; monotone in wait; runtime-bounded scaling."""
    n = len(waits)
    w = np.array(waits)
    p = np.array(runtimes[:n])
    values = bounded_slowdowns(w, p)
    assert (values >= 1.0).all()
    bumped = bounded_slowdowns(w + 10.0, p)
    assert (bumped >= values - 1e-12).all()
