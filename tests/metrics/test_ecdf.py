"""Unit + property tests for ECDF computation and ASCII charts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import ascii_ecdf_chart, ecdf, ecdf_at


class TestEcdf:
    def test_simple(self):
        x, y = ecdf(np.array([3.0, 1.0, 2.0]))
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert y.tolist() == [1 / 3, 2 / 3, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    def test_ecdf_at_points(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        out = ecdf_at(values, np.array([0.0, 2.5, 10.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_ecdf_at_is_right_continuous(self):
        values = np.array([1.0, 1.0, 2.0])
        assert ecdf_at(values, np.array([1.0]))[0] == pytest.approx(2 / 3)


class TestAsciiChart:
    def test_renders_all_series(self):
        chart = ascii_ecdf_chart(
            {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])},
            x_min=0.0, x_max=5.0, x_label="hours",
        )
        assert "a" in chart and "b" in chart
        assert "hours" in chart
        assert "1.00 |" in chart
        assert "0.00 |" in chart

    def test_validates_range(self):
        with pytest.raises(ValueError):
            ascii_ecdf_chart({"a": np.array([1.0])}, x_min=5.0, x_max=5.0)

    def test_validates_empty(self):
        with pytest.raises(ValueError):
            ascii_ecdf_chart({}, 0.0, 1.0)


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
def test_ecdf_properties(values):
    """Properties: monotone, in [0,1], ends at 1, sorted support."""
    x, y = ecdf(np.array(values))
    assert (np.diff(x) >= 0).all()
    assert (np.diff(y) > 0).all()
    assert 0 < y[0] <= 1.0
    assert y[-1] == pytest.approx(1.0)
