"""Unit tests for cross-log correlation analysis."""

import numpy as np
import pytest

from repro.metrics import correlation_summary, pairwise_correlations, pearson


class TestPearson:
    def test_perfect_correlation(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson(x, y)) < 0.05

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        y = x + rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0, 2.0]), np.array([1.0]))

    def test_validates_size(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([1.0]))

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0, 1.0]), np.array([1.0, 2.0]))


class TestPairwise:
    def scores(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=30)
        return {
            "A": base + rng.normal(scale=0.1, size=30),
            "B": base + rng.normal(scale=2.0, size=30),
            "C": rng.normal(size=30),
        }

    def test_all_pairs_present(self):
        corr = pairwise_correlations(self.scores())
        assert set(corr) == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_summary(self):
        summary = correlation_summary(self.scores())
        assert summary["n_pairs"] == 3
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            pairwise_correlations({"A": np.ones(3), "B": np.ones(4)})

    def test_needs_two_logs(self):
        with pytest.raises(ValueError):
            pairwise_correlations({"A": np.ones(3)})
