"""Test package."""
