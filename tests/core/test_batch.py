"""Batched campaign execution (repro.core.batch).

The contract under test is the tentpole guarantee: sharing one
materialised trace bundle (trace + digest + static feature rows) across
every cell of a trace-identity group changes **nothing** about the
schedules -- cold per-cell runs and warm shared-bundle runs are
byte-identical, for every scheduler family x predictor family, and the
batched campaign path writes exactly the cache rows of the per-cell
path.
"""

import json

import pytest

from repro.core import (
    BatchRunner,
    BundleCache,
    bundle_cache,
    clear_bundle_cache,
    get_bundle,
    group_cells,
    plan_batches,
    run_cell,
    run_cells,
    run_spec_result,
    workload_key,
)
from repro.dist import LocalBroker
from repro.spec import CellSpec, WorkloadSpec, expand_spec_file

#: Every scheduler family x every predictor family, on one shared trace.
SCHEDULERS = ("easy", "easy-sjbf", "conservative")
PREDICTORS = (
    ("requested", "none"),
    ("clairvoyant", "none"),
    ("ave2", "incremental"),
    ("ml:sq-lin-large-area", "incremental"),
)

LOG = "KTH-SP2"
N_JOBS = 100
SEED = 7


def family_matrix(log=LOG, n_jobs=N_JOBS, seed=SEED):
    return [
        CellSpec.from_triple(
            log, f"{pred}|{corr}|{sched}", n_jobs=n_jobs, seed=seed
        )
        for sched in SCHEDULERS
        for pred, corr in PREDICTORS
    ]


def schedule_bytes(spec):
    result = run_spec_result(spec)
    rows = sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections, r.raw_prediction)
        for r in result
    )
    return json.dumps(rows).encode("utf-8")


class TestByteIdentity:
    def test_family_matrix_cold_vs_shared_bundle(self):
        """Every scheduler family x predictor family: a cold cache per
        cell (the old per-cell fixed-cost path) and one warm shared
        bundle produce byte-identical schedules."""
        cells = family_matrix()
        cold = []
        for spec in cells:
            clear_bundle_cache()
            cold.append(schedule_bytes(spec))
        clear_bundle_cache()
        cache = bundle_cache()
        misses0, hits0 = cache.misses, cache.hits
        warm = [schedule_bytes(spec) for spec in cells]
        assert cold == warm
        # one miss for the shared trace, everything else served warm
        assert cache.misses - misses0 == 1
        assert cache.hits - hits0 == len(cells) - 1

    def test_paper_spec_sampled_cells(self):
        """Deterministic sample of the paper's 128+2 matrix, shrunk to a
        test-sized trace: cold per-cell == warm shared-bundle."""
        expanded = expand_spec_file("experiments/paper.toml")
        sampled = expanded[:: max(1, len(expanded) // 6)][:6]
        assert len(sampled) == 6
        cells = [
            CellSpec.make(
                WorkloadSpec.make(spec.workload.log, n_jobs=N_JOBS, seed=SEED),
                spec.predictor,
                spec.corrector,
                spec.scheduler,
                min_prediction=spec.min_prediction,
                tau=spec.tau,
            )
            for spec in sampled
        ]
        cold = []
        for spec in cells:
            clear_bundle_cache()
            cold.append(schedule_bytes(spec))
        clear_bundle_cache()
        warm = [schedule_bytes(spec) for spec in cells]
        assert cold == warm

    def test_static_rows_match_live_extraction(self):
        """The precomputed static columns equal a live extraction replay
        bit for bit."""
        import numpy as np

        from repro.predict.base import UserHistoryTracker
        from repro.predict.features import (
            STATIC_FEATURE_INDICES,
            extract_features,
        )

        clear_bundle_cache()
        bundle = get_bundle(WorkloadSpec.make(LOG, n_jobs=N_JOBS, seed=SEED))
        rows = bundle.static_rows()
        tracker = UserHistoryTracker()
        for job in bundle.trace:
            live = extract_features(job, tracker, job.submit_time)
            tracker.on_submit(job, job.submit_time)
            np.testing.assert_array_equal(
                rows[job.job_id], live[list(STATIC_FEATURE_INDICES)]
            )


class TestGrouping:
    def cells(self):
        out = []
        for seed in (1, 2):
            for sched in ("easy", "easy-sjbf"):
                out.append(
                    CellSpec.from_triple(
                        LOG, f"requested|none|{sched}", n_jobs=50, seed=seed
                    )
                )
        return out

    def test_group_cells_by_trace_identity(self):
        cells = self.cells()
        groups = group_cells(cells)
        assert len(groups) == 2
        assert [len(group) for _key, group in groups] == [2, 2]
        for key, group in groups:
            assert {workload_key(spec.workload) for spec in group} == {key}
        # order-preserving: first group is the first cell's trace
        assert groups[0][1][0] is cells[0]

    def test_group_cells_idempotent_on_grouped_input(self):
        cells = self.cells()
        flat = [spec for _key, group in group_cells(cells) for spec in group]
        assert [spec for _k, g in group_cells(flat) for spec in g] == flat

    def test_plan_batches_trace_pure_and_capped(self):
        cells = self.cells() * 3  # 6 cells per trace group
        batches = plan_batches(cells, max_batch=4)
        assert sorted(len(b) for b in batches) == [2, 2, 4, 4]
        for batch in batches:
            assert len({workload_key(spec.workload) for spec in batch}) == 1
        # partition: every cell exactly once
        assert sorted(id(s) for b in batches for s in b) == sorted(
            id(s) for s in cells
        )

    def test_plan_batches_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="max_batch"):
            plan_batches(self.cells(), max_batch=0)


class TestBundleCache:
    def workloads(self, n):
        return [WorkloadSpec.make(LOG, n_jobs=30 + i, seed=3) for i in range(n)]

    def test_lru_eviction_bounds_capacity(self):
        cache = BundleCache(capacity=2)
        for workload in self.workloads(3):
            cache.get(workload)
        assert len(cache) == 2
        assert cache.misses == 3

    def test_digest_survives_eviction(self):
        cache = BundleCache(capacity=1)
        workloads = self.workloads(2)
        first_digest = cache.get(workloads[0]).digest
        cache.get(workloads[1])  # evicts workloads[0]
        assert len(cache) == 1
        misses_before = cache.misses
        assert cache.digest_of(workloads[0]) == first_digest
        assert cache.misses == misses_before  # served from the memo

    def test_hit_returns_same_bundle_object(self):
        cache = BundleCache(capacity=2)
        workload = self.workloads(1)[0]
        assert cache.get(workload) is cache.get(workload)
        assert cache.hits == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BundleCache(capacity=0)

    def test_clear_resets_everything(self):
        cache = BundleCache(capacity=2)
        workload = self.workloads(1)[0]
        cache.get(workload).digest
        cache.clear()
        assert len(cache) == 0
        misses_before = cache.misses
        cache.digest_of(workload)
        assert cache.misses == misses_before + 1  # truly cold again


class TestBatchRunner:
    def test_scores_match_per_cell_run_cell(self):
        cells = family_matrix(n_jobs=60)[:6]
        clear_bundle_cache()
        runner = BatchRunner()
        results = runner.run(cells)
        assert [spec for spec, _s, _r in results] == cells
        for spec, score, report in results:
            assert score == run_cell(spec)
            assert report["seconds"] >= 0.0
        assert runner.stats.cells == len(cells)
        assert runner.stats.groups == 1
        assert runner.stats.bundles_built <= 1

    def test_on_result_streams_every_cell(self):
        cells = family_matrix(n_jobs=60)[:3]
        seen = []
        BatchRunner().run(cells, on_result=lambda spec, _s, _r: seen.append(spec))
        assert seen == cells


class TestCampaignCacheRows:
    def test_batched_and_per_cell_paths_write_identical_rows(self, tmp_path):
        """run_cells under the batched LocalBroker writes byte-identical
        cache rows (same tokens, same values) to a forced per-cell
        (max_batch=1) dispatch."""
        cells = family_matrix(n_jobs=60)[:8]
        per_cell = str(tmp_path / "percell.jsonl")
        batched = str(tmp_path / "batched.jsonl")
        ref = run_cells(
            cells, cache_path=per_cell,
            backend=LocalBroker(workers=1, max_batch=1),
        )
        got = run_cells(
            cells, cache_path=batched, backend=LocalBroker(workers=1)
        )
        assert got.scores == ref.scores

        def rows(path):
            with open(path, encoding="utf-8") as fh:
                return sorted(
                    (rec["token"], rec["value"])
                    for rec in map(json.loads, fh)
                )

        assert rows(batched) == rows(per_cell)

    def test_pool_batched_matches_serial(self, tmp_path):
        cells = family_matrix(n_jobs=60)[:8]
        serial = run_cells(
            cells, cache_path=str(tmp_path / "s.jsonl"),
            backend=LocalBroker(workers=1),
        )
        pooled = run_cells(
            cells, cache_path=str(tmp_path / "p.jsonl"),
            backend=LocalBroker(workers=2, max_batch=3),
        )
        assert pooled.scores == serial.scores
