"""Unit tests for the prediction analysis (Table 8 / Figures 4-5 data)."""

import numpy as np
import pytest

from repro.core import analyze_predictions
from repro.core.prediction_analysis import DEFAULT_TECHNIQUES, table8_rows


@pytest.fixture(scope="module")
def analysis():
    return analyze_predictions(log="Curie", n_jobs=500)


class TestAnalysis:
    def test_all_techniques_present(self, analysis):
        result, _, _ = analysis
        assert set(result.predictions) == set(DEFAULT_TECHNIQUES)

    def test_common_trace(self, analysis):
        result, _, _ = analysis
        lengths = {len(v) for v in result.predictions.values()}
        assert lengths == {500}
        assert len(result.runtimes) == 500

    def test_requested_time_never_underpredicts(self, analysis):
        result, _, _ = analysis
        errors = result.errors("Requested Time")
        assert (errors >= -1e-9).all()

    def test_eloss_underpredicts_more_than_squared(self, analysis):
        """Figure 4's headline: the E-Loss error ECDF sits left of the
        squared-loss one (more under-prediction)."""
        result, _, _ = analysis
        under_eloss = float(np.mean(result.errors("E-Loss Regression") < 0))
        under_sq = float(np.mean(result.errors("Squared Loss Regression") < 0))
        assert under_eloss > under_sq

    def test_table8_shape(self, analysis):
        """AVE2 must beat E-Loss learning on MAE but lose on mean E-Loss
        (by a wide margin) -- the paper's Table 8."""
        result, _, procs = analysis
        rows = {name: (mae, eloss) for name, mae, eloss in table8_rows(result, procs)}
        ave2_mae, ave2_eloss = rows["AVE2"]
        ml_mae, ml_eloss = rows["E-Loss Regression"]
        assert ml_eloss < ave2_eloss

    def test_mae_accessor(self, analysis):
        result, _, _ = analysis
        for name in result.predictions:
            assert result.mae(name) >= 0.0
