"""Unit tests for report formatting."""

import pytest

from repro.core.reporting import ascii_scatter, format_percent, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["Log", "Score"], [("KTH", 12.345), ("C", 7.0)])
        lines = table.splitlines()
        assert lines[0].startswith("Log")
        assert "12.3" in table
        assert "7.0" in table

    def test_title(self):
        table = format_table(["A"], [("x",)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_mixed_types(self):
        table = format_table(["A", "B"], [("row", "1.2 - 3.4")])
        assert "1.2 - 3.4" in table


class TestFormatPercent:
    def test_paper_style(self):
        assert format_percent(28.4) == "(28%)"
        assert format_percent(-72.0) == "(-72%)"


class TestAsciiScatter:
    def test_renders_series_markers(self):
        chart = ascii_scatter(
            {"one": [(1.0, 1.0), (2.0, 2.0)], "two": [(3.0, 1.0)]},
            x_label="x", y_label="y",
        )
        assert "one" in chart and "two" in chart
        assert "*" in chart and "o" in chart

    def test_log_scale(self):
        chart = ascii_scatter({"s": [(1.0, 1.0), (1000.0, 1000.0)]}, log_scale=True)
        assert "log10" not in chart  # only shown with labels
        chart = ascii_scatter(
            {"s": [(1.0, 1.0), (1000.0, 1000.0)]}, log_scale=True, x_label="a", y_label="b"
        )
        assert "log10" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0.0, 1.0)]}, log_scale=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_single_point_no_crash(self):
        chart = ascii_scatter({"s": [(5.0, 5.0)]})
        assert "*" in chart
