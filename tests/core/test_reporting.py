"""Unit tests for report formatting."""

import pytest

from repro.core.reporting import ascii_scatter, format_percent, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["Log", "Score"], [("KTH", 12.345), ("C", 7.0)])
        lines = table.splitlines()
        assert lines[0].startswith("Log")
        assert "12.3" in table
        assert "7.0" in table

    def test_title(self):
        table = format_table(["A"], [("x",)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_mixed_types(self):
        table = format_table(["A", "B"], [("row", "1.2 - 3.4")])
        assert "1.2 - 3.4" in table


class TestFormatPercent:
    def test_paper_style(self):
        assert format_percent(28.4) == "(28%)"
        assert format_percent(-72.0) == "(-72%)"


class TestAsciiScatter:
    def test_renders_series_markers(self):
        chart = ascii_scatter(
            {"one": [(1.0, 1.0), (2.0, 2.0)], "two": [(3.0, 1.0)]},
            x_label="x", y_label="y",
        )
        assert "one" in chart and "two" in chart
        assert "*" in chart and "o" in chart

    def test_log_scale(self):
        chart = ascii_scatter({"s": [(1.0, 1.0), (1000.0, 1000.0)]}, log_scale=True)
        assert "log10" not in chart  # only shown with labels
        chart = ascii_scatter(
            {"s": [(1.0, 1.0), (1000.0, 1000.0)]}, log_scale=True, x_label="a", y_label="b"
        )
        assert "log10" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0.0, 1.0)]}, log_scale=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_single_point_no_crash(self):
        chart = ascii_scatter({"s": [(5.0, 5.0)]})
        assert "*" in chart


class TestDistProgress:
    """Multi-worker progress aggregation for distributed campaigns."""

    EVENTS = [
        {"event": "enqueue", "generation": 1, "shards": 4, "cells": 40},
        {"event": "worker_start", "worker": "w1", "elapsed": 0.0},
        {"event": "claim", "worker": "w1", "shard": "g1-0000", "elapsed": 0.1},
        {"event": "cell", "worker": "w1", "shard": "g1-0000", "elapsed": 1.0},
        {"event": "cell", "worker": "w1", "shard": "g1-0000", "elapsed": 2.0},
        {"event": "shard_done", "worker": "w1", "shard": "g1-0000", "elapsed": 2.1},
        {"event": "claim", "worker": "w2", "shard": "g1-0001", "elapsed": 0.2},
        {"event": "cell", "worker": "w2", "shard": "g1-0001", "elapsed": 1.5},
        {"event": "shard_abandoned", "worker": "w2", "shard": "g1-0001", "elapsed": 3.0},
        {"event": "worker_exit", "worker": "w2", "reason": "idle", "elapsed": 9.0},
        {"event": "requeue", "shard": "g1-0001", "attempt": 1},
        {"event": "dist_done", "shards": 4, "merge": "merged 4 cache file(s)"},
    ]

    def test_aggregate_worker_progress(self):
        from repro.core.reporting import aggregate_worker_progress

        workers = aggregate_worker_progress(
            [e for e in self.EVENTS if "worker" in e]
        )
        assert workers["w1"] == {
            "cells": 2, "shards_done": 1, "shards_abandoned": 0, "claims": 1,
            "elapsed": 2.1, "status": "running", "reason": "",
        }
        assert workers["w2"]["status"] == "exited"
        assert workers["w2"]["reason"] == "idle"
        assert workers["w2"]["shards_abandoned"] == 1

    def test_format_dist_progress(self):
        from repro.core.reporting import format_dist_progress

        text = format_dist_progress(self.EVENTS)
        assert "4 shard(s), 40 cell(s) enqueued" in text
        assert "w1: 2 cell(s), 1/1 shard(s) done" in text
        assert "w2: 1 cell(s), 0/1 shard(s) done, 1 abandoned" in text
        assert "re-queued: 1 (g1-0001)" in text
        assert "finished: 4 shard(s); merged 4 cache file(s)" in text

    def test_empty_stream(self):
        from repro.core.reporting import format_dist_progress

        assert "no enqueue event" in format_dist_progress([])

    def test_load_progress_dir_tags_streams(self, tmp_path):
        import json as jsonlib

        from repro.core.reporting import load_progress_dir

        (tmp_path / "w1.jsonl").write_text(
            jsonlib.dumps({"event": "cell"}) + "\n" + '{"torn'
        )
        (tmp_path / "w2.jsonl").write_text(
            jsonlib.dumps({"event": "cell", "worker": "override"}) + "\n"
        )
        (tmp_path / "notes.txt").write_text("ignored")
        events = load_progress_dir(str(tmp_path))
        assert [e["worker"] for e in events] == ["w1", "override"]

    def test_load_progress_skips_non_object_lines(self, tmp_path):
        """Corrupt streams must degrade to fewer events, never a crash:
        truncated tails, bare JSON scalars and arrays are all skipped."""
        import json as jsonlib

        from repro.core.reporting import load_progress

        path = tmp_path / "w.jsonl"
        path.write_text(
            "\n".join(
                [
                    jsonlib.dumps({"event": "claim"}),
                    "null",
                    "123",
                    '["not", "an", "event"]',
                    '{"torn": tr',
                    jsonlib.dumps({"event": "cell"}),
                    "",
                ]
            )
        )
        events = load_progress(str(path))
        assert [e["event"] for e in events] == ["claim", "cell"]

    def test_load_progress_dir_survives_corrupt_streams(self, tmp_path):
        """The dir merger used to crash tagging a non-dict event; now the
        bad lines vanish and the good streams still load."""
        from repro.core.reporting import load_progress_dir

        (tmp_path / "bad.jsonl").write_text("null\n42\n")
        (tmp_path / "good.jsonl").write_text('{"event": "cell"}\n')
        events = load_progress_dir(str(tmp_path))
        assert [e["worker"] for e in events] == ["good"]
