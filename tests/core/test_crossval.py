"""Unit tests for leave-one-out triple selection (synthetic scores)."""

import pytest

from repro.core import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    CampaignConfig,
    CampaignResult,
    average_reductions,
    campaign_triples,
    leave_one_out,
    reference_triples,
    selection_consensus,
)


def fabricated_result(winner_key: str, logs=("A", "B", "C")) -> CampaignResult:
    """Hand-built campaign scores where ``winner_key`` dominates everywhere."""
    config = CampaignConfig(logs=tuple(logs), n_jobs=10, replicas=1)
    result = CampaignResult(config=config)
    for log_idx, log in enumerate(logs):
        result.scores[log] = {}
        for t_idx, triple in enumerate(campaign_triples() + reference_triples()):
            base = 50.0 + 3.0 * t_idx + 10.0 * log_idx
            if triple.key == winner_key:
                base = 5.0
            if triple == EASY_TRIPLE:
                base = 100.0
            if triple == EASYPP_TRIPLE:
                base = 60.0
            result.scores[log][triple.key] = [base]
    return result


class TestLeaveOneOut:
    def test_selects_dominant_triple_in_every_fold(self):
        winner = "ml:sq-lin-large-area|incremental|easy-sjbf"
        rows = leave_one_out(fabricated_result(winner))
        assert len(rows) == 3
        assert all(row.selected.key == winner for row in rows)

    def test_scores_reported_on_held_out_log(self):
        winner = "ml:sq-lin-large-area|incremental|easy-sjbf"
        rows = leave_one_out(fabricated_result(winner))
        for row in rows:
            assert row.cv_score == 5.0
            assert row.easy_score == 100.0
            assert row.easypp_score == 60.0

    def test_reductions(self):
        winner = "ml:sq-lin-large-area|incremental|easy-sjbf"
        rows = leave_one_out(fabricated_result(winner))
        assert rows[0].reduction_vs_easy == pytest.approx(95.0)
        assert rows[0].reduction_vs_easypp == pytest.approx(55.0 / 60.0 * 100.0)
        vs_easy, vs_easypp = average_reductions(rows)
        assert vs_easy == pytest.approx(95.0)

    def test_consensus(self):
        winner = "ml:lin-lin-constant|doubling|easy"
        rows = leave_one_out(fabricated_result(winner))
        triple, folds = selection_consensus(rows)
        assert triple.key == winner
        assert folds == 3

    def test_clairvoyant_never_selected(self):
        """The references are upper bounds, not deployable triples."""
        rows = leave_one_out(fabricated_result("nonexistent-key"))
        assert all(not row.selected.is_clairvoyant for row in rows)

    def test_single_log_rejected(self):
        result = fabricated_result("x", logs=("A",))
        with pytest.raises(ValueError):
            leave_one_out(result)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            selection_consensus([])
        with pytest.raises(ValueError):
            average_reductions([])
