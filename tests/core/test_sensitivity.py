"""Unit tests for the sensitivity sweeps."""

import numpy as np
import pytest

from repro.core import EASY_TRIPLE, HeuristicTriple
from repro.core.sensitivity import (
    SweepPoint,
    sweep_estimate_quality,
    sweep_offered_load,
)

CLAIRVOYANT = HeuristicTriple("clairvoyant", None, "easy-sjbf")


@pytest.fixture(scope="module")
def load_sweep():
    return sweep_offered_load(
        [EASY_TRIPLE, CLAIRVOYANT],
        loads=(0.65, 0.9),
        n_jobs=500,
        replicas=2,
    )


class TestLoadSweep:
    def test_all_points_present(self, load_sweep):
        assert len(load_sweep) == 4  # 2 loads x 2 triples
        assert all(isinstance(p, SweepPoint) for p in load_sweep)

    def test_clairvoyant_sjbf_dominates_at_every_load(self, load_sweep):
        """The prediction-quality gap persists across the load range.

        (Small sweeps are noisy samples of a queueing process, so the
        robust invariant is the *ordering* of approaches, not bsld
        monotonicity in the load knob.)
        """
        by = {(p.value, p.triple_key): p.avebsld for p in load_sweep}
        for load in (0.65, 0.9):
            assert by[(load, CLAIRVOYANT.key)] < by[(load, EASY_TRIPLE.key)]

    def test_scores_valid(self, load_sweep):
        assert all(p.avebsld >= 1.0 and np.isfinite(p.avebsld) for p in load_sweep)


class TestEstimateQualitySweep:
    def test_clairvoyant_insensitive_to_estimates(self):
        """Clairvoyant EASY ignores requested times entirely, so its score
        must move far less than standard EASY's when estimates degrade."""
        points = sweep_estimate_quality(
            [CLAIRVOYANT],
            margin_scales=(1.0, 4.0),
            n_jobs=500,
            replicas=2,
        )
        by = {p.value: p.avebsld for p in points}
        # the workload itself shifts slightly (requests cap runtimes), so
        # allow drift but not blow-up
        assert by[4.0] < by[1.0] * 3.0

    def test_knob_recorded(self):
        points = sweep_estimate_quality(
            [EASY_TRIPLE], margin_scales=(2.0,), n_jobs=300, replicas=1
        )
        assert all(p.knob == "margin_scale" and p.value == 2.0 for p in points)
