"""Unit tests for heuristic-triple enumeration."""

import pytest

from repro.core import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)
from repro.correct import IncrementalCorrector
from repro.predict import MLPredictor, RequestedTimePredictor
from repro.sched import EasyScheduler


class TestEnumeration:
    def test_exactly_128_triples(self):
        """The paper: 'the experimental campaign runs 128 simulations'."""
        triples = campaign_triples()
        assert len(triples) == 128
        assert len({t.key for t in triples}) == 128

    def test_composition(self):
        triples = campaign_triples()
        requested = [t for t in triples if t.predictor == "requested"]
        ave2 = [t for t in triples if t.predictor == "ave2"]
        learning = [t for t in triples if t.uses_learning]
        assert len(requested) == 2  # 2 schedulers, no correction needed
        assert len(ave2) == 6  # 3 correctors x 2 schedulers
        assert len(learning) == 120  # 20 losses x 3 correctors x 2 schedulers

    def test_no_clairvoyant_in_campaign(self):
        assert not any(t.is_clairvoyant for t in campaign_triples())

    def test_references(self):
        refs = reference_triples()
        assert len(refs) == 2
        assert all(t.is_clairvoyant for t in refs)

    def test_named_triples_in_campaign(self):
        keys = {t.key for t in campaign_triples()}
        assert EASY_TRIPLE.key in keys
        assert EASYPP_TRIPLE.key in keys
        assert ELOSS_TRIPLE.key in keys


class TestTripleMechanics:
    def test_key_round_trip(self):
        for triple in campaign_triples()[:10]:
            assert HeuristicTriple.from_key(triple.key) == triple

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            HeuristicTriple.from_key("a|b")

    @pytest.mark.parametrize(
        "key", ["|none|easy", "requested||easy", "requested|none|", "||"]
    )
    def test_empty_component_rejected(self, key):
        with pytest.raises(ValueError, match="non-empty"):
            HeuristicTriple.from_key(key)

    def test_lowering_to_cell_components(self):
        pred, corr, sched = ELOSS_TRIPLE.to_cell_components()
        assert pred.name == "ml"
        assert pred.param_dict["weight"] == "large-area"
        assert corr.name == "incremental"
        assert sched.param_dict["order"] == "sjbf"
        assert EASY_TRIPLE.to_cell_components()[1] is None

    def test_build_easy(self):
        scheduler, predictor, corrector = EASY_TRIPLE.build()
        assert isinstance(scheduler, EasyScheduler)
        assert scheduler.backfill_order == "fcfs"
        assert isinstance(predictor, RequestedTimePredictor)
        assert corrector is None

    def test_build_eloss_winner(self):
        scheduler, predictor, corrector = ELOSS_TRIPLE.build()
        assert isinstance(scheduler, EasyScheduler)
        assert scheduler.backfill_order == "sjbf"
        assert isinstance(predictor, MLPredictor)
        assert predictor.loss.key == "sq-lin-large-area"
        assert isinstance(corrector, IncrementalCorrector)

    def test_build_returns_fresh_state(self):
        s1, p1, c1 = EASYPP_TRIPLE.build()
        s2, p2, c2 = EASYPP_TRIPLE.build()
        assert s1 is not s2
        assert p1 is not p2

    def test_describe_special_names(self):
        assert "EASY" in EASY_TRIPLE.describe()
        assert "EASY++" in EASYPP_TRIPLE.describe()
        assert "winner" in ELOSS_TRIPLE.describe()
