"""Campaign subsystem tests: cache warm-paths, parallelism, progress.

These pin the PR's campaign-throughput guarantees:

* a finished campaign re-runs with **zero** simulations (everything is
  served from the JSONL result cache);
* cache cells are invalidated by anything that changes the numbers
  (trace content, engine version) and survive torn writes;
* the parallel fan-out produces exactly the serial results;
* the JSONL progress stream is complete and renderable.
"""

import pytest

import repro.core.campaign as campaign_mod
import repro.core.run as run_mod
from repro.core import (
    CampaignConfig,
    HeuristicTriple,
    ResultCache,
    format_progress,
    load_progress,
    run_campaign,
)

#: A tiny but heterogeneous triple subset: no corrector, corrector, SJBF.
TRIPLES = [
    HeuristicTriple("requested", None, "easy"),
    HeuristicTriple("requested", None, "easy-sjbf"),
    HeuristicTriple("ave2", "incremental", "easy"),
    HeuristicTriple("ave2", "incremental", "easy-sjbf"),
]

CONFIG = CampaignConfig(logs=("KTH-SP2",), n_jobs=120, replicas=2)


@pytest.fixture(scope="module")
def warm_campaign(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache") / "cells.jsonl"
    progress = tmp_path_factory.mktemp("progress") / "progress.jsonl"
    result = run_campaign(
        CONFIG,
        cache_path=str(cache),
        workers=1,
        triples=TRIPLES,
        progress_path=str(progress),
    )
    return result, cache, progress


class TestWarmCache:
    def test_rerun_performs_zero_simulations(self, warm_campaign, monkeypatch):
        """With the cache warm, the runner must never reach a worker."""
        result, cache, _ = warm_campaign

        def boom(spec, with_telemetry=False):
            raise AssertionError(f"simulation dispatched for {spec}")

        monkeypatch.setattr(run_mod, "run_cell_report", boom)
        again = run_campaign(
            CONFIG, cache_path=str(cache), workers=1, triples=TRIPLES
        )
        assert again.scores == result.scores

    def test_partial_cache_resumes_only_missing_cells(
        self, warm_campaign, tmp_path, monkeypatch
    ):
        result, cache, _ = warm_campaign
        # keep only half the cells (plus a torn trailing line)
        lines = cache.read_text().strip().splitlines()
        partial = tmp_path / "partial.jsonl"
        kept = lines[: len(lines) // 2]
        partial.write_text("\n".join(kept) + '\n{"token": "torn-wr')

        calls = []
        real = run_mod.run_cell_report

        def counting(spec, with_telemetry=False):
            calls.append(spec)
            return real(spec, with_telemetry=with_telemetry)

        monkeypatch.setattr(run_mod, "run_cell_report", counting)
        resumed = run_campaign(
            CONFIG, cache_path=str(partial), workers=1, triples=TRIPLES
        )
        assert resumed.scores == result.scores
        assert len(calls) == len(lines) - len(kept)

    def test_engine_version_invalidates_cache(self, warm_campaign, monkeypatch):
        """Bumping the engine version must abandon every cached cell."""
        _, cache, _ = warm_campaign
        monkeypatch.setattr(campaign_mod, "ENGINE_VERSION", 9999)

        calls = []
        real = run_mod.run_cell_report

        def counting(spec, with_telemetry=False):
            calls.append(spec)
            return real(spec, with_telemetry=with_telemetry)

        monkeypatch.setattr(run_mod, "run_cell_report", counting)
        run_campaign(CONFIG, cache_path=str(cache), workers=1, triples=TRIPLES)
        assert len(calls) == len(TRIPLES) * CONFIG.replicas


class TestParallelEqualsSerial:
    def test_scores_identical(self, warm_campaign, tmp_path):
        serial, _, _ = warm_campaign
        parallel = run_campaign(
            CONFIG,
            cache_path=str(tmp_path / "par.jsonl"),
            workers=2,
            triples=TRIPLES,
        )
        assert parallel.scores == serial.scores


class TestProgressStream:
    def test_events_complete(self, warm_campaign):
        _, _, progress = warm_campaign
        events = load_progress(str(progress))
        kinds = [e["event"] for e in events]
        n_cells = len(TRIPLES) * CONFIG.replicas
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("cell") == n_cells
        start = events[0]
        assert start["total"] == n_cells
        assert start["pending"] == n_cells
        done = [e["done"] for e in events if e["event"] == "cell"]
        assert done == list(range(1, n_cells + 1))

    def test_format_progress_renders(self, warm_campaign):
        _, _, progress = warm_campaign
        text = format_progress(load_progress(str(progress)))
        assert "KTH-SP2" in text
        assert "8/8" in text
        assert "finished in" in text

    def test_format_progress_live_snapshot(self, warm_campaign):
        """A truncated stream (live campaign) still renders, with an ETA."""
        _, _, progress = warm_campaign
        events = load_progress(str(progress))
        snapshot = [e for e in events if e["event"] != "end"][:-2]
        text = format_progress(snapshot)
        assert "simulated:" in text
        assert "finished" not in text


class TestResultCache:
    def test_append_only_round_trip(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        cache = ResultCache(str(path))
        cache.put("a", 1.5)
        cache.put("b", 2.5)
        cache.close()
        again = ResultCache(str(path))
        assert again.get("a") == 1.5
        assert again.get("b") == 2.5
        assert len(again) == 2

    def test_later_entries_win(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        cache = ResultCache(str(path))
        cache.put("a", 1.0)
        cache.put("a", 2.0)
        cache.close()
        assert ResultCache(str(path)).get("a") == 2.0
