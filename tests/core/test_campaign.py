"""Unit tests for the campaign runner (small configurations)."""

import pytest

from repro.core import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    CampaignConfig,
    run_campaign,
    run_triple,
)
from repro.core.campaign import _DiskCache


@pytest.fixture(scope="module")
def small_campaign(tmp_path_factory):
    """One tiny log, one replica; cached so all tests share the cost."""
    cache = tmp_path_factory.mktemp("cache") / "campaign.json"
    config = CampaignConfig(logs=("KTH-SP2",), n_jobs=250, replicas=1)
    return run_campaign(config, cache_path=str(cache), workers=8), cache, config


class TestRunTriple:
    def test_outcome_fields(self):
        outcome = run_triple("KTH-SP2", EASY_TRIPLE.key, n_jobs=150)
        assert outcome.avebsld >= 1.0
        assert 0.0 < outcome.utilization <= 1.0
        assert outcome.corrections == 0  # requested time never under-predicts

    def test_deterministic(self):
        a = run_triple("KTH-SP2", EASYPP_TRIPLE.key, n_jobs=150)
        b = run_triple("KTH-SP2", EASYPP_TRIPLE.key, n_jobs=150)
        assert a.avebsld == b.avebsld


class TestCampaign:
    def test_all_triples_scored(self, small_campaign):
        result, _, _ = small_campaign
        scores = result.scores["KTH-SP2"]
        assert len(scores) == 130  # 128 + 2 clairvoyant references
        assert all(len(v) == 1 for v in scores.values())
        assert all(v[0] >= 1.0 for v in scores.values())

    def test_table1_rows(self, small_campaign):
        result, _, _ = small_campaign
        rows = result.table1_rows()
        assert len(rows) == 1
        log, easy, clair, reduction = rows[0]
        assert log == "KTH-SP2"
        assert easy >= 1.0 and clair >= 1.0

    def test_table6_rows(self, small_campaign):
        result, _, _ = small_campaign
        (log, cf, cs, easy, easypp, rng_f, rng_s) = result.table6_rows()[0]
        assert rng_f[0] <= rng_f[1]
        assert rng_s[0] <= rng_s[1]

    def test_learning_range_over_60_triples(self, small_campaign):
        result, _, _ = small_campaign
        best, worst = result.learning_range("KTH-SP2", "easy-sjbf")
        assert best <= worst

    def test_best_triple_minimises_sum(self, small_campaign):
        result, _, _ = small_campaign
        best = result.best_triple()
        scores = [result.mean("KTH-SP2", t) for t in result.triple_keys()]
        assert result.mean("KTH-SP2", best) == pytest.approx(min(scores))

    def test_score_vector(self, small_campaign):
        result, _, _ = small_campaign
        keys = result.triple_keys()
        vec = result.score_vector("KTH-SP2", keys)
        assert vec.shape == (128,)

    def test_cache_reused(self, small_campaign):
        result, cache, config = small_campaign
        # second run must be served from cache (no new entries appended)
        before = cache.read_text()
        again = run_campaign(config, cache_path=str(cache), workers=1)
        after = cache.read_text()
        assert before == after
        assert again.scores == result.scores

    def test_cache_token_distinguishes_inputs(self):
        c1 = CampaignConfig(n_jobs=100)
        c2 = CampaignConfig(n_jobs=200)
        t = EASY_TRIPLE.key
        assert c1.cache_token("KTH-SP2", t, 1) != c2.cache_token("KTH-SP2", t, 1)
        assert c1.cache_token("KTH-SP2", t, 1) != c1.cache_token("CTC-SP2", t, 1)
        assert c1.cache_token("KTH-SP2", t, 1) != c1.cache_token("KTH-SP2", t, 2)

    def test_cache_token_embeds_trace_digest_and_engine_version(self):
        from repro.core import trace_digest
        from repro.sim.engine import ENGINE_VERSION

        config = CampaignConfig(n_jobs=100)
        token = config.cache_token("KTH-SP2", EASY_TRIPLE.key, 7)
        assert trace_digest("KTH-SP2", 100, 7) in token
        assert f"e{ENGINE_VERSION}" in token
        # different seeds draw different traces, so the digests differ too
        assert trace_digest("KTH-SP2", 100, 7) != trace_digest("KTH-SP2", 100, 8)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.json"
        cache = _DiskCache(str(path))
        cache.put("k", 1.5)
        cache.flush()
        again = _DiskCache(str(path))
        assert again.get("k") == 1.5

    def test_missing_returns_none(self, tmp_path):
        cache = _DiskCache(str(tmp_path / "missing.json"))
        assert cache.get("k") is None

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        cache = _DiskCache(str(path))
        assert cache.get("k") is None

    def test_none_path_noop(self):
        cache = _DiskCache(None)
        cache.put("k", 1.0)
        cache.flush()  # must not raise
        assert cache.get("k") == 1.0
