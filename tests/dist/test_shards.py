"""Shard planning: balance, determinism, bench-seeded cost model."""

import json

import pytest

from repro.dist import CellCostModel, load_bench_cost_model, plan_shards
from repro.dist.shards import DEFAULT_CELLS_PER_SHARD
from repro.spec import CellSpec


def cell(log, key, seed, n_jobs=500):
    return CellSpec.from_triple(log, key, n_jobs=n_jobs, seed=seed)


def cells_for(n, logs=("KTH-SP2", "Curie"), seed0=100, n_jobs=500):
    keys = [
        "requested|none|easy",
        "ave2|incremental|easy-sjbf",
        "clairvoyant|none|easy",
    ]
    return [
        cell(logs[i % len(logs)], keys[i % len(keys)], seed0 + i, n_jobs)
        for i in range(n)
    ]


class TestCostModel:
    def test_corrected_triples_cost_more(self):
        model = CellCostModel()
        plain = model.cell_cost(cell("KTH-SP2", "requested|none|easy", 1, 1000))
        corrected = model.cell_cost(cell("KTH-SP2", "ave2|incremental|easy", 1, 1000))
        assert corrected > plain

    def test_cost_scales_with_jobs(self):
        model = CellCostModel()
        assert model.cell_cost(cell("KTH-SP2", "requested|none|easy", 1, 2000)) == (
            2 * model.cell_cost(cell("KTH-SP2", "requested|none|easy", 1, 1000))
        )

    def test_unknown_scheduler_uses_worst_weight(self):
        model = CellCostModel()
        exotic = model.cell_cost(cell("KTH-SP2", "requested|none|multifactor", 1, 100))
        assert exotic == max(model.scheduler_weights.values()) * 100

    def test_parameterized_scheduler_keys_match_bench_names(self):
        # easy(order=sjbf) must hit the "easy-sjbf" bench weight however
        # the spec was spelled
        model = CellCostModel(
            scheduler_weights={"easy": 1.0, "easy-sjbf": 7.0, "conservative": 2.0}
        )
        spec = CellSpec.make(
            workload={"log": "KTH-SP2", "n_jobs": 100},
            predictor="requested",
            corrector=None,
            scheduler={"name": "easy", "params": {"order": "sjbf"}},
        )
        assert model.cell_cost(spec) == 7.0 * 100


class TestBenchSeeding:
    def test_loads_weights_from_bench_report(self, tmp_path):
        report = {
            "scenarios": [
                {"scenario": "easy/wide", "profile_seconds": 1.0,
                 "trace": {"n_jobs": 1000}},
                {"scenario": "easy-sjbf/wide", "profile_seconds": 2.0,
                 "trace": {"n_jobs": 1000}},
                {"scenario": "easy-sjbf/corrections", "profile_seconds": 8.0,
                 "trace": {"n_jobs": 1000}},
                {"scenario": "conservative/narrow", "profile_seconds": 3.0,
                 "trace": {"n_jobs": 1000}},
            ]
        }
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(report))
        model = load_bench_cost_model(str(path))
        assert model.source == str(path)
        assert model.scheduler_weights["easy"] == 0.001
        assert model.scheduler_weights["easy-sjbf"] == 0.002
        assert model.scheduler_weights["conservative"] == 0.003
        assert model.correction_factor == 4.0  # 8.0 / 2.0

    def test_missing_file_falls_back_to_defaults(self, tmp_path):
        model = load_bench_cost_model(str(tmp_path / "nope.json"))
        assert model.source == "defaults"

    def test_corrupt_file_falls_back_to_defaults(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_bench_cost_model(str(path)).source == "defaults"

    def test_unusable_scenario_warns_and_falls_back(
        self, tmp_path, caplog, monkeypatch
    ):
        """Regression: a scenario with missing/zero n_jobs or seconds
        used to be dropped silently, degrading LPT balance with no clue
        why.  It must warn naming the scenario and keep the default
        weight for it."""
        import logging

        # setup_logging() (run by CLI tests) stops propagation at the
        # "repro" logger; re-enable it so caplog sees the warning
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        report = {
            "scenarios": [
                {"scenario": "easy/wide", "profile_seconds": 1.0,
                 "trace": {"n_jobs": 0}},
                {"scenario": "easy-sjbf/wide", "profile_seconds": 2.0,
                 "trace": {"n_jobs": 1000}},
                {"scenario": "conservative/narrow", "profile_seconds": 0,
                 "trace": {"n_jobs": 1000}},
            ]
        }
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(report))
        with caplog.at_level("WARNING", logger="repro.dist.shards"):
            model = load_bench_cost_model(str(path))
        dropped = [rec.message for rec in caplog.records]
        assert any("easy/wide" in msg for msg in dropped)
        assert any("conservative/narrow" in msg for msg in dropped)
        default = CellCostModel()
        # the unusable scenarios keep their calibrated defaults...
        assert model.scheduler_weights["easy"] == default.scheduler_weights["easy"]
        assert (
            model.scheduler_weights["conservative"]
            == default.scheduler_weights["conservative"]
        )
        # ...while the good one still seeds from the report
        assert model.scheduler_weights["easy-sjbf"] == 0.002

    def test_repo_bench_report_parses(self):
        # the CI artifact (when present) must keep seeding the planner
        import os

        if not os.path.exists("BENCH_engine.json"):
            pytest.skip("no BENCH_engine.json in this checkout (CI builds it)")
        model = load_bench_cost_model("BENCH_engine.json")
        assert model.source.endswith("BENCH_engine.json")
        assert model.correction_factor >= 1.0


class TestPlanShards:
    def test_partition_is_exact(self):
        cells = cells_for(50)
        shards = plan_shards(cells, n_shards=7)
        flat = [c for shard in shards for c in shard.cells]
        assert sorted(c.digest() for c in flat) == sorted(c.digest() for c in cells)
        assert len({c.digest() for c in flat}) == len(cells)

    def test_default_granularity(self):
        shards = plan_shards(cells_for(100))
        expected = (100 + DEFAULT_CELLS_PER_SHARD - 1) // DEFAULT_CELLS_PER_SHARD
        assert len(shards) == expected

    def test_deterministic(self):
        a = plan_shards(cells_for(64), n_shards=5)
        b = plan_shards(cells_for(64), n_shards=5)
        assert a == b

    def test_balanced_loads(self):
        model = CellCostModel()
        shards = plan_shards(cells_for(90), n_shards=6, cost_model=model)
        costs = [shard.est_cost for shard in shards]
        # LPT guarantees max <= 4/3 * optimum; sanity-check a loose bound
        assert max(costs) <= 2.0 * min(costs)

    def test_more_shards_than_cells_collapses(self):
        shards = plan_shards(cells_for(3), n_shards=10)
        assert len(shards) == 3
        assert all(len(shard.cells) == 1 for shard in shards)

    def test_empty_cells(self):
        assert plan_shards([]) == []

    def test_prefix_in_shard_ids(self):
        shards = plan_shards(cells_for(4), n_shards=2, prefix="g7")
        assert all(shard.shard_id.startswith("g7-") for shard in shards)

    def test_manifest_carries_specs_and_versions(self):
        from repro.core.campaign import CACHE_VERSION
        from repro.sim.engine import ENGINE_VERSION
        from repro.spec import SPEC_VERSION

        shard = plan_shards(cells_for(4, n_jobs=123), n_shards=1)[0]
        manifest = shard.manifest()
        assert manifest["cache_version"] == CACHE_VERSION
        assert manifest["engine_version"] == ENGINE_VERSION
        assert manifest["spec_version"] == SPEC_VERSION
        # cells travel in canonical spec form and round-trip exactly
        rebuilt = [CellSpec.from_obj(obj) for obj in manifest["cells"]]
        assert rebuilt == list(shard.cells)
        assert all(obj["workload"]["n_jobs"] == 123 for obj in manifest["cells"])

    def test_mixed_workload_sizes_weighted(self):
        # per-cell n_jobs (impossible under the old shard-level config)
        big = cell("KTH-SP2", "requested|none|easy", 1, n_jobs=4000)
        small = cell("KTH-SP2", "requested|none|easy", 2, n_jobs=100)
        model = CellCostModel()
        assert model.cell_cost(big) == 40 * model.cell_cost(small)


class TestTraceGrouping:
    """Same-trace cells must land adjacently in one shard (batch unlock)."""

    def shared_trace_cells(self):
        """2 trace identities x 4 triples = the shape of a real campaign."""
        keys = [
            "requested|none|easy",
            "requested|none|easy-sjbf",
            "ave2|incremental|easy-sjbf",
            "clairvoyant|none|easy",
        ]
        return [
            cell("KTH-SP2", key, seed, n_jobs=200)
            for seed in (1, 2)
            for key in keys
        ]

    def test_shards_are_trace_pure_when_balance_allows(self):
        shards = plan_shards(self.shared_trace_cells(), cells_per_shard=4)
        assert len(shards) == 2
        for shard in shards:
            assert len(shard.trace_keys) == 1
            workload_objs = {
                json.dumps(c.workload.to_obj(), sort_keys=True)
                for c in shard.cells
            }
            assert len(workload_objs) == 1

    def test_manifest_carries_trace_keys(self):
        from repro.core.batch import workload_key

        shards = plan_shards(self.shared_trace_cells(), cells_per_shard=4)
        for shard in shards:
            manifest = shard.manifest()
            assert manifest["trace_keys"] == list(shard.trace_keys)
            assert manifest["trace_keys"] == [
                workload_key(shard.cells[0].workload)
            ]

    def test_oversized_group_splits_but_stays_grouped(self):
        cells = self.shared_trace_cells()  # 2 groups of 4
        shards = plan_shards(cells, n_shards=4)
        assert len(shards) == 4
        # every shard still holds cells of exactly one trace
        assert all(len(shard.trace_keys) == 1 for shard in shards)
        flat = [c.digest() for shard in shards for c in shard.cells]
        assert sorted(flat) == sorted(c.digest() for c in cells)

    def test_singleton_groups_degrade_to_classic_lpt(self):
        """Distinct-trace campaigns (the pre-batching shape) must plan
        exactly as before: chunking cannot change singleton-group LPT."""
        shards = plan_shards(cells_for(30), n_shards=4)
        assert len(shards) == 4
        assert all(len(shard.trace_keys) == len(shard.cells) for shard in shards)
        costs = [shard.est_cost for shard in shards]
        assert max(costs) <= 2.0 * min(costs)
