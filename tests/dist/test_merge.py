"""Cache merging: dedup, version fencing, torn tails (the PR's merge
correctness satellite)."""

import json

import pytest

from repro.core.campaign import CACHE_VERSION
from repro.dist import (
    CellConflictError,
    MergeVersionError,
    iter_cache_records,
    merge_caches,
)
from repro.sim.engine import ENGINE_VERSION

PREFIX = f"v{CACHE_VERSION}|e{ENGINE_VERSION}|"


def token(name):
    return f"{PREFIX}KTH-SP2@{name}|requested|none|easy|n=100|s=1|mp=60|tau=10"


def write_cache(path, rows, tail=""):
    with open(path, "w", encoding="utf-8") as fh:
        for tok, value in rows:
            fh.write(json.dumps({"token": tok, "value": value}) + "\n")
        fh.write(tail)


class TestMergeHappyPath:
    def test_merges_disjoint_shards(self, tmp_path):
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.5), (token("bb"), 2.5)])
        write_cache(tmp_path / "b.jsonl", [(token("cc"), 3.5)])
        cells, report = merge_caches(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        )
        assert cells == {token("aa"): 1.5, token("bb"): 2.5, token("cc"): 3.5}
        assert report.files == 2
        assert report.unique == 3
        assert report.duplicates == 0

    def test_directory_input_expands(self, tmp_path):
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.0)])
        write_cache(tmp_path / "b.jsonl", [(token("bb"), 2.0)])
        (tmp_path / "notes.txt").write_text("ignored")
        cells, report = merge_caches([str(tmp_path)])
        assert report.files == 2
        assert len(cells) == 2

    def test_canonical_output_is_order_independent(self, tmp_path):
        rows = [(token("bb"), 2.0), (token("aa"), 1.0), (token("cc"), 3.0)]
        write_cache(tmp_path / "fwd.jsonl", rows)
        write_cache(tmp_path / "rev.jsonl", list(reversed(rows)))
        merge_caches([str(tmp_path / "fwd.jsonl")], str(tmp_path / "out1.jsonl"))
        merge_caches([str(tmp_path / "rev.jsonl")], str(tmp_path / "out2.jsonl"))
        assert (tmp_path / "out1.jsonl").read_bytes() == (
            tmp_path / "out2.jsonl"
        ).read_bytes()

    def test_canonical_output_reloads_as_result_cache(self, tmp_path):
        from repro.core.campaign import ResultCache

        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.25)])
        merge_caches([str(tmp_path / "a.jsonl")], str(tmp_path / "out.jsonl"))
        cache = ResultCache(str(tmp_path / "out.jsonl"))
        assert cache.get(token("aa")) == 1.25

    def test_missing_explicit_input_rejected(self, tmp_path):
        """A typo'd path must not silently merge to an empty cache."""
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.0)])
        with pytest.raises(FileNotFoundError, match="ghost"):
            merge_caches([str(tmp_path / "a.jsonl"), str(tmp_path / "ghost.jsonl")])

    def test_empty_directory_input_is_fine(self, tmp_path):
        (tmp_path / "results").mkdir()
        cells, report = merge_caches([str(tmp_path / "results")])
        assert cells == {}
        assert report.files == 0


class TestDedupAndConflicts:
    def test_duplicate_cells_across_shards_dedup(self, tmp_path):
        """A crashed attempt's partial file plus its retry is the normal
        case: identical values collapse silently."""
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.5), (token("bb"), 2.5)])
        write_cache(tmp_path / "b.jsonl", [(token("bb"), 2.5), (token("cc"), 3.5)])
        cells, report = merge_caches([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        assert len(cells) == 3
        assert report.duplicates == 1
        assert report.records == 4

    def test_conflicting_values_rejected(self, tmp_path):
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.5)])
        write_cache(tmp_path / "b.jsonl", [(token("aa"), 9.9)])
        with pytest.raises(CellConflictError, match="conflicting values"):
            merge_caches([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])


class TestVersionFencing:
    def test_wrong_cache_version_rejected(self, tmp_path):
        stale = token("aa").replace(f"v{CACHE_VERSION}|", f"v{CACHE_VERSION - 1}|")
        write_cache(tmp_path / "a.jsonl", [(stale, 1.0)])
        with pytest.raises(MergeVersionError, match="CACHE_VERSION/ENGINE_VERSION"):
            merge_caches([str(tmp_path / "a.jsonl")])

    def test_wrong_engine_version_rejected(self, tmp_path):
        stale = token("aa").replace(f"e{ENGINE_VERSION}|", f"e{ENGINE_VERSION + 1}|")
        write_cache(tmp_path / "a.jsonl", [(stale, 1.0)])
        with pytest.raises(MergeVersionError):
            merge_caches([str(tmp_path / "a.jsonl")])

    def test_error_names_file_and_line(self, tmp_path):
        stale = token("aa").replace(f"v{CACHE_VERSION}|", "v0|")
        write_cache(tmp_path / "a.jsonl", [(token("bb"), 1.0), (stale, 2.0)])
        with pytest.raises(MergeVersionError, match=r"a\.jsonl:2"):
            merge_caches([str(tmp_path / "a.jsonl")])

    def test_opt_out_accepts_foreign_versions(self, tmp_path):
        stale = token("aa").replace(f"v{CACHE_VERSION}|", "v0|")
        write_cache(tmp_path / "a.jsonl", [(stale, 1.0)])
        cells, _ = merge_caches([str(tmp_path / "a.jsonl")], check_versions=False)
        assert cells == {stale: 1.0}


class TestTornTails:
    def test_torn_tail_does_not_poison_merge(self, tmp_path):
        write_cache(
            tmp_path / "a.jsonl",
            [(token("aa"), 1.5)],
            tail='{"token": "' + token("bb") + '", "val',  # crash mid-append
        )
        write_cache(tmp_path / "b.jsonl", [(token("bb"), 2.5)])
        cells, report = merge_caches([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        assert cells == {token("aa"): 1.5, token("bb"): 2.5}
        assert report.torn_lines == 1

    def test_iter_cache_records_counts_trailing_torn(self, tmp_path):
        write_cache(tmp_path / "a.jsonl", [(token("aa"), 1.0)], tail="garbage")
        records, torn = iter_cache_records(str(tmp_path / "a.jsonl"))
        assert len(records) == 1
        assert torn == 1

    def test_empty_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text(
            "\n" + json.dumps({"token": token("aa"), "value": 1.0}) + "\n\n"
        )
        cells, report = merge_caches([str(path)])
        assert len(cells) == 1
        assert report.torn_lines == 0
