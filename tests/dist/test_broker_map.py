"""Broker.map_tasks: the generic order-preserving fan-out primitive."""

from __future__ import annotations

from repro.dist.broker import Broker, FsQueueBroker, LocalBroker


def square(payload: dict) -> int:
    return payload["x"] * payload["x"]


PAYLOADS = [{"x": x} for x in range(7)]
WANT = [x * x for x in range(7)]


class MinimalBroker(Broker):
    """Bare subclass: exercises the serial map_tasks default."""

    def dispatch(self, cells, on_result, telemetry=None):  # pragma: no cover
        raise NotImplementedError


def test_serial_default_preserves_order():
    assert MinimalBroker().map_tasks(square, PAYLOADS) == WANT


def test_local_pool_matches_serial():
    serial = LocalBroker(workers=1).map_tasks(square, PAYLOADS)
    pooled = LocalBroker(workers=2).map_tasks(square, PAYLOADS)
    assert serial == pooled == WANT


def test_small_batches_stay_serial():
    # two payloads never pay pool startup; result is identical either way
    assert LocalBroker(workers=4).map_tasks(square, PAYLOADS[:2]) == WANT[:2]


def test_empty_payloads():
    assert LocalBroker(workers=2).map_tasks(square, []) == []


def test_fsqueue_broker_inherits_serial_fallback(tmp_path):
    broker = FsQueueBroker(str(tmp_path))
    assert broker.map_tasks(square, PAYLOADS) == WANT
