"""End-to-end distributed campaigns: workers + coordinator, including
the acceptance scenario -- a campaign split across >= 2 workers merges
byte-identical to a single-host run, and a worker killed mid-shard plus
a coordinator restart completes with no lost or duplicated cells."""

import os
import threading
import time

import pytest

from repro.core import CampaignConfig, HeuristicTriple, run_campaign
from repro.core.campaign import ResultCache
from repro.dist import (
    FsQueue,
    FsQueueBroker,
    LocalBroker,
    merge_caches,
    resolve_backend,
    run_worker,
)

#: Heterogeneous little triple set: plain, corrected, SJBF, clairvoyant.
TRIPLES = [
    HeuristicTriple("requested", None, "easy"),
    HeuristicTriple("requested", None, "easy-sjbf"),
    HeuristicTriple("ave2", "incremental", "easy-sjbf"),
    HeuristicTriple("clairvoyant", None, "easy"),
]

CONFIG = CampaignConfig(logs=("KTH-SP2",), n_jobs=80, replicas=2)


def start_worker(queue_dir, worker_id, **kwargs):
    kwargs.setdefault("poll_interval", 0.05)
    kwargs.setdefault("max_idle", 60.0)
    results = {}

    def target():
        results["stats"] = run_worker(queue_dir, worker_id=worker_id, **kwargs)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, results


@pytest.fixture(scope="module")
def single_host(tmp_path_factory):
    """Reference run + canonical cache bytes."""
    tmp = tmp_path_factory.mktemp("single")
    cache = str(tmp / "cache.jsonl")
    result = run_campaign(CONFIG, cache_path=cache, workers=2, triples=TRIPLES)
    canonical = str(tmp / "canonical.jsonl")
    merge_caches([cache], out_path=canonical)
    with open(canonical, "rb") as fh:
        return result, fh.read()


class TestResolveBackend:
    def test_local_default(self):
        assert isinstance(resolve_backend("local", workers=2), LocalBroker)

    def test_broker_instance_passthrough(self, tmp_path):
        broker = FsQueueBroker(str(tmp_path / "q"))
        assert resolve_backend(broker) is broker

    def test_fsqueue_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            resolve_backend("fsqueue")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown campaign backend"):
            resolve_backend("carrier-pigeon")


class TestTwoWorkerCampaign:
    def test_matches_single_host_byte_identical(self, tmp_path, single_host):
        reference, reference_bytes = single_host
        qdir = str(tmp_path / "q")
        cache = str(tmp_path / "cache.jsonl")
        threads = [start_worker(qdir, f"w{i}")[0] for i in range(2)]
        broker = FsQueueBroker(
            qdir, cells_per_shard=1, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        result = run_campaign(CONFIG, cache_path=cache, triples=TRIPLES, backend=broker)
        for thread in threads:
            thread.join(timeout=60)
        assert result.scores == reference.scores

        canonical = str(tmp_path / "canonical.jsonl")
        merge_caches([cache], out_path=canonical)
        with open(canonical, "rb") as fh:
            assert fh.read() == reference_bytes

        queue = FsQueue(qdir)
        assert queue.todo_ids() == set()
        assert queue.claimed_ids() == set()
        assert queue.has_signal("DONE")

    def test_both_workers_participated(self, tmp_path, single_host):
        qdir = str(tmp_path / "q")
        threads_results = [start_worker(qdir, f"w{i}") for i in range(2)]
        broker = FsQueueBroker(
            qdir, cells_per_shard=1, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        run_campaign(CONFIG, triples=TRIPLES, backend=broker)
        for thread, _ in threads_results:
            thread.join(timeout=60)
        shards = [results["stats"].shards for _, results in threads_results]
        # 8 single-cell shards across 2 workers; both must claim some
        assert sum(shards) == 8
        assert all(count > 0 for count in shards)


class TestGroupedShardCampaign:
    """Trace-pure (grouped) shards through the fsqueue path must merge
    byte-identical to the single-host canonical cache -- batching is an
    execution detail, never a result detail."""

    def test_grouped_shards_merge_identical_to_single_host(
        self, tmp_path, single_host
    ):
        reference, reference_bytes = single_host
        # the campaign's 8 cells form 2 trace groups (2 replica seeds x
        # 4 triples); cells_per_shard=4 lets the planner emit exactly
        # one trace-pure shard per group
        cells = CONFIG.cell_specs(TRIPLES)
        from repro.dist import plan_shards

        planned = plan_shards(cells, cells_per_shard=4)
        assert len(planned) == 2
        assert all(len(shard.trace_keys) == 1 for shard in planned)

        qdir = str(tmp_path / "q")
        cache = str(tmp_path / "cache.jsonl")
        threads = [start_worker(qdir, f"w{i}")[0] for i in range(2)]
        broker = FsQueueBroker(
            qdir, cells_per_shard=4, lease_ttl=60.0, poll_interval=0.05,
            timeout=300.0,
        )
        result = run_campaign(
            CONFIG, cache_path=cache, triples=TRIPLES, backend=broker
        )
        for thread in threads:
            thread.join(timeout=60)
        assert result.scores == reference.scores

        canonical = str(tmp_path / "canonical.jsonl")
        merge_caches([cache], out_path=canonical)
        with open(canonical, "rb") as fh:
            assert fh.read() == reference_bytes


class TestCrashRecovery:
    def test_killed_worker_and_coordinator_restart(self, tmp_path, single_host):
        """A worker dies mid-shard; its lease expires; the campaign is
        finished by another worker under a *restarted* coordinator with
        no lost or duplicated cells."""
        reference, reference_bytes = single_host
        qdir = str(tmp_path / "q")
        cache = str(tmp_path / "cache.jsonl")
        queue = FsQueue.create(qdir, lease_ttl=2.0)

        # Plan and enqueue exactly like a coordinator, then "crash" it:
        # claim one shard as a zombie worker that simulates one cell and
        # disappears without completing or renewing.
        cells = CONFIG.cell_specs(TRIPLES)
        from repro.dist import plan_shards

        for shard in plan_shards(cells, cells_per_shard=4, prefix="g1"):
            queue.enqueue(shard.manifest())
        zombie = queue.claim("zombie")
        assert zombie is not None
        from repro.core import run_cell
        from repro.core.campaign import cell_token
        from repro.spec import CellSpec

        zombie_cell = CellSpec.from_obj(zombie.spec["cells"][0])
        value = run_cell(zombie_cell)
        zombie_cache = ResultCache(queue.result_path(zombie.shard_id, zombie.attempt))
        zombie_cache.put(cell_token(zombie_cell), value)
        zombie_cache.close()
        os.utime(zombie.path, (0, 0))  # heartbeat long dead

        # Restarted coordinator + one healthy worker finish the job.
        thread, results = start_worker(qdir, "healthy")
        broker = FsQueueBroker(
            qdir, cells_per_shard=4, lease_ttl=2.0, poll_interval=0.05, timeout=300.0
        )
        result = run_campaign(CONFIG, cache_path=cache, triples=TRIPLES, backend=broker)
        thread.join(timeout=60)

        assert result.scores == reference.scores
        stats = results["stats"]
        assert stats.shards > 0
        # the zombie's proven cell was harvested, not recomputed
        assert stats.cached_cells >= 1

        canonical = str(tmp_path / "canonical.jsonl")
        _, report = merge_caches([cache], out_path=canonical)
        assert report.duplicates == 0  # canonical cache has no dup cells
        with open(canonical, "rb") as fh:
            assert fh.read() == reference_bytes

    def test_attempts_exhausted_raises(self, tmp_path):
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=0.1)
        config = CampaignConfig(logs=("KTH-SP2",), n_jobs=40, replicas=1)
        # a zombie claims the only shard and never works; with
        # max_attempts=1 the expiry fails the shard immediately
        broker = FsQueueBroker(
            qdir, cells_per_shard=64, lease_ttl=0.1, max_attempts=1,
            poll_interval=0.05, timeout=60.0,
        )

        def zombie_claimer():
            while True:
                lease = queue.claim("zombie")
                if lease is not None:
                    os.utime(lease.path, (0, 0))
                    return

        thread = threading.Thread(target=zombie_claimer, daemon=True)
        thread.start()
        with pytest.raises(RuntimeError, match="exhausted"):
            run_campaign(config, triples=TRIPLES[:1], backend=broker)
        thread.join(timeout=10)


class TestSignalHygiene:
    def test_worker_ignores_stale_done_marker(self, tmp_path):
        """A DONE left by a finished campaign predates a newly started
        worker: the worker must keep waiting for the next campaign
        (bounded by max_idle), not exit with reason 'done'."""
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        generation = int(queue.read_meta().get("generation", 0))
        queue.signal("DONE", {"generation": generation})
        os.utime(os.path.join(qdir, "DONE"), (1.0, 1.0))  # ancient fs stamp
        stats = run_worker(qdir, worker_id="w0", poll_interval=0.05, max_idle=0.3)
        assert stats.reason == "idle"

    def test_worker_honours_fresh_done_marker(self, tmp_path):
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        generation = int(queue.read_meta().get("generation", 0))
        queue.signal("DONE", {"generation": generation})
        stats = run_worker(qdir, worker_id="w0", poll_interval=0.05, max_idle=30.0)
        assert stats.reason == "done"

    def test_worker_ignores_generation_less_done_marker(self, tmp_path):
        """Debris DONE written moments before the worker starts sits
        inside the mtime-freshness grace, but carries no generation: it
        cannot prove it concludes the campaign the coordinator is about
        to enqueue, so the worker keeps waiting."""
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        queue.signal("DONE")  # fresh mtime, no generation payload
        stats = run_worker(qdir, worker_id="w0", poll_interval=0.05, max_idle=0.3)
        assert stats.reason == "idle"

    def test_worker_ignores_stop_predating_start(self, tmp_path):
        """A STOP left by a failed campaign predates the worker: it is
        the next coordinator's to clear, not a desertion order."""
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        queue.signal("STOP")
        os.utime(os.path.join(qdir, "STOP"), (1.0, 1.0))  # ancient fs stamp
        stats = run_worker(qdir, worker_id="w0", poll_interval=0.05, max_idle=0.3)
        assert stats.reason == "idle"

    def test_worker_honours_stop_posted_after_start(self, tmp_path):
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        thread, results = start_worker(qdir, "w0")
        time.sleep(0.2)  # let the worker stamp its start and begin polling
        queue.signal("STOP")
        thread.join(timeout=30)
        assert results["stats"].reason == "stop"

    def test_stale_stop_signal_cleared_on_new_campaign(self, tmp_path, single_host):
        """A failed campaign leaves STOP behind; the next campaign on the
        same queue directory must clear it or workers exit instantly and
        the coordinator hangs."""
        reference, _ = single_host
        qdir = str(tmp_path / "q")
        queue = FsQueue.create(qdir, lease_ttl=60.0)
        queue.signal("STOP")
        queue.signal("DONE")
        thread, results = start_worker(qdir, "w0")
        broker = FsQueueBroker(
            qdir, cells_per_shard=2, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        result = run_campaign(CONFIG, triples=TRIPLES, backend=broker)
        thread.join(timeout=60)
        assert result.scores == reference.scores
        assert results["stats"].shards > 0


class TestWarmRestart:
    def test_finished_campaign_needs_no_workers(self, tmp_path, single_host):
        """With every cell already in the canonical cache the fsqueue
        backend must not enqueue anything or wait for workers."""
        reference, _ = single_host
        qdir = str(tmp_path / "q")
        cache = str(tmp_path / "cache.jsonl")
        threads = [start_worker(qdir, "w0")[0]]
        broker = FsQueueBroker(
            qdir, cells_per_shard=2, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        first = run_campaign(CONFIG, cache_path=cache, triples=TRIPLES, backend=broker)
        for thread in threads:
            thread.join(timeout=60)
        # no worker running now: must still return instantly from cache
        again = run_campaign(CONFIG, cache_path=cache, triples=TRIPLES, backend=broker)
        assert again.scores == first.scores == reference.scores

    def test_results_on_disk_survive_coordinator_loss(self, tmp_path, single_host):
        """Worker results that never reached the coordinator's canonical
        cache are harvested by the next coordinator before re-planning."""
        reference, _ = single_host
        qdir = str(tmp_path / "q")
        threads = [start_worker(qdir, "w0")[0]]
        broker = FsQueueBroker(
            qdir, cells_per_shard=2, lease_ttl=60.0, poll_interval=0.05, timeout=300.0
        )
        # first coordinator writes NO canonical cache (simulates dying
        # before its cache hit disk -- results live only in the queue)
        first = run_campaign(CONFIG, cache_path=None, triples=TRIPLES, backend=broker)
        for thread in threads:
            thread.join(timeout=60)
        # second coordinator, fresh cache, no workers: everything must
        # come from the harvested shard results
        second = run_campaign(
            CONFIG, cache_path=str(tmp_path / "c2.jsonl"), triples=TRIPLES, backend=broker
        )
        assert second.scores == first.scores == reference.scores
