"""The filesystem work queue: claims, leases, retries, signals."""

import json
import os

import pytest

from repro.dist import FsQueue, LeaseLost, QueueVersionError
from repro.dist.fsqueue import sanitize_id


def spec_for(shard_id, cells=2):
    return {
        "shard_id": shard_id,
        "cells": [["KTH-SP2", "requested|none|easy", 100 + i] for i in range(cells)],
        "n_jobs": 50,
        "min_prediction": 60.0,
        "tau": 10.0,
    }


@pytest.fixture
def queue(tmp_path):
    return FsQueue.create(str(tmp_path / "q"), lease_ttl=60.0)


class TestSanitize:
    def test_passthrough(self):
        assert sanitize_id("host-12_ok") == "host-12_ok"

    def test_collapses_unsafe(self):
        assert sanitize_id("my host.name/7") == "my-host-name-7"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sanitize_id("...")


class TestCreateAndVersions:
    def test_create_layout(self, queue):
        for sub in FsQueue.SUBDIRS:
            assert os.path.isdir(os.path.join(queue.root, sub))
        meta = queue.check_versions()
        assert meta["lease_ttl"] == 60.0

    def test_reopen_without_ttl_preserves_meta(self, queue):
        again = FsQueue.create(queue.root)
        assert again.read_meta()["lease_ttl"] == 60.0

    def test_reopen_with_explicit_ttl_is_authoritative(self, queue):
        """A coordinator reopening with a different --lease-ttl must
        rewrite the metadata, or workers heartbeat against one clock
        while the coordinator reaps with another."""
        again = FsQueue.create(queue.root, lease_ttl=7.0)
        assert again.read_meta()["lease_ttl"] == 7.0
        assert again.read_meta()["generation"] == queue.read_meta()["generation"]

    def test_version_skew_refused(self, queue):
        meta = queue.read_meta()
        meta["engine_version"] = -1
        with open(queue.meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        with pytest.raises(QueueVersionError):
            queue.check_versions()


class TestClaim:
    def test_claim_moves_to_claimed(self, queue):
        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        assert lease is not None
        assert lease.shard_id == "s-a"
        assert lease.attempt == 0
        assert queue.todo_ids() == set()
        assert queue.claimed_ids() == {"s-a"}
        assert lease.spec["n_jobs"] == 50

    def test_empty_queue_returns_none(self, queue):
        assert queue.claim("w1") is None

    def test_two_claimants_get_distinct_shards(self, queue):
        queue.enqueue(spec_for("s-a"))
        queue.enqueue(spec_for("s-b"))
        a = queue.claim("w1")
        b = queue.claim("w2")
        assert {a.shard_id, b.shard_id} == {"s-a", "s-b"}
        assert queue.claim("w3") is None

    def test_retries_ordered_with_fresh_work(self, queue):
        queue.enqueue(spec_for("s-retry"), attempt=1)
        queue.enqueue(spec_for("s-fresh"), attempt=0)
        first = queue.claim("w1")
        assert first.shard_id == "s-fresh"  # lowest attempt first

    def test_claim_survives_coordinator_snatching_race(self, queue, monkeypatch):
        """A shard that aged past lease_ttl while *queued* can be
        requeued by the coordinator between the claim rename and the
        heartbeat utime; the claimer must move on, not crash."""
        import repro.dist.fsqueue as fsqueue_mod

        queue.enqueue(spec_for("s-a"))
        real_utime = os.utime

        def snatching_utime(path, *args, **kwargs):
            if "claimed" in str(path):
                os.unlink(path)  # the coordinator re-queued it first
                raise FileNotFoundError(path)
            return real_utime(path, *args, **kwargs)

        monkeypatch.setattr(fsqueue_mod.os, "utime", snatching_utime)
        assert queue.claim("w1") is None  # lost the race; no crash


class TestLeaseLifecycle:
    def test_complete_moves_to_done(self, queue):
        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        queue.complete(lease)
        assert queue.done_ids() == {"s-a"}
        assert queue.claimed_ids() == set()

    def test_renew_touches_heartbeat(self, queue):
        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        os.utime(lease.path, (0, 0))  # fake an ancient heartbeat
        queue.renew(lease)
        assert os.stat(lease.path).st_mtime > 0

    def test_renew_after_requeue_raises_lease_lost(self, queue):
        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        os.utime(lease.path, (0, 0))
        moved = queue.requeue_expired(lease_ttl=60.0)
        assert moved == [("s-a", 1, "requeued")]
        with pytest.raises(LeaseLost):
            queue.renew(lease)
        with pytest.raises(LeaseLost):
            queue.complete(lease)

    def test_requeue_leaves_fresh_leases_alone(self, queue):
        queue.enqueue(spec_for("s-a"))
        queue.claim("w1")
        assert queue.requeue_expired(lease_ttl=60.0) == []

    def test_coarse_mtime_heartbeat_not_stolen(self, queue):
        """Regression: on a filesystem that rounds mtimes down to whole
        (or two-second) granularity, a freshly heartbeated lease can
        look just-past-TTL under a raw ``age <= lease_ttl`` check and be
        stolen from a live worker.  The granularity slack must keep it."""
        import time as _time

        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        queue.renew(lease)  # heartbeat "now"...
        now = _time.time()
        # ...but the filesystem stored it rounded down two whole seconds
        coarse = float(int(now) - 2)
        os.utime(lease.path, (coarse, coarse))
        assert queue.requeue_expired(lease_ttl=1.0, now=now) == []
        queue.renew(lease)  # lease still live; worker keeps going

    def test_zero_granularity_restores_raw_comparison(self, queue):
        """The same coarse-rounded heartbeat IS treated as stale when the
        caller explicitly disables the slack -- pinning that the default
        tolerance is what protects it."""
        import time as _time

        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        now = _time.time()
        coarse = float(int(now) - 2)
        os.utime(lease.path, (coarse, coarse))
        moved = queue.requeue_expired(lease_ttl=1.0, now=now, granularity=0.0)
        assert moved == [("s-a", 1, "requeued")]

    def test_genuinely_stale_lease_still_requeued_past_slack(self, queue):
        import time as _time

        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        now = _time.time()
        os.utime(lease.path, (now - 10.0, now - 10.0))
        moved = queue.requeue_expired(lease_ttl=1.0, now=now)
        assert moved == [("s-a", 1, "requeued")]

    def test_attempts_exhausted_goes_to_failed(self, queue):
        queue.enqueue(spec_for("s-a"), attempt=2)
        lease = queue.claim("w1")
        os.utime(lease.path, (0, 0))
        moved = queue.requeue_expired(lease_ttl=60.0, max_attempts=3)
        assert moved == [("s-a", 3, "failed")]
        assert queue.failed_ids() == {"s-a"}
        assert queue.todo_ids() == set()

    def test_requeued_shard_claimable_with_bumped_attempt(self, queue):
        queue.enqueue(spec_for("s-a"))
        lease = queue.claim("w1")
        os.utime(lease.path, (0, 0))
        queue.requeue_expired(lease_ttl=60.0)
        retry = queue.claim("w2")
        assert retry.shard_id == "s-a"
        assert retry.attempt == 1
        assert retry.spec == lease.spec


class TestSignalsAndMaintenance:
    def test_signals_roundtrip(self, queue):
        assert not queue.has_signal("DONE")
        queue.signal("DONE")
        assert queue.has_signal("DONE")
        queue.clear_signal("DONE")
        assert not queue.has_signal("DONE")

    def test_clear_todo(self, queue):
        queue.enqueue(spec_for("s-a"))
        queue.enqueue(spec_for("s-b"))
        assert queue.clear_todo() == 2
        assert queue.todo_ids() == set()

    def test_result_paths_filter_by_shard(self, queue):
        for name in ("s-a.t0.jsonl", "s-a.t1.jsonl", "s-b.t0.jsonl"):
            with open(os.path.join(queue.root, "results", name), "w") as fh:
                fh.write("")
        assert len(queue.result_paths()) == 3
        assert len(queue.result_paths("s-a")) == 2
        assert queue.result_path("s-a", 1).endswith("s-a.t1.jsonl")
