"""Self-hosting: ``repro check`` must be clean on this repository, and
the CLI must speak the documented exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import run_check
from repro.cli import main

ROOT = Path(__file__).resolve().parents[2]
SRC = str(ROOT / "src")


class TestSelfHost:
    def test_src_is_clean_under_the_full_battery(self):
        findings, files = run_check([SRC], root=str(ROOT))
        assert findings == [], "\n".join(f.render() for f in findings)
        assert len(files) > 50  # the whole package was actually scanned

    def test_cli_exits_zero_and_reports_ok(self, capsys):
        assert main(["check", SRC]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok:")

    def test_cli_json_artifact(self, capsys):
        assert main(["check", SRC, "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is True
        assert obj["version"] == 1
        assert obj["files_checked"] > 50

    def test_cli_rule_selection(self, capsys):
        assert main(["check", SRC, "--rules", "DET001,FRZ001", "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["rules"] == ["DET001", "FRZ001"]

    def test_cli_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DUR001", "FRZ001", "SPEC001"):
            assert rule_id in out

    def test_cli_unknown_rule_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["check", SRC, "--rules", "NOPE999"])

    def test_cli_nonzero_on_findings(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
        bad = tmp_path / "src" / "repro" / "sim" / "clocky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nNOW = time.time()\n", encoding="utf-8")
        assert main(["check", str(tmp_path / "src"), "--rules", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "clocky.py" in out
