"""Reporters: text rendering and the JSON artifact schema."""

from __future__ import annotations

import json

from repro.analysis import all_rules, format_json, format_text, to_json_obj
from repro.analysis.core import Finding
from repro.analysis.report import REPORT_VERSION

FINDINGS = [
    Finding("src/repro/sim/a.py", 3, 4, "DET001", "time.time() is a wall clock"),
    Finding("src/repro/sim/a.py", 9, 0, "DET001", "datetime.now() is a wall clock"),
    Finding("src/repro/dist/b.py", 1, 2, "DET002", "unsorted scan"),
]


class TestTextReport:
    def test_one_line_per_finding_plus_summary(self):
        text = format_text(FINDINGS, 12, all_rules())
        lines = text.splitlines()
        assert lines[0] == "src/repro/sim/a.py:3:4: DET001 time.time() is a wall clock"
        assert "3 finding(s) in 12 file(s)" in lines[-1]
        assert "DET001:2" in lines[-1] and "DET002:1" in lines[-1]
        assert "repro: noqa" in lines[-1]

    def test_clean_summary(self):
        text = format_text([], 12, all_rules())
        assert text.startswith("ok: 12 file(s) clean")
        assert "DET001" in text


class TestJsonReport:
    def test_schema(self):
        obj = to_json_obj(FINDINGS, 12, all_rules())
        assert obj["version"] == REPORT_VERSION == 1
        assert obj["tool"] == "repro check"
        assert obj["files_checked"] == 12
        assert obj["ok"] is False
        assert obj["counts"] == {"DET001": 2, "DET002": 1}
        assert set(obj["rules"]) >= {"DET001", "FRZ001", "SPEC001"}
        first = obj["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}
        assert first["line"] == 3 and first["col"] == 4

    def test_clean_schema(self):
        obj = to_json_obj([], 5, all_rules())
        assert obj["ok"] is True
        assert obj["findings"] == [] and obj["counts"] == {}

    def test_format_json_round_trips(self):
        obj = json.loads(format_json(FINDINGS, 12, all_rules()))
        assert obj == to_json_obj(FINDINGS, 12, all_rules())
