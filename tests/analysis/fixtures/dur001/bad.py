# dest: src/repro/dist/fixture.py
"""Known-bad DUR001 corpus: in-place write to a shared final path."""
import json


def save(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
