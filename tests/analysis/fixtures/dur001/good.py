# dest: src/repro/dist/fixture.py
"""Known-good DUR001 corpus: write-tmp-then-replace, append-only streams."""
import json
import os


def save(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def append_row(path: str, row: str) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(row + "\n")


def read(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
