# dest: src/repro/workload/fixture.py
"""Known-good ENC001 corpus: encoding pinned; binary exempt."""


def read(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def read_bytes(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()
