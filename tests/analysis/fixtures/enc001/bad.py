# dest: src/repro/workload/fixture.py
"""Known-bad ENC001 corpus: platform-default text encoding."""


def read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def write(path: str, text: str) -> None:
    with open(path, "w") as fh:  # repro: noqa[DUR001]
        fh.write(text)
