# dest: src/repro/dist/fixture.py
"""Known-good OBS002 corpus: logging instead of stdout."""
import logging

log = logging.getLogger("repro.dist.fixture")


def harvest(shard: str) -> None:
    log.info("harvested %s", shard)
