# dest: src/repro/dist/fixture.py
"""Known-bad OBS002 corpus: stdout from a library layer."""


def harvest(shard: str) -> None:
    print(f"harvested {shard}")
