# dest: src/repro/dist/fixture.py
"""Known-good DET002 corpus: scans sorted or reduced to order-free sets."""
import glob
import os


def scan(directory: str) -> list[str]:
    names = sorted(os.listdir(directory))
    names.extend(sorted(glob.glob(directory + "/*.json")))
    names.extend(sorted(name for name in os.listdir(directory) if name))
    return names


def ids(directory: str) -> set[str]:
    return {name for name in os.listdir(directory)}


def count(directory: str) -> int:
    return len(os.listdir(directory))
