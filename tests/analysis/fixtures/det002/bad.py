# dest: src/repro/dist/fixture.py
"""Known-bad DET002 corpus: filesystem-ordered scans drive behaviour."""
import glob
import os


def scan(directory: str) -> list[str]:
    names = []
    for name in os.listdir(directory):
        names.append(name)
    names.extend(glob.glob(directory + "/*.json"))
    return names
