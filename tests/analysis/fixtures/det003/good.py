# dest: src/repro/sched/fixture.py
"""Known-good DET003 corpus: knobs arrive as explicit parameters."""


def depth(limit: float, configured_depth: int) -> float:
    return limit * configured_depth
