# dest: src/repro/sched/fixture.py
"""Known-bad DET003 corpus: engine behaviour keyed off the environment."""
import os

LIMIT = float(os.environ.get("REPRO_LIMIT", "1.0"))


def depth() -> str | None:
    return os.getenv("REPRO_DEPTH")
