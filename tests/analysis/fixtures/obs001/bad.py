# dest: src/repro/sim/fixture.py
"""Known-bad OBS001 corpus: telemetry mutators outside the enabled guard."""


def record(tele, n: int) -> None:
    tele.inc("engine.events", n)


class Engine:
    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry

    def step(self, depth: int) -> None:
        self.telemetry.observe("engine.queue_depth", depth)
