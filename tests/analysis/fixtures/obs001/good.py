# dest: src/repro/sim/fixture.py
"""Known-good OBS001 corpus: the NOOP-guarded attribute pattern."""


def record(tele, n: int) -> None:
    if tele.enabled:
        tele.inc("engine.events", n)


def early_exit(telemetry, depth: int) -> None:
    if not telemetry.enabled:
        return
    telemetry.observe("engine.queue_depth", depth)


def spans(tele) -> None:
    # span() is inert when disabled; no guard required
    with tele.span("engine.sched_pass"):
        pass


class Engine:
    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry

    def step(self, depth: int) -> None:
        tele = self.telemetry
        if tele.enabled:
            tele.observe("engine.queue_depth", depth)
            tele.inc("engine.sched.passes")
