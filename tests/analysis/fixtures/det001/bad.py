# dest: src/repro/sim/fixture.py
"""Known-bad DET001 corpus: ambient wall-clock and entropy sources."""
import random
import time
from datetime import datetime


def jitter() -> float:
    random.seed(0)
    return time.time() + random.random() + datetime.now().timestamp()
