# dest: src/repro/sim/fixture.py
"""Known-good DET001 corpus: seeded generators and monotonic timing."""
import random
from time import perf_counter

import numpy as np


def simulate(seed: int) -> float:
    rng = np.random.default_rng(seed)
    toss = random.Random(seed).random()
    t0 = perf_counter()
    return rng.random() + toss + (perf_counter() - t0)
