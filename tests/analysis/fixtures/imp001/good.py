# dest: src/repro/obs/fixture.py
"""Known-good IMP001 corpus: stdlib and intra-obs imports only."""
import json
import math

from .telemetry import NOOP


def render() -> str:
    return json.dumps({"pi": math.pi, "enabled": NOOP.enabled})
