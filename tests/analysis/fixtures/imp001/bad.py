# dest: src/repro/obs/fixture.py
"""Known-bad IMP001 corpus: obs reaching into other layers."""
import repro.spec
from ..sim.engine import ENGINE_VERSION


def version() -> int:
    return ENGINE_VERSION if repro.spec else 0
