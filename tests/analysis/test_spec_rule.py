"""SPEC001: every semantic engine knob must enter the CellSpec digest."""

from __future__ import annotations

import pytest

_CELLSPEC = (
    "class CellSpec:\n"
    "    def to_obj(self):\n"
    "        return {\n"
    '            "workload": None,\n'
    '            "engine": {"min_prediction": 1.0, "tau": 2.0},\n'
    "        }\n"
)

_ENGINE_OK = (
    "class Simulator:\n"
    "    def __init__(self, trace, scheduler, predictor, corrector=None,\n"
    "                 min_prediction=60.0, telemetry=None):\n"
    "        pass\n"
    "\n"
    "\n"
    "def simulate(trace, scheduler, predictor, corrector=None,\n"
    "             min_prediction=60.0, telemetry=None):\n"
    "    pass\n"
)

_SESSION_OK = (
    "class SimSession:\n"
    "    def __init__(self, processors, scheduler, predictor, corrector=None,\n"
    "                 *, min_prediction=60.0, start_time=0.0, trace_name='',\n"
    "                 telemetry=None):\n"
    "        pass\n"
)


@pytest.fixture
def spec_repo(fixture_repo):
    fixture_repo.add("src/repro/spec/cellspec.py", _CELLSPEC)
    fixture_repo.add("src/repro/sim/engine.py", _ENGINE_OK)
    fixture_repo.add("src/repro/sim/session.py", _SESSION_OK)
    return fixture_repo


def _check(repo):
    findings, _ = repo.check(select=("SPEC001",))
    return findings


class TestSpecIdentity:
    def test_clean_when_knobs_are_digested(self, spec_repo):
        assert _check(spec_repo) == []

    def test_new_engine_knob_escaping_digest_flagged(self, spec_repo):
        spec_repo.add(
            "src/repro/sim/engine.py",
            _ENGINE_OK.replace(
                "min_prediction=60.0, telemetry=None):\n        pass",
                "min_prediction=60.0, backfill_depth=4, telemetry=None):\n"
                "        pass",
            ),
        )
        findings = _check(spec_repo)
        assert len(findings) == 1
        assert "backfill_depth" in findings[0].message
        assert findings[0].path == "src/repro/sim/engine.py"

    def test_new_session_knob_flagged(self, spec_repo):
        spec_repo.add(
            "src/repro/sim/session.py",
            _SESSION_OK.replace("telemetry=None", "telemetry=None, drain_policy='x'"),
        )
        findings = _check(spec_repo)
        assert len(findings) == 1
        assert "drain_policy" in findings[0].message

    def test_structural_params_are_exempt(self, spec_repo):
        # trace/processors/telemetry/start_time never enter the digest
        # by design and must not fire
        assert _check(spec_repo) == []

    def test_missing_engine_block_is_loud(self, spec_repo):
        spec_repo.add("src/repro/spec/cellspec.py", "class CellSpec:\n    pass\n")
        findings = _check(spec_repo)
        assert len(findings) == 1
        assert "engine-knob set" in findings[0].message

    def test_real_repo_is_clean(self):
        from pathlib import Path

        from repro.analysis import CheckConfig, run_check

        root = Path(__file__).resolve().parents[2]
        findings, _ = run_check(
            [str(root / "src")],
            root=str(root),
            config=CheckConfig(select=("SPEC001",)),
        )
        assert findings == []
