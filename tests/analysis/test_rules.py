"""Per-rule contract over the fixture corpus: each file rule must catch
its known-bad snippet and stay silent on its known-good one."""

from __future__ import annotations

import pytest

from .conftest import FIXTURES

FILE_RULES = (
    "DET001",
    "DET002",
    "DET003",
    "DUR001",
    "ENC001",
    "OBS001",
    "OBS002",
    "IMP001",
)


def _corpus(rule_id: str, kind: str):
    return FIXTURES / rule_id.lower() / f"{kind}.py"


@pytest.mark.parametrize("rule_id", FILE_RULES)
class TestCorpus:
    def test_bad_fixture_caught(self, rule_id, fixture_repo):
        dest = fixture_repo.add_corpus(_corpus(rule_id, "bad"))
        findings, files = fixture_repo.check(select=(rule_id,))
        assert files == [dest]
        assert findings, f"{rule_id} missed its known-bad fixture"
        assert {f.rule for f in findings} == {rule_id}
        assert all(f.path == dest for f in findings)
        assert all(f.line > 0 for f in findings)

    def test_good_fixture_clean(self, rule_id, fixture_repo):
        fixture_repo.add_corpus(_corpus(rule_id, "good"))
        findings, _files = fixture_repo.check(select=(rule_id,))
        assert findings == [], f"{rule_id} false-positived on its good fixture"


class TestFindingDetails:
    def test_det001_names_every_source(self, fixture_repo):
        fixture_repo.add_corpus(_corpus("DET001", "bad"))
        findings, _ = fixture_repo.check(select=("DET001",))
        blob = " ".join(f.message for f in findings)
        for source in ("time.time", "random.random", "datetime.now"):
            assert source in blob
        assert len(findings) >= 3

    def test_det002_flags_both_scan_kinds(self, fixture_repo):
        fixture_repo.add_corpus(_corpus("DET002", "bad"))
        findings, _ = fixture_repo.check(select=("DET002",))
        assert len(findings) == 2  # os.listdir and glob.glob

    def test_enc001_unrelated_noqa_does_not_suppress(self, fixture_repo):
        # the bad ENC001 corpus carries a `# repro: noqa[DUR001]` on one
        # offending line; ENC001 must still fire there
        fixture_repo.add_corpus(_corpus("ENC001", "bad"))
        findings, _ = fixture_repo.check(select=("ENC001",))
        assert len(findings) == 2

    def test_rules_out_of_scope_are_silent(self, fixture_repo):
        # a DET001-bad file placed outside the engine paths is none of
        # DET001's business
        corpus = (FIXTURES / "det001" / "bad.py").read_text(encoding="utf-8")
        fixture_repo.add("src/repro/core/fixture.py", corpus)
        findings, _ = fixture_repo.check(select=("DET001",))
        assert findings == []


class TestSuppressions:
    BAD_LINE = "import time\n\n\ndef f():\n    return time.time()%s\n"

    def _write(self, repo, comment: str):
        repo.add("src/repro/sim/fixture.py", self.BAD_LINE % comment)

    def test_unsuppressed_fires(self, fixture_repo):
        self._write(fixture_repo, "")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert len(findings) == 1

    def test_line_noqa_with_rule_id(self, fixture_repo):
        self._write(fixture_repo, "  # repro: noqa[DET001]")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert findings == []

    def test_line_noqa_bare_suppresses_all(self, fixture_repo):
        self._write(fixture_repo, "  # repro: noqa")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert findings == []

    def test_line_noqa_other_rule_does_not_suppress(self, fixture_repo):
        self._write(fixture_repo, "  # repro: noqa[DET002]")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert len(findings) == 1

    def test_file_level_noqa(self, fixture_repo):
        text = "# repro: noqa-file[DET001]\n" + self.BAD_LINE % ""
        fixture_repo.add("src/repro/sim/fixture.py", text)
        findings, _ = fixture_repo.check(select=("DET001",))
        assert findings == []

    def test_file_level_noqa_scoped_to_its_rule(self, fixture_repo):
        text = "# repro: noqa-file[DET002]\n" + self.BAD_LINE % ""
        fixture_repo.add("src/repro/sim/fixture.py", text)
        findings, _ = fixture_repo.check(select=("DET001",))
        assert len(findings) == 1

    def test_multiple_ids_in_one_noqa(self, fixture_repo):
        self._write(fixture_repo, "  # repro: noqa[DET002, DET001]")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert findings == []


class TestRegistry:
    def test_battery_is_stable(self):
        from repro.analysis import all_rules

        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert set(FILE_RULES) <= set(ids)
        assert {"FRZ001", "SPEC001"} <= set(ids)
        assert len(ids) == len(set(ids))

    def test_unknown_rule_id_rejected(self):
        from repro.analysis import resolve_rules

        with pytest.raises(KeyError):
            resolve_rules(("NOPE999",))

    def test_every_rule_has_scope_and_title(self):
        from repro.analysis import all_rules

        for rule in all_rules():
            assert rule.paths, rule.id
            assert rule.title, rule.id

    def test_parse_error_is_a_finding_not_a_crash(self, fixture_repo):
        fixture_repo.add("src/repro/sim/broken.py", "def f(:\n")
        findings, _ = fixture_repo.check(select=("DET001",))
        assert len(findings) == 1
        assert findings[0].rule == "PARSE"
