"""FRZ001: the frozen-oracle / ENGINE_VERSION digest pact."""

from __future__ import annotations

import pytest

from repro.analysis.frozen import compute_frozen, load_frozen, write_frozen

pytestmark = []


@pytest.fixture
def semantics_repo(fixture_repo):
    fixture_repo.add("src/repro/sim/engine.py", "ENGINE_VERSION = 1\n")
    fixture_repo.add("src/repro/sched/legacy.py", "LEGACY = True\n")
    fixture_repo.add("src/repro/sched/easy.py", "DEPTH = 1\n")
    write_frozen(str(fixture_repo.root))
    return fixture_repo


def _check(repo):
    findings, _ = repo.check(select=("FRZ001",))
    return findings


class TestFrozenDigests:
    def test_clean_after_freeze(self, semantics_repo):
        assert _check(semantics_repo) == []

    def test_oracle_drift_always_flagged(self, semantics_repo):
        semantics_repo.add("src/repro/sched/legacy.py", "LEGACY = False\n")
        findings = _check(semantics_repo)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sched/legacy.py"
        assert "oracle" in findings[0].message

    def test_semantics_drift_without_bump_flagged(self, semantics_repo):
        semantics_repo.add("src/repro/sched/easy.py", "DEPTH = 2\n")
        findings = _check(semantics_repo)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sched/easy.py"
        assert "ENGINE_VERSION bump" in findings[0].message

    def test_version_bump_asks_for_regeneration(self, semantics_repo):
        semantics_repo.add("src/repro/sim/engine.py", "ENGINE_VERSION = 2\n")
        findings = _check(semantics_repo)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sim/engine.py"
        assert "--update-frozen" in findings[0].message

    def test_bump_plus_regenerate_is_clean(self, semantics_repo):
        semantics_repo.add(
            "src/repro/sim/engine.py", "ENGINE_VERSION = 2\nNEW_SEMANTICS = True\n"
        )
        write_frozen(str(semantics_repo.root))
        assert _check(semantics_repo) == []
        assert load_frozen(str(semantics_repo.root))["engine_version"] == 2

    def test_new_semantics_module_must_be_pinned(self, semantics_repo):
        semantics_repo.add("src/repro/sched/sjbf.py", "ORDER = 'sjbf'\n")
        findings = _check(semantics_repo)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sched/sjbf.py"
        assert "no recorded digest" in findings[0].message

    def test_deleted_module_flagged(self, semantics_repo):
        (semantics_repo.root / "src/repro/sched/easy.py").unlink()
        findings = _check(semantics_repo)
        assert len(findings) == 1
        assert "no longer exists" in findings[0].message

    def test_missing_data_file_flagged(self, fixture_repo):
        fixture_repo.add("src/repro/sim/engine.py", "ENGINE_VERSION = 1\n")
        findings, _ = fixture_repo.check(select=("FRZ001",))
        assert len(findings) == 1
        assert "--update-frozen" in findings[0].message

    def test_compute_matches_written(self, semantics_repo):
        root = str(semantics_repo.root)
        assert compute_frozen(root) == load_frozen(root)
        assert load_frozen(root)["engine_version"] == 1
        assert "src/repro/sched/legacy.py" in load_frozen(root)["oracle"]


class TestRealRepoDigests:
    def test_checked_in_digests_match_the_tree(self):
        # the real data file must stay true as code lands; this is the
        # in-suite twin of the CI `repro check` gate
        from pathlib import Path

        root = str(Path(__file__).resolve().parents[2])
        recorded = load_frozen(root)
        assert recorded is not None, "src/repro/analysis/data/frozen.json missing"
        assert recorded == compute_frozen(root)
