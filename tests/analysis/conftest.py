"""Shared helpers for the analyzer tests.

The fixture corpus under ``fixtures/<rule>/{bad,good}.py`` drives the
per-rule contract: every rule must flag its bad snippet and pass its
good one.  Each corpus file's first line declares where in a repository
it pretends to live (``# dest: src/repro/.../fixture.py``), because the
rules are path-scoped; ``fixture_repo`` materialises a throwaway repo
with the snippet at that path.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"

_DEST = re.compile(r"#\s*dest:\s*(\S+)")


def fixture_dest(text: str) -> str:
    match = _DEST.search(text.splitlines()[0])
    assert match, "corpus file must open with `# dest: <repo-relative path>`"
    return match.group(1)


class FixtureRepo:
    """A throwaway repository rooted at ``root``."""

    def __init__(self, root: Path) -> None:
        self.root = root
        (root / "pyproject.toml").write_text("[project]\nname='x'\n", encoding="utf-8")

    def add(self, relpath: str, text: str) -> Path:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def add_corpus(self, corpus: Path) -> str:
        text = corpus.read_text(encoding="utf-8")
        dest = fixture_dest(text)
        self.add(dest, text)
        return dest

    def check(self, select: tuple[str, ...] | None = None):
        from repro.analysis import CheckConfig, run_check

        findings, files = run_check(
            [os.fspath(self.root / "src")],
            root=os.fspath(self.root),
            config=CheckConfig(select=select),
        )
        return findings, files


@pytest.fixture
def fixture_repo(tmp_path: Path) -> FixtureRepo:
    return FixtureRepo(tmp_path)
