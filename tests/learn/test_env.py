"""Environment rollouts: determinism, seed decoupling, gradient shape."""

from __future__ import annotations

import numpy as np

from repro.dist.broker import LocalBroker
from repro.learn import BackfillEnv, EnvConfig, LinearSoftmaxPolicy
from repro.learn.env import Episode
from repro.learn.policy import FEATURE_NAMES
from repro.learn.rollout import collect_episodes

CONFIG = EnvConfig(log="KTH-SP2", n_jobs=120)


def test_greedy_rollout_is_deterministic():
    env = BackfillEnv(CONFIG)
    policy = LinearSoftmaxPolicy.sjbf_init()
    a = env.rollout(policy, seed=11)
    b = env.rollout(policy, seed=11)
    assert a.avebsld == b.avebsld
    assert a.return_ == -a.avebsld
    # greedy rollouts record nothing
    assert a.decisions == 0
    assert not a.grad.any()


def test_sampled_rollout_is_deterministic_in_rng_seed():
    env = BackfillEnv(CONFIG)
    policy = LinearSoftmaxPolicy.sjbf_init()
    a = env.rollout(policy, seed=11, sample=True, temperature=10.0, rng_seed=5)
    b = env.rollout(policy, seed=11, sample=True, temperature=10.0, rng_seed=5)
    assert a.avebsld == b.avebsld
    np.testing.assert_array_equal(a.grad, b.grad)
    assert a.decisions == b.decisions
    assert a.grad.shape == (len(FEATURE_NAMES) + 1,)


def test_rng_seed_decouples_noise_from_trace():
    """Same trace seed, different action noise -> different trajectories."""
    env = BackfillEnv(CONFIG)
    policy = LinearSoftmaxPolicy.sjbf_init()
    a = env.rollout(policy, seed=11, sample=True, temperature=10.0, rng_seed=5)
    b = env.rollout(policy, seed=11, sample=True, temperature=10.0, rng_seed=6)
    assert not np.array_equal(a.grad, b.grad)
    assert a.seed == b.seed == 11


def test_trace_memoisation_returns_same_object():
    env = BackfillEnv(CONFIG)
    assert env.trace(3) is env.trace(3)
    assert env.trace(3) is not env.trace(4)


def test_episode_round_trips_through_plain_data():
    episode = Episode(
        seed=9,
        avebsld=2.5,
        return_=-2.5,
        grad=np.arange(len(FEATURE_NAMES) + 1, dtype=np.float64),
        entropy=0.7,
        decisions=12,
        stops=3,
    )
    back = Episode.from_obj(episode.to_obj())
    assert back.seed == episode.seed
    assert back.avebsld == episode.avebsld
    np.testing.assert_array_equal(back.grad, episode.grad)
    assert back.stops == episode.stops


def test_collect_episodes_preserves_seed_order():
    seeds = [13, 11, 12]
    episodes = collect_episodes(
        LocalBroker(workers=1),
        CONFIG,
        LinearSoftmaxPolicy.sjbf_init(),
        seeds,
        sample=False,
    )
    assert [ep.seed for ep in episodes] == seeds


def test_collect_episodes_rejects_misaligned_rng_seeds():
    import pytest

    with pytest.raises(ValueError, match="align"):
        collect_episodes(
            LocalBroker(workers=1),
            CONFIG,
            LinearSoftmaxPolicy.sjbf_init(),
            [1, 2],
            sample=True,
            rng_seeds=[1],
        )
