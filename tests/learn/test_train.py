"""Trainer determinism and the never-worse-than-init guarantee."""

from __future__ import annotations

import pytest

from repro.dist.broker import LocalBroker
from repro.learn import TrainConfig, train
from repro.obs.telemetry import Telemetry

TINY = TrainConfig(
    log="KTH-SP2",
    n_jobs=100,
    replicas=1,
    epochs=2,
    episodes=3,
    temperature=5.0,
    seed=3,
)


class TestDeterminism:
    def test_same_config_same_digest(self):
        a = train(TINY)
        b = train(TINY)
        assert a.digest == b.digest
        assert a.checkpoint == b.checkpoint
        assert a.best_epoch == b.best_epoch
        assert [h["grad_norm"] for h in a.history] == [
            h["grad_norm"] for h in b.history
        ]

    def test_worker_count_does_not_change_the_digest(self):
        serial = train(TINY, broker=LocalBroker(workers=1))
        pooled = train(TINY, broker=LocalBroker(workers=2))
        assert serial.digest == pooled.digest

    def test_different_seed_changes_the_trajectory(self):
        from dataclasses import replace

        a = train(TINY)
        b = train(replace(TINY, seed=4))
        # action noise differs, so the per-epoch gradients must differ
        assert [h["grad_norm"] for h in a.history] != [
            h["grad_norm"] for h in b.history
        ]


class TestNeverWorseThanInit:
    def test_shipped_policy_matches_or_beats_init(self):
        result = train(TINY)
        assert result.train_avebsld <= result.init_avebsld

    def test_zero_epochs_ships_the_init(self):
        config = TrainConfig(log="KTH-SP2", n_jobs=100, replicas=1, epochs=0)
        result = train(config)
        assert result.best_epoch == -1
        assert result.train_avebsld == result.init_avebsld
        assert result.history == []
        meta = result.checkpoint.meta
        assert meta["best_epoch"] == -1


class TestBookkeeping:
    def test_history_and_meta(self):
        result = train(TINY)
        assert len(result.history) == TINY.epochs
        for epoch, row in enumerate(result.history):
            assert row["epoch"] == epoch
            assert set(row) >= {
                "mean_return", "best_return", "entropy", "grad_norm",
                "greedy_avebsld",
            }
        meta = result.checkpoint.meta
        assert meta["trained_on"]["log"] == TINY.log
        assert meta["trainer"]["algo"] == "reinforce"
        assert meta["trainer"]["seed"] == TINY.seed

    def test_telemetry_counters(self):
        tele = Telemetry(component="test-train")
        train(TINY, telemetry=tele)
        snapshot = tele.snapshot()
        counters = snapshot.get("counters", {})
        assert counters.get("learn.epochs") == TINY.epochs
        assert counters.get("learn.episodes") == TINY.epochs * TINY.episodes
        histograms = snapshot.get("histograms", {})
        assert histograms.get("learn.return", {}).get("count") == (
            TINY.epochs * TINY.episodes
        )

    def test_no_train_seeds_is_an_error(self):
        with pytest.raises(ValueError, match="train seed"):
            train(TrainConfig(log="KTH-SP2", n_jobs=100, train_seeds=()))

    def test_resolved_train_seeds_follow_stable_seed(self):
        from repro.workload.archive import stable_seed

        config = TrainConfig(log="CTC-SP2", replicas=3)
        base = stable_seed("CTC-SP2")
        assert config.resolved_train_seeds() == (base, base + 1, base + 2)
        pinned = TrainConfig(log="CTC-SP2", train_seeds=(9, 12))
        assert pinned.resolved_train_seeds() == (9, 12)
