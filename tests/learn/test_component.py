"""The rl-backfill registry entry: spec identity, builds and campaigns."""

from __future__ import annotations

import pytest

from repro.learn import (
    BackfillEnv,
    CheckpointError,
    EnvConfig,
    LinearSoftmaxPolicy,
)
from repro.learn.checkpoint import DEFAULT_STORE_ENV
from repro.spec import CellSpec, WorkloadSpec, scheduler_registry

LOG = "KTH-SP2"
N_JOBS = 120


@pytest.fixture
def saved_digest(tmp_path, monkeypatch) -> str:
    """A checkpoint in a store that $REPRO_CHECKPOINT_DIR points at."""
    store = tmp_path / "ckpts"
    ckpt = LinearSoftmaxPolicy.sjbf_init().checkpoint(meta={"note": "test"})
    ckpt.save(store=str(store))
    monkeypatch.setenv(DEFAULT_STORE_ENV, str(store))
    return ckpt.digest()


def learned_cell(digest: str, seed: int | None = None) -> CellSpec:
    return CellSpec.make(
        workload=WorkloadSpec.make(LOG, n_jobs=N_JOBS, seed=seed),
        predictor="ave2",
        corrector="incremental",
        scheduler={"name": "rl-backfill", "params": {"policy": digest}},
    )


class TestNormalization:
    def test_normalize_fills_store_default(self, saved_digest):
        spec = scheduler_registry().normalize(
            {"name": "rl-backfill", "params": {"policy": saved_digest}}
        )
        assert spec.name == "rl-backfill"
        assert dict(spec.params) == {"policy": saved_digest, "store": ""}

    def test_policy_param_is_required(self):
        with pytest.raises(ValueError, match="policy"):
            scheduler_registry().normalize({"name": "rl-backfill"})

    def test_no_legacy_triple_spelling(self, saved_digest):
        cell = learned_cell(saved_digest)
        assert cell.triple_key is None
        assert "rl-backfill" in cell.label
        assert saved_digest in cell.label


class TestSpecIdentity:
    def test_digest_varies_with_policy_digest(self, saved_digest):
        other = LinearSoftmaxPolicy.sjbf_init().step(
            [0.1] * (len(LinearSoftmaxPolicy.sjbf_init().theta))
        ).checkpoint()
        a = learned_cell(saved_digest)
        b = learned_cell(other.digest())
        assert a.digest() != b.digest()

    def test_store_location_stays_out_of_the_digest(self, saved_digest):
        default_store = learned_cell(saved_digest)
        explicit_store = CellSpec.make(
            workload=WorkloadSpec.make(LOG, n_jobs=N_JOBS),
            predictor="ave2",
            corrector="incremental",
            scheduler={
                "name": "rl-backfill",
                "params": {"policy": saved_digest, "store": "/somewhere/else"},
            },
        )
        assert default_store.digest() != explicit_store.digest()  # param digested
        # ...but the canonical *default* spelling ("") is what train/eval
        # emit, so moving the store only ever changes the env var.
        assert dict(default_store.scheduler.params)["store"] == ""

    def test_heuristic_digests_untouched(self):
        """Registering rl-backfill must not move any heuristic digest."""
        cell = CellSpec.make(
            workload=WorkloadSpec.make(LOG, n_jobs=N_JOBS, seed=1),
            predictor="ave2",
            corrector="incremental",
            scheduler="easy-sjbf",
        )
        obj = cell.scheduler.to_obj()
        assert "rl" not in str(obj)
        assert cell.triple_key is not None


class TestBuild:
    def test_build_returns_greedy_scheduler(self, saved_digest):
        scheduler = scheduler_registry().build(
            {"name": "rl-backfill", "params": {"policy": saved_digest}}
        )
        assert scheduler.name == "rl-backfill"
        assert scheduler.rng is None  # deployment builds are deterministic
        assert scheduler.recorder is None

    def test_missing_checkpoint_is_actionable(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DEFAULT_STORE_ENV, str(tmp_path / "empty"))
        with pytest.raises(CheckpointError, match="repro train"):
            scheduler_registry().build(
                {"name": "rl-backfill", "params": {"policy": "deadbeefdeadbeef"}}
            )


class TestCampaignPath:
    def test_run_cells_scores_a_learned_cell(self, saved_digest, tmp_path):
        from repro.core.campaign import run_cells

        cell = learned_cell(saved_digest)
        cache = tmp_path / "cache.jsonl"
        result = run_cells([cell], cache_path=str(cache), workers=1)
        score = result.score(cell)
        assert score > 0

        # the SJBF-equivalent init must score exactly like easy-sjbf
        env = BackfillEnv(EnvConfig(log=LOG, n_jobs=N_JOBS))
        reference = env.rollout(
            LinearSoftmaxPolicy.sjbf_init(), seed=cell.workload.seed
        )
        assert score == pytest.approx(reference.avebsld, abs=1e-12)

        # and the cache row keys on the spec digest, so a second run is a hit
        again = run_cells([cell], cache_path=str(cache), workers=1)
        assert again.score(cell) == score
        assert cell.digest() not in again.durations  # served from cache
