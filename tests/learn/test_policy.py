"""Policy mechanics + the SJBF-equivalence guarantee of the init."""

from __future__ import annotations

import numpy as np
import pytest

from repro.correct import IncrementalCorrector
from repro.learn import LinearSoftmaxPolicy, RLBackfillScheduler
from repro.learn.checkpoint import CheckpointError, PolicyCheckpoint
from repro.learn.policy import FEATURE_NAMES, POLICY_FAMILY
from repro.predict import RecentAveragePredictor
from repro.sim import SimSession
from repro.workload import get_trace

N_JOBS = 150
LOG = "KTH-SP2"


def run_session(trace, scheduler):
    session = SimSession(
        trace.processors,
        scheduler,
        RecentAveragePredictor(),
        IncrementalCorrector(),
        min_prediction=60.0,
        trace_name=trace.name,
    )
    session.feed(trace)
    session.drain()
    return session.result()


class TestLinearSoftmax:
    def test_theta_round_trip(self):
        policy = LinearSoftmaxPolicy.sjbf_init()
        delta = 0.1 * np.arange(len(FEATURE_NAMES) + 1)
        moved = policy.step(delta)
        np.testing.assert_allclose(moved.theta, policy.theta + delta)
        # step returns a new policy, never mutates
        np.testing.assert_allclose(
            policy.theta, LinearSoftmaxPolicy.sjbf_init().theta
        )

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            LinearSoftmaxPolicy(np.zeros(3), 0.0)

    def test_distribution_sums_to_one_and_orders_like_scores(self):
        policy = LinearSoftmaxPolicy.sjbf_init()
        features = np.random.default_rng(0).uniform(0, 5, (4, len(FEATURE_NAMES)))
        probs = policy.distribution(features)
        assert probs.shape == (5,)  # 4 candidates + stop
        assert probs.sum() == pytest.approx(1.0)
        scores = policy.action_scores(features)
        assert np.argmax(probs) == np.argmax(scores)

    def test_greedy_matches_distribution_mode(self):
        policy = LinearSoftmaxPolicy.sjbf_init()
        features = np.random.default_rng(1).uniform(0, 5, (6, len(FEATURE_NAMES)))
        assert policy.act_greedy(features) == int(
            np.argmax(policy.distribution(features))
        )

    def test_overflow_safe_distribution(self):
        policy = LinearSoftmaxPolicy(np.full(len(FEATURE_NAMES), 500.0), 0.0)
        features = np.full((3, len(FEATURE_NAMES)), 10.0)
        probs = policy.distribution(features)
        assert np.isfinite(probs).all()

    def test_checkpoint_fences_family_and_features(self):
        ckpt = LinearSoftmaxPolicy.sjbf_init().checkpoint()
        wrong_family = PolicyCheckpoint(
            family="mlp",
            features=ckpt.features,
            weights=ckpt.weights,
            stop_bias=ckpt.stop_bias,
        )
        with pytest.raises(CheckpointError, match=POLICY_FAMILY):
            LinearSoftmaxPolicy.from_checkpoint(wrong_family)
        renamed = PolicyCheckpoint(
            family=POLICY_FAMILY,
            features=tuple(f + "_v2" for f in ckpt.features),
            weights=ckpt.weights,
            stop_bias=ckpt.stop_bias,
        )
        with pytest.raises(CheckpointError, match="features"):
            LinearSoftmaxPolicy.from_checkpoint(renamed)


class TestSjbfEquivalence:
    """The init policy IS EASY-SJBF: byte-identical schedules."""

    def test_greedy_init_schedule_matches_easy_sjbf(self):
        from repro.sched import make_scheduler

        trace = get_trace(LOG, n_jobs=N_JOBS)
        reference = run_session(trace, make_scheduler("easy-sjbf"))
        learned = run_session(
            trace, RLBackfillScheduler(LinearSoftmaxPolicy.sjbf_init())
        )
        ref_starts = {r.job_id: r.start_time for r in reference}
        rl_starts = {r.job_id: r.start_time for r in learned}
        assert ref_starts == rl_starts
        assert learned.avebsld() == pytest.approx(reference.avebsld(), abs=1e-12)

    def test_sampled_rollout_can_diverge(self):
        trace = get_trace(LOG, n_jobs=N_JOBS)
        greedy = run_session(
            trace, RLBackfillScheduler(LinearSoftmaxPolicy.sjbf_init())
        )
        # high temperature flattens the softmax into near-uniform picks
        sampled = run_session(
            trace,
            RLBackfillScheduler(
                LinearSoftmaxPolicy.sjbf_init(),
                rng=np.random.default_rng(123),
                temperature=50.0,
            ),
        )
        greedy_starts = {r.job_id: r.start_time for r in greedy}
        sampled_starts = {r.job_id: r.start_time for r in sampled}
        assert greedy_starts != sampled_starts

    def test_recorder_never_changes_the_schedule(self):
        trace = get_trace(LOG, n_jobs=N_JOBS)
        decisions: list[int] = []

        def recorder(aug, action, probs):
            decisions.append(action)
            assert aug.shape[1] == len(FEATURE_NAMES) + 1
            assert probs.shape[0] == aug.shape[0]

        plain = run_session(
            trace, RLBackfillScheduler(LinearSoftmaxPolicy.sjbf_init())
        )
        recorded = run_session(
            trace,
            RLBackfillScheduler(LinearSoftmaxPolicy.sjbf_init(), recorder=recorder),
        )
        assert decisions  # the policy did make decisions
        assert {r.job_id: r.start_time for r in plain} == {
            r.job_id: r.start_time for r in recorded
        }
