"""Checkpoint canonical form, persistence and version fencing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.learn import (
    CHECKPOINT_VERSION,
    CheckpointError,
    PolicyCheckpoint,
    resolve_store,
)
from repro.learn.checkpoint import DEFAULT_STORE, DEFAULT_STORE_ENV
from repro.learn.policy import FEATURE_NAMES, LinearSoftmaxPolicy


def sample_checkpoint(meta: dict | None = None) -> PolicyCheckpoint:
    policy = LinearSoftmaxPolicy.sjbf_init().step(
        0.01 * np.arange(len(FEATURE_NAMES) + 1)
    )
    return policy.checkpoint(meta=meta)


class TestDigest:
    def test_digest_is_16_hex(self):
        digest = sample_checkpoint().digest()
        assert len(digest) == 16
        int(digest, 16)

    def test_meta_is_excluded_from_digest(self):
        bare = sample_checkpoint()
        documented = sample_checkpoint(meta={"trained_on": "KTH-SP2", "t": 123})
        assert bare.digest() == documented.digest()

    def test_weights_change_digest(self):
        a = LinearSoftmaxPolicy.sjbf_init().checkpoint()
        b = LinearSoftmaxPolicy.sjbf_init().step(
            np.ones(len(FEATURE_NAMES) + 1)
        ).checkpoint()
        assert a.digest() != b.digest()

    def test_weight_feature_mismatch_rejected(self):
        with pytest.raises(CheckpointError, match="weight"):
            PolicyCheckpoint(
                family="linear-softmax",
                features=FEATURE_NAMES,
                weights=(1.0, 2.0),
                stop_bias=0.0,
            )


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        ckpt = sample_checkpoint(meta={"note": "round trip"})
        path = ckpt.save(store=str(tmp_path))
        loaded = PolicyCheckpoint.load(path)
        assert loaded == ckpt
        assert loaded.digest() == ckpt.digest()
        assert loaded.meta["note"] == "round trip"

    def test_load_by_digest(self, tmp_path):
        ckpt = sample_checkpoint()
        ckpt.save(store=str(tmp_path))
        loaded = PolicyCheckpoint.load_by_digest(ckpt.digest(), store=str(tmp_path))
        assert loaded == ckpt

    def test_save_is_idempotent(self, tmp_path):
        ckpt = sample_checkpoint(meta={"k": 1})
        path1 = ckpt.save(store=str(tmp_path))
        bytes1 = open(path1, "rb").read()
        path2 = ckpt.save(store=str(tmp_path))
        assert path1 == path2
        assert open(path2, "rb").read() == bytes1

    def test_missing_digest_error_is_actionable(self, tmp_path):
        with pytest.raises(CheckpointError) as exc:
            PolicyCheckpoint.load_by_digest("deadbeefdeadbeef", store=str(tmp_path))
        message = str(exc.value)
        assert "repro train" in message
        assert DEFAULT_STORE_ENV in message


class TestFencing:
    def test_version_mismatch_rejected(self, tmp_path):
        ckpt = sample_checkpoint()
        path = ckpt.save(store=str(tmp_path))
        obj = json.load(open(path))
        obj["checkpoint"]["checkpoint_version"] = CHECKPOINT_VERSION + 1
        json.dump(obj, open(path, "w"))
        with pytest.raises(CheckpointError, match="checkpoint_version"):
            PolicyCheckpoint.load(path)

    def test_edited_content_rejected(self, tmp_path):
        ckpt = sample_checkpoint()
        path = ckpt.save(store=str(tmp_path))
        obj = json.load(open(path))
        obj["checkpoint"]["weights"][0] += 1.0  # digest now stale
        json.dump(obj, open(path, "w"))
        with pytest.raises(CheckpointError, match="digest"):
            PolicyCheckpoint.load(path)

    def test_misnamed_store_file_rejected(self, tmp_path):
        ckpt = sample_checkpoint()
        path = ckpt.save(store=str(tmp_path))
        wrong = tmp_path / "0123456789abcdef.json"
        wrong.write_bytes(open(path, "rb").read())
        with pytest.raises(CheckpointError, match="corrupt"):
            PolicyCheckpoint.load_by_digest("0123456789abcdef", store=str(tmp_path))

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(CheckpointError, match="JSON"):
            PolicyCheckpoint.load(str(path))


class TestStoreResolution:
    def test_explicit_store_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STORE_ENV, "/env/store")
        assert resolve_store("/explicit") == "/explicit"

    def test_env_store_second(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STORE_ENV, "/env/store")
        assert resolve_store(None) == "/env/store"

    def test_default_store_last(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_STORE_ENV, raising=False)
        assert resolve_store(None) == DEFAULT_STORE
