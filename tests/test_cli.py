"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workload import load_swf


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_log_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--log", "NOPE"])


class TestLogsCommand:
    def test_prints_table4(self, capsys):
        assert main(["logs"]) == 0
        out = capsys.readouterr().out
        for name in ("KTH-SP2", "Curie", "Metacentrum"):
            assert name in out
        assert "80640" in out  # Curie's CPU count


class TestSynthCommand:
    def test_writes_swf(self, tmp_path, capsys):
        out_path = tmp_path / "t.swf"
        assert main(["synth", str(out_path), "--log", "KTH-SP2", "--n-jobs", "80"]) == 0
        trace, report = load_swf(out_path)
        assert len(trace) == 80
        assert "wrote" in capsys.readouterr().out


class TestSimCommand:
    def test_easy_run(self, capsys):
        code = main([
            "sim", "--log", "KTH-SP2", "--n-jobs", "200",
            "--predictor", "requested", "--scheduler", "easy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AVEbsld" in out
        assert "EASY (standard)" in out

    def test_ml_run_with_correction(self, capsys):
        code = main([
            "sim", "--log", "Curie", "--n-jobs", "200",
            "--predictor", "ml:sq-lin-large-area",
            "--corrector", "incremental", "--scheduler", "easy-sjbf",
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out


class TestTableCommands:
    def test_table4(self, capsys):
        assert main(["table", "--which", "4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_table1_small(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        code = main([
            "table", "--which", "1", "--n-jobs", "150", "--replicas", "1",
            "--cache", str(cache),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EASY-Clairvoyant" in out
        assert cache.exists()

    def test_table8_small(self, capsys):
        assert main(["table", "--which", "8", "--n-jobs", "300"]) == 0
        out = capsys.readouterr().out
        assert "AVE2" in out
        assert "E-Loss" in out
