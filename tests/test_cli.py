"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workload import load_swf


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_log_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--log", "NOPE"])


class TestLogsCommand:
    def test_prints_table4(self, capsys):
        assert main(["logs"]) == 0
        out = capsys.readouterr().out
        for name in ("KTH-SP2", "Curie", "Metacentrum"):
            assert name in out
        assert "80640" in out  # Curie's CPU count


class TestSynthCommand:
    def test_writes_swf(self, tmp_path, capsys):
        out_path = tmp_path / "t.swf"
        assert main(["synth", str(out_path), "--log", "KTH-SP2", "--n-jobs", "80"]) == 0
        trace, report = load_swf(out_path)
        assert len(trace) == 80
        assert "wrote" in capsys.readouterr().out

    def test_omitted_seed_is_derived_and_printed(self, tmp_path, capsys):
        """Every run must be reproducible from its own output: with
        --seed omitted the derived seed is printed, and re-running with
        that seed writes a byte-identical trace."""
        from repro.workload import stable_seed

        first = tmp_path / "a.swf"
        assert main(["synth", str(first), "--log", "Curie", "--n-jobs", "60"]) == 0
        out = capsys.readouterr().out
        derived = stable_seed("Curie")
        assert f"seed {derived}" in out
        assert "derived from log name" in out

        second = tmp_path / "b.swf"
        assert main([
            "synth", str(second), "--log", "Curie", "--n-jobs", "60",
            "--seed", str(derived),
        ]) == 0
        out = capsys.readouterr().out
        assert "from --seed" in out
        assert first.read_bytes() == second.read_bytes()


class TestSimCommand:
    def test_easy_run(self, capsys):
        code = main([
            "sim", "--log", "KTH-SP2", "--n-jobs", "200",
            "--predictor", "requested", "--scheduler", "easy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AVEbsld" in out
        assert "EASY (standard)" in out

    def test_ml_run_with_correction(self, capsys):
        code = main([
            "sim", "--log", "Curie", "--n-jobs", "200",
            "--predictor", "ml:sq-lin-large-area",
            "--corrector", "incremental", "--scheduler", "easy-sjbf",
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out

    def test_omitted_seed_is_derived_and_printed(self, capsys):
        from repro.workload import stable_seed

        assert main(["sim", "--log", "KTH-SP2", "--n-jobs", "120"]) == 0
        out = capsys.readouterr().out
        assert f"seed       : {stable_seed('KTH-SP2')} (derived from log name)" in out

    def test_explicit_seed_reproduces(self, capsys):
        args = ["sim", "--log", "KTH-SP2", "--n-jobs", "120", "--seed", "77"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "seed       : 77 (from --seed)" in first
        assert main(args) == 0
        assert capsys.readouterr().out == first


MINI_SPEC = """
[campaign]
name = "cli-mini"
logs = ["KTH-SP2"]
n_jobs = 60
replicas = 1

[[grid]]
predictor = ["requested"]
corrector = ["none"]
scheduler = ["easy", "easy-sjbf"]
"""


class TestSpecCommands:
    def test_validate_ok(self, tmp_path, capsys):
        path = tmp_path / "mini.toml"
        path.write_text(MINI_SPEC)
        assert main(["spec", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "2 cell(s)" in out

    def test_validate_reports_failures_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[campaign]\nlogs = [\"KTH-SP2\"]\n[[grid]]\npredictor = [\"warp-drive\"]\nscheduler = [\"easy\"]\n")
        assert main(["spec", "validate", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_expand_keys(self, tmp_path, capsys):
        path = tmp_path / "mini.toml"
        path.write_text(MINI_SPEC)
        assert main(["spec", "expand", str(path), "--format", "keys"]) == 0
        out = capsys.readouterr().out
        assert "requested|none|easy" in out
        assert "requested|none|easy-sjbf" in out

    def test_expand_checked_in_paper_spec(self, capsys):
        assert main([
            "spec", "expand", "experiments/paper.toml",
            "--format", "keys", "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "requested|none|easy" in out
        assert "130 unique triple key(s)" in out

    def test_campaign_with_spec_file(self, tmp_path, capsys):
        path = tmp_path / "mini.toml"
        path.write_text(MINI_SPEC)
        cache = tmp_path / "cache.jsonl"
        assert main([
            "campaign", "--spec", str(path), "--cache", str(cache), "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        # not the full paper matrix -> leaderboard fallback
        assert "Scenario leaderboard" in out
        assert "mean s/cell" in out  # timing column from this run's durations
        assert cache.exists()


class TestVersionAndMetrics:
    def test_version_reports_all_version_fences(self, capsys):
        from repro import __version__
        from repro.core.campaign import CACHE_VERSION
        from repro.sim.engine import ENGINE_VERSION

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert f"engine v{ENGINE_VERSION}" in out
        assert f"cache v{CACHE_VERSION}" in out

    def test_sim_telemetry_then_metrics_render(self, tmp_path, capsys):
        tele_dir = tmp_path / "tele"
        assert main([
            "sim", "--log", "KTH-SP2", "--n-jobs", "60",
            "--telemetry", str(tele_dir),
        ]) == 0
        capsys.readouterr()
        assert (tele_dir / "metrics-sim.json").exists()
        assert (tele_dir / "metrics-sim.prom").exists()
        assert main(["metrics", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "== sim ==" in out
        assert "engine.events.submit" in out

    def test_metrics_prom_and_json_formats(self, tmp_path, capsys):
        tele_dir = tmp_path / "tele"
        assert main([
            "sim", "--log", "KTH-SP2", "--n-jobs", "60",
            "--telemetry", str(tele_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["metrics", str(tele_dir), "--format", "prom"]) == 0
        assert "repro_engine_events_submit_total" in capsys.readouterr().out
        assert main(["metrics", str(tele_dir), "--format", "json"]) == 0
        import json as jsonlib

        snaps = jsonlib.loads(capsys.readouterr().out)
        assert snaps[0]["component"] == "sim"

    def test_metrics_diff_between_two_runs(self, tmp_path, capsys):
        before, after = tmp_path / "before", tmp_path / "after"
        for directory, n_jobs in ((before, "40"), (after, "80")):
            assert main([
                "sim", "--log", "KTH-SP2", "--n-jobs", n_jobs,
                "--telemetry", str(directory),
            ]) == 0
        capsys.readouterr()
        assert main(["metrics", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "== sim (delta) ==" in out
        assert "engine.events.submit" in out and "+40" in out

    def test_metrics_empty_directory_fails(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path)]) == 1
        assert "no metrics-" in capsys.readouterr().out

    def test_campaign_telemetry_covers_engine_and_campaign(self, tmp_path, capsys):
        path = tmp_path / "mini.toml"
        path.write_text(MINI_SPEC)
        tele_dir = tmp_path / "tele"
        assert main([
            "campaign", "--spec", str(path), "--workers", "1",
            "--telemetry", str(tele_dir),
        ]) == 0
        capsys.readouterr()
        import json as jsonlib

        snap = jsonlib.loads((tele_dir / "metrics-campaign.json").read_text())
        assert snap["counters"]["campaign.cells.simulated"] == 2
        assert snap["counters"]["engine.cells"] == 2  # folded in from the cells
        assert "campaign.cell.seconds" in snap["histograms"]
        # the dispatch span also landed in the trace stream
        trace_lines = (tele_dir / "trace-campaign.jsonl").read_text().splitlines()
        kinds = {jsonlib.loads(line)["kind"] for line in trace_lines}
        assert "span" in kinds and "cell" in kinds


class TestDistCommands:
    def test_worker_requires_queue(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_campaign_fsqueue_requires_queue(self):
        with pytest.raises(SystemExit, match="--queue"):
            main([
                "campaign", "--backend", "fsqueue",
                "--logs", "KTH-SP2", "--n-jobs", "50", "--replicas", "1",
            ])

    def test_worker_drains_prepared_queue(self, tmp_path, capsys):
        """A worker pointed at a pre-enqueued queue completes the shard
        and exits on the idle budget."""
        from repro.core import CampaignConfig
        from repro.dist import FsQueue, plan_shards

        config = CampaignConfig(logs=("KTH-SP2",), n_jobs=60, replicas=1)
        queue = FsQueue.create(str(tmp_path / "q"), lease_ttl=60.0)
        cells = [
            config.cell_spec(
                "KTH-SP2", "requested|none|easy", config.seeds_for("KTH-SP2")[0]
            )
        ]
        for shard in plan_shards(cells, n_shards=1):
            queue.enqueue(shard.manifest())
        code = main([
            "worker", "--queue", str(tmp_path / "q"),
            "--worker-id", "t1", "--poll", "0.05", "--max-idle", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 shard(s), 1 simulated cell(s)" in out
        assert queue.done_ids() == {"shard-0000"}

    def test_merge_command(self, tmp_path, capsys):
        import json as jsonlib

        from repro.core.campaign import CACHE_VERSION
        from repro.sim.engine import ENGINE_VERSION

        token = f"v{CACHE_VERSION}|e{ENGINE_VERSION}|x"
        src = tmp_path / "shard.jsonl"
        src.write_text(jsonlib.dumps({"token": token, "value": 1.0}) + "\n")
        out = tmp_path / "merged.jsonl"
        assert main(["merge", "--out", str(out), str(src)]) == 0
        assert "1 unique cells" in capsys.readouterr().out
        assert out.exists()


class TestTableCommands:
    def test_table4(self, capsys):
        assert main(["table", "--which", "4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_table1_small(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        code = main([
            "table", "--which", "1", "--n-jobs", "150", "--replicas", "1",
            "--cache", str(cache),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EASY-Clairvoyant" in out
        assert cache.exists()

    def test_table8_small(self, capsys):
        assert main(["table", "--which", "8", "--n-jobs", "300"]) == 0
        out = capsys.readouterr().out
        assert "AVE2" in out
        assert "E-Loss" in out
