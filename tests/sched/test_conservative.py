"""Unit tests for conservative backfilling."""

import pytest

from repro.predict import ClairvoyantPredictor, RequestedTimePredictor
from repro.sched import ConservativeScheduler, EasyScheduler
from repro.sim import simulate
from repro.sim.machine import Machine
from repro.workload import Trace

from tests.helpers import make_job, make_record


class TestConservativeSelection:
    def test_starts_when_fitting(self):
        m = Machine(8)
        sched = ConservativeScheduler()
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=100.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started] == [1]

    def test_no_backfill_that_delays_any_reservation(self):
        m = Machine(8)
        sched = ConservativeScheduler()
        running = make_record(job_id=0, processors=6, predicted_runtime=100.0)
        m.start(running, now=0.0)
        # head reserves [100, 600) on 4 procs
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=500.0))
        # second job reserves after head: [100, 600) has 4 free -> fits at 100
        sched.on_submit(make_record(job_id=2, processors=4, predicted_runtime=100.0))
        # a 2-wide long candidate would overlap job2's reservation if it
        # used the 2 free processors now... 2 free now, at t=100 job0 ends:
        # profile: [0,100)=2 free minus reservations...
        sched.on_submit(make_record(job_id=3, processors=2, predicted_runtime=50.0))
        started = sched.select_jobs(0.0, m)
        # job3 finishes at 50 < 100, delays nobody: backfilled
        assert [r.job_id for r in started] == [3]

    def test_conservative_stricter_than_easy(self, kth_trace):
        """Conservative protects every queued job, so jobs 2..k can never
        be delayed past their first reservation; EASY can delay them."""
        easy = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        cons = simulate(kth_trace, ConservativeScheduler(), RequestedTimePredictor())
        # both complete all jobs; schedules are valid but different
        assert len(easy) == len(cons)
        assert any(a.start_time != b.start_time for a, b in zip(easy, cons, strict=True))

    def test_runs_clean_with_clairvoyance(self, tiny_trace):
        result = simulate(tiny_trace, ConservativeScheduler(), ClairvoyantPredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[1].start_time == 0.0
        assert by_id[3].start_time == 0.0  # harmless backfill still allowed
        assert by_id[2].start_time == 100.0

    def test_unknown_order_rejected(self):
        with pytest.raises(KeyError):
            ConservativeScheduler("bogus")


class TestConservativeGuarantee:
    def test_reservations_never_regress_under_overestimates(self):
        """With over-predictions only (no corrections), jobs start no later
        than their submission-time reservation, and early completions are
        exploited by the event-driven recomputation."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=6,
                     requested_time=200.0),
            make_job(job_id=2, submit_time=1.0, runtime=100.0, processors=6,
                     requested_time=200.0),
            # short narrow job: fits the 2 idle processors immediately
            make_job(job_id=3, submit_time=2.0, runtime=10.0, processors=2,
                     requested_time=20.0),
            # long narrow job: would collide with job 2's reservation window
            # only if wider than the leftover; q=2 still fits alongside
            make_job(job_id=4, submit_time=3.0, runtime=10.0, processors=4,
                     requested_time=400.0),
        ]
        trace = Trace(jobs, processors=8)
        result = simulate(trace, ConservativeScheduler(), RequestedTimePredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[3].start_time == 2.0
        # job 2's reservation was t=200 (job 1 predicted end); job 1 really
        # ends at 100 and the recomputation starts job 2 then.
        assert by_id[2].start_time == 100.0
        # job 4 (q=4, requested 400) cannot start before job 2's
        # reservation (only 2 procs spare) nor alongside job 2 (6+4 > 8):
        # it must wait for job 2's completion.
        assert by_id[4].start_time == pytest.approx(200.0)
