"""Test package."""
