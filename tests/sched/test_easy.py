"""Unit + property tests for EASY backfilling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.easy import EasyScheduler, compute_shadow
from repro.sim.machine import Machine
from repro.sim.profile import AvailabilityProfile

from tests.helpers import make_record


class TestComputeShadow:
    def test_head_fits_now(self):
        shadow, extra = compute_shadow(4, free=6, releases=[], now=100.0)
        assert shadow == 100.0
        assert extra == 2

    def test_waits_for_first_release(self):
        shadow, extra = compute_shadow(4, free=2, releases=[(150.0, 3)], now=100.0)
        assert shadow == 150.0
        assert extra == 1

    def test_accumulates_releases(self):
        releases = [(150.0, 1), (200.0, 2), (300.0, 5)]
        shadow, extra = compute_shadow(6, free=1, releases=releases, now=100.0)
        assert shadow == 300.0
        assert extra == 3

    def test_never_startable_raises(self):
        with pytest.raises(ValueError):
            compute_shadow(10, free=2, releases=[(5.0, 3)], now=0.0)

    @settings(max_examples=100)
    @given(
        head_q=st.integers(min_value=1, max_value=16),
        free=st.integers(min_value=0, max_value=16),
        releases=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1000.0),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=10,
        ),
    )
    def test_shadow_matches_profile_oracle(self, head_q, free, releases):
        """Property: the shadow time equals the earliest time the head fits
        according to an independently-built availability profile, and the
        extra pool equals the profile's surplus at the shadow."""
        m = free + sum(q for _, q in releases)
        if head_q > m or head_q <= free:
            return  # degenerate cases covered by the unit tests above
        releases = sorted(releases)
        shadow, extra = compute_shadow(head_q, free, releases, now=0.0)
        profile = AvailabilityProfile.from_releases(m, 0.0, free, releases)
        oracle = profile.earliest_fit(head_q, duration=1e-9, not_before=0.0)
        assert shadow == pytest.approx(oracle)
        assert extra == profile.available_at(shadow) - head_q


def start_all(machine, scheduler, now=0.0):
    started = scheduler.select_jobs(now, machine)
    for rec in started:
        machine.start(rec, now)
    return started


class TestEasySelection:
    def test_starts_in_fcfs_order_when_fitting(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        for i in (1, 2, 3):
            sched.on_submit(make_record(job_id=i, processors=2, predicted_runtime=100.0))
        started = start_all(m, sched)
        assert [r.job_id for r in started] == [1, 2, 3]

    def test_head_blocks_without_candidates(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        sched.on_submit(make_record(job_id=1, processors=8, predicted_runtime=100.0))
        sched.on_submit(make_record(job_id=2, processors=8, predicted_runtime=100.0))
        started = start_all(m, sched)
        assert [r.job_id for r in started] == [1]
        assert sched.queue_length == 1

    def test_backfill_under_reservation(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        # running job holds 6 procs until t=100
        running = make_record(job_id=0, processors=6, predicted_runtime=100.0)
        m.start(running, now=0.0)
        # head needs 4 (waits until 100); short narrow job can backfill
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=500.0))
        sched.on_submit(make_record(job_id=2, processors=2, predicted_runtime=50.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started] == [2]

    def test_backfill_blocked_if_it_would_delay_head(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        running = make_record(job_id=0, processors=6, predicted_runtime=100.0)
        m.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=500.0))
        # candidate runs past the shadow (100) and needs more than the
        # extra processors (8 - 6 free now... extra = 4): q=3 <= extra=4
        # would be allowed; make it need 5 > extra
        sched.on_submit(make_record(job_id=2, processors=5, predicted_runtime=500.0))
        assert sched.select_jobs(0.0, m) == []

    def test_backfill_on_extra_processors_allowed(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        running = make_record(job_id=0, processors=6, predicted_runtime=100.0)
        m.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=500.0))
        # long candidate fitting within extra (= free_at_shadow - head = 4)
        sched.on_submit(make_record(job_id=2, processors=2, predicted_runtime=9999.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started] == [2]

    def test_extra_consumed_by_backfills(self):
        m = Machine(8)
        sched = EasyScheduler("fcfs")
        running = make_record(job_id=0, processors=4, predicted_runtime=100.0)
        m.start(running, now=0.0)
        # head needs 6: shadow = 100, extra = 8 - 6 = 2; free now = 4
        sched.on_submit(make_record(job_id=1, processors=6, predicted_runtime=500.0))
        # long candidate within extra: allowed, consumes the whole pool
        sched.on_submit(make_record(job_id=2, processors=2, predicted_runtime=9999.0))
        # further long candidates fit free-now but exceed remaining extra
        sched.on_submit(make_record(job_id=3, processors=2, predicted_runtime=9999.0))
        sched.on_submit(make_record(job_id=4, processors=1, predicted_runtime=9999.0))
        # a short candidate still backfills inside the window
        sched.on_submit(make_record(job_id=5, processors=1, predicted_runtime=50.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started] == [2, 5]

    def test_unknown_order_rejected(self):
        with pytest.raises(KeyError):
            EasyScheduler("bogus")


class TestSjbfOrder:
    def test_sjbf_backfills_shortest_first(self):
        m = Machine(8)
        sched = EasyScheduler("sjbf")
        running = make_record(job_id=0, processors=6, predicted_runtime=100.0)
        m.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, processors=4, predicted_runtime=500.0))
        # two candidates both fit free=2 one at a time; shortest goes first
        sched.on_submit(make_record(job_id=2, processors=2, predicted_runtime=90.0))
        sched.on_submit(make_record(job_id=3, processors=2, predicted_runtime=30.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started][0] == 3

    def test_fcfs_priority_preserved_for_head(self):
        """SJBF only reorders the backfill scan, not the queue head."""
        m = Machine(8)
        sched = EasyScheduler("sjbf")
        running = make_record(job_id=0, processors=8, predicted_runtime=100.0)
        m.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, processors=8, predicted_runtime=999.0))
        sched.on_submit(make_record(job_id=2, processors=1, predicted_runtime=10.0))
        # nothing fits now (machine full): nothing starts, head remains job 1
        assert sched.select_jobs(0.0, m) == []
        assert sched.queue[0].job_id == 1
