"""Batched correction storms: one re-sort / one profile rebuild per
timestamp must be *exactly* equivalent to the per-job delta feed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correct import IncrementalCorrector
from repro.predict import RecentAveragePredictor
from repro.sched import Scheduler, make_scheduler
from repro.sched.profile_structure import IncrementalProfile, ReleaseTable
from repro.sim import Simulator
from repro.sim.profile import AvailabilityProfile
from repro.workload import Job, Trace


class TestMoveMany:
    def build(self, n=6):
        table = ReleaseTable()
        for jid in range(1, n + 1):
            table.add(jid, 10.0 * jid, jid)
        return table

    def test_equivalent_to_sequential_moves(self):
        batched = self.build()
        sequential = self.build()
        moves = [(2, 500.0), (5, 15.0), (1, 75.0)]
        batched.move_many(moves)
        for jid, end in moves:
            sequential.move(jid, end)
        assert batched.releases(0.0) == sequential.releases(0.0)
        assert batched._entries == sequential._entries

    def test_single_move_delegates(self):
        table = self.build()
        table.move_many([(3, 7.0)])
        assert table.releases(0.0)[0] == (7.0, 3)

    def test_empty_is_noop(self):
        table = self.build()
        before = table.releases(0.0)
        table.move_many([])
        assert table.releases(0.0) == before

    def test_dict_input_and_last_duplicate_wins(self):
        table = self.build()
        table.move_many([(2, 100.0), (2, 300.0)])
        assert (300.0, 2) in table.releases(0.0)

    def test_unknown_job_rejected(self):
        table = self.build()
        with pytest.raises(KeyError):
            table.move_many([(99, 5.0), (1, 5.0)])

    @settings(max_examples=50, deadline=None)
    @given(
        moves=st.lists(
            st.tuples(st.integers(1, 8), st.floats(0.0, 1e6)),
            min_size=2,
            max_size=8,
        )
    )
    def test_property_matches_sequential(self, moves):
        batched = self.build(8)
        sequential = self.build(8)
        batched.move_many(moves)
        for jid, end in dict(moves).items():
            sequential.move(jid, end)
        assert batched._entries == sequential._entries


class TestApplyDeltas:
    def build_profile(self):
        profile = AvailabilityProfile(64, now=0.0, free=20)
        profile.add_release(30.0, 10)
        profile.add_release(100.0, 14)
        profile.add_release(250.0, 20)
        return profile

    def test_equivalent_to_sequential(self):
        deltas = [(30.0, 90.0, -4), (50.0, 260.0, -6), (100.0, 120.0, -2)]
        batched = self.build_profile()
        sequential = self.build_profile()
        batched._apply_deltas(deltas)
        for start, end, delta in deltas:
            sequential._apply_delta(start, end, delta)
        assert batched.steps() == sequential.steps()

    def test_overlapping_and_touching_intervals(self):
        deltas = [(0.0, 30.0, -5), (30.0, 60.0, -5), (30.0, 45.0, -3)]
        batched = self.build_profile()
        sequential = self.build_profile()
        batched._apply_deltas(deltas)
        for start, end, delta in deltas:
            sequential._apply_delta(start, end, delta)
        assert batched.steps() == sequential.steps()

    def test_out_of_range_rejected(self):
        profile = self.build_profile()
        with pytest.raises(ValueError):
            profile._apply_deltas([(0.0, 10.0, -10), (0.0, 10.0, -15)])

    def test_before_start_rejected(self):
        profile = AvailabilityProfile(8, now=100.0)
        with pytest.raises(ValueError):
            profile._apply_deltas([(0.0, 10.0, -1), (110.0, 120.0, -1)])

    @settings(max_examples=60, deadline=None)
    @given(
        deltas=st.lists(
            st.tuples(
                st.floats(0.0, 400.0),
                st.floats(0.5, 200.0),
                st.integers(1, 4),
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_property_matches_sequential(self, deltas):
        """Random *negative* deltas (reservations), skipping any batch a
        sequential application would reject."""
        triples = [(start, start + length, -width) for start, length, width in deltas]
        sequential = self.build_profile()
        try:
            for start, end, delta in triples:
                sequential._apply_delta(start, end, delta)
        except ValueError:
            return  # infeasible batch: nothing to compare
        batched = self.build_profile()
        batched._apply_deltas(triples)
        assert batched.steps() == sequential.steps()


class TestJobsCorrected:
    def build(self):
        profile = IncrementalProfile(32, now=0.0)
        profile.job_started(1, 0.0, 50.0, 8)
        profile.job_started(2, 0.0, 50.0, 8)
        profile.job_started(3, 0.0, 80.0, 4)
        return profile

    def test_equivalent_to_sequential(self):
        batched = self.build()
        sequential = self.build()
        moves = [(1, 120.0), (2, 90.0)]
        batched.jobs_corrected(moves)
        for jid, end in moves:
            sequential.job_corrected(jid, end)
        assert batched.steps() == sequential.steps()

    def test_backwards_move_rejected(self):
        profile = self.build()
        with pytest.raises(ValueError):
            profile.jobs_corrected([(1, 120.0), (3, 10.0)])

    def test_failed_batch_leaves_state_untouched(self):
        """A rejected batch must not leave _jobs half-updated against an
        unchanged step function (count-based sync checks can't catch it)."""
        profile = self.build()
        reference = self.build()
        with pytest.raises(ValueError):
            profile.jobs_corrected([(1, 120.0), (3, 10.0)])  # 3 goes backwards
        with pytest.raises(KeyError):
            profile.jobs_corrected([(2, 200.0), (99, 300.0)])  # 99 untracked
        assert profile.steps() == reference.steps()
        assert profile._jobs == reference._jobs
        # and the state is still fully usable afterwards
        profile.jobs_corrected([(1, 120.0), (2, 90.0)])
        reference.jobs_corrected([(1, 120.0), (2, 90.0)])
        assert profile.steps() == reference.steps()

    def test_noop_move_skipped(self):
        profile = self.build()
        before = profile.steps()
        profile.jobs_corrected([(1, 50.0)])
        assert profile.steps() == before


def storm_trace(processors=64, waves=4, wave_jobs=48, users_per_wave=8, seed=3):
    """Warmed users + same-instant submission waves: AVE2 predictions
    clamp to min_prediction, so whole waves expire in lockstep --
    guaranteed same-timestamp EXPIRE storms."""
    rng = np.random.default_rng(seed)
    jobs, jid = [], 0
    for user in range(waves * users_per_wave):
        for k in range(2):
            jid += 1
            jobs.append(
                Job(job_id=jid, submit_time=float(user + 70 * k), runtime=30.0,
                    processors=1, requested_time=3600.0, user=user)
            )
    t = 2000.0
    for wave in range(waves):
        for _ in range(wave_jobs):
            jid += 1
            runtime = float(rng.uniform(1800.0, 5400.0))
            jobs.append(
                Job(job_id=jid, submit_time=t, runtime=runtime, processors=1,
                    requested_time=2.0 * runtime,
                    user=wave * users_per_wave + int(rng.integers(users_per_wave)))
            )
        t += 7200.0
    return Trace(jobs, processors=processors, name="storm")


def schedule_of(result):
    return sorted((r.job_id, r.start_time, r.end_time, r.corrections) for r in result)


class TestEngineStormBatching:
    @pytest.mark.parametrize("scheduler", ["easy", "easy-sjbf", "conservative"])
    def test_storms_occur_and_match_legacy(self, scheduler):
        """The trace provokes real multi-correction timestamps AND the
        batched incremental path still matches the per-pass-rescan seed
        oracle job for job."""
        trace = storm_trace()
        sched = make_scheduler(scheduler)
        storms = []
        original = sched.on_corrections

        def spy(records):
            storms.append(len(records))
            return original(records)

        sched.on_corrections = spy
        new = Simulator(
            trace, sched, RecentAveragePredictor(2), IncrementalCorrector()
        ).run()
        assert max(storms) > 1, "trace failed to provoke a storm"
        old = Simulator(
            trace,
            make_scheduler(f"legacy-{scheduler}"),
            RecentAveragePredictor(2),
            IncrementalCorrector(),
        ).run()
        assert schedule_of(new) == schedule_of(old)

    @pytest.mark.parametrize("scheduler", ["easy-sjbf", "conservative"])
    def test_batched_matches_perjob_fanout(self, scheduler):
        """Forcing the base-class per-record fan-out must not change the
        schedule either -- batching is pure mechanics."""
        trace = storm_trace(waves=3)
        batched = Simulator(
            trace, make_scheduler(scheduler),
            RecentAveragePredictor(2), IncrementalCorrector(),
        ).run()
        sched = make_scheduler(scheduler)
        sched.on_corrections = (
            lambda records, s=sched: Scheduler.on_corrections(s, records)
        )
        perjob = Simulator(
            trace, sched, RecentAveragePredictor(2), IncrementalCorrector()
        ).run()
        assert schedule_of(batched) == schedule_of(perjob)
