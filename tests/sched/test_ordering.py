"""Unit tests for backfill orderings and the scheduler registry."""

import pytest

from repro.sched import (
    BACKFILL_ORDERS,
    ConservativeScheduler,
    EasyScheduler,
    FcfsScheduler,
    make_scheduler,
    order_queue,
)

from tests.helpers import make_record


class TestOrderings:
    def make_queue(self):
        return [
            make_record(job_id=1, submit_time=0.0, processors=8, predicted_runtime=100.0),
            make_record(job_id=2, submit_time=1.0, processors=1, predicted_runtime=300.0),
            make_record(job_id=3, submit_time=2.0, processors=4, predicted_runtime=50.0),
        ]

    def test_fcfs_order(self):
        assert [r.job_id for r in order_queue(self.make_queue(), "fcfs")] == [1, 2, 3]

    def test_sjbf_order(self):
        assert [r.job_id for r in order_queue(self.make_queue(), "sjbf")] == [3, 1, 2]

    def test_saf_order(self):
        # areas: 800, 300, 200
        assert [r.job_id for r in order_queue(self.make_queue(), "saf")] == [3, 2, 1]

    def test_narrow_order(self):
        assert [r.job_id for r in order_queue(self.make_queue(), "narrow")] == [2, 3, 1]

    def test_sjbf_ties_broken_fcfs(self):
        queue = [
            make_record(job_id=2, submit_time=5.0, predicted_runtime=100.0),
            make_record(job_id=1, submit_time=0.0, predicted_runtime=100.0),
        ]
        assert [r.job_id for r in order_queue(queue, "sjbf")] == [1, 2]

    def test_order_queue_copies(self):
        queue = self.make_queue()
        ordered = order_queue(queue, "sjbf")
        assert ordered is not queue
        assert [r.job_id for r in queue] == [1, 2, 3]

    def test_unknown_order_rejected(self):
        with pytest.raises(KeyError):
            order_queue([], "bogus")

    def test_registry_names(self):
        assert set(BACKFILL_ORDERS) == {"fcfs", "sjbf", "saf", "narrow"}


class TestSchedulerRegistry:
    @pytest.mark.parametrize(
        "name,cls,attr",
        [
            ("fcfs", FcfsScheduler, None),
            ("easy", EasyScheduler, "fcfs"),
            ("easy-sjbf", EasyScheduler, "sjbf"),
            ("easy-saf", EasyScheduler, "saf"),
            ("easy-narrow", EasyScheduler, "narrow"),
            ("conservative", ConservativeScheduler, "fcfs"),
            ("conservative-sjbf", ConservativeScheduler, "sjbf"),
        ],
    )
    def test_make_scheduler(self, name, cls, attr):
        sched = make_scheduler(name)
        assert isinstance(sched, cls)
        if attr and isinstance(sched, EasyScheduler):
            assert sched.backfill_order == attr
        if attr and isinstance(sched, ConservativeScheduler):
            assert sched.reservation_order == attr

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("bogus")

    def test_fresh_instances(self):
        a = make_scheduler("easy")
        b = make_scheduler("easy")
        assert a is not b
        a.on_submit(make_record())
        assert b.queue_length == 0
