"""Unit tests for the multifactor priority scheduler (extension)."""

import pytest

from repro.predict import RequestedTimePredictor
from repro.sched import EasyScheduler, MultifactorScheduler, PriorityWeights
from repro.sim import simulate
from repro.sim.machine import Machine

from tests.helpers import make_record


class TestPriorityWeights:
    def test_defaults_are_age_only(self):
        weights = PriorityWeights()
        assert weights.age == 1.0
        assert weights.size == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PriorityWeights(age=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            PriorityWeights(age=0.0, size=0.0, short=0.0)


class TestMultifactorScheduler:
    def test_age_only_behaves_like_fcfs(self, kth_trace):
        """With pure age priority, the queue order is arrival order, so
        the schedule must match classic EASY exactly."""
        easy = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        multi = simulate(
            kth_trace,
            MultifactorScheduler(PriorityWeights(age=1.0)),
            RequestedTimePredictor(),
        )
        assert easy.avebsld() == pytest.approx(multi.avebsld())

    def test_size_priority_prefers_narrow_head(self):
        machine = Machine(8)
        sched = MultifactorScheduler(PriorityWeights(age=0.0, size=1.0))
        # a running job leaves 2 processors free
        running = make_record(job_id=0, processors=6, predicted_runtime=1000.0)
        machine.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, submit_time=0.0, processors=8,
                                    predicted_runtime=100.0))
        sched.on_submit(make_record(job_id=2, submit_time=1.0, processors=2,
                                    predicted_runtime=100.0))
        started = sched.select_jobs(2.0, machine)
        # the narrow job outranks the wide one and starts immediately
        assert [r.job_id for r in started] == [2]

    def test_short_priority_prefers_short_predicted_head(self):
        machine = Machine(8)
        sched = MultifactorScheduler(PriorityWeights(age=0.0, short=1.0))
        running = make_record(job_id=0, processors=6, predicted_runtime=1000.0)
        machine.start(running, now=0.0)
        sched.on_submit(make_record(job_id=1, submit_time=0.0, processors=2,
                                    predicted_runtime=5000.0))
        sched.on_submit(make_record(job_id=2, submit_time=1.0, processors=2,
                                    predicted_runtime=50.0))
        started = sched.select_jobs(2.0, machine)
        assert started and started[0].job_id == 2

    def test_runs_full_trace(self, kth_trace):
        result = simulate(
            kth_trace,
            MultifactorScheduler(PriorityWeights(age=1.0, size=0.5, short=0.5),
                                 backfill_order="sjbf"),
            RequestedTimePredictor(),
        )
        assert len(result) == len(kth_trace)
        assert (result.wait_times >= 0).all()

    def test_registry(self):
        from repro.sched import make_scheduler

        sched = make_scheduler("multifactor-sjbf")
        assert isinstance(sched, MultifactorScheduler)
        assert sched.backfill_order == "sjbf"
