"""Schedule-equivalence: profile-based hot path vs the seed rescan.

The PR that introduced the incremental availability structures promises
*identical* schedules -- the same start time for every job -- not merely
similar metrics.  These property-style tests pin that promise on random
synthetic traces across schedulers, predictors and correction load.
"""

import pytest

from repro.correct import IncrementalCorrector
from repro.predict import (
    ClairvoyantPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
)
from repro.sched import make_scheduler
from repro.sim import Simulator
from repro.workload import get_trace

PAIRS = [
    ("easy", "legacy-easy"),
    ("easy-sjbf", "legacy-easy-sjbf"),
    ("conservative", "legacy-conservative"),
    ("conservative-sjbf", "legacy-conservative-sjbf"),
]


def schedule_of(result):
    """The full per-job schedule, as comparable tuples."""
    return sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections) for r in result
    )


def run_pair(trace, modern, legacy, predictor_factory, corrector_factory):
    new = Simulator(
        trace, make_scheduler(modern), predictor_factory(),
        corrector_factory() if corrector_factory else None,
    ).run()
    old = Simulator(
        trace, make_scheduler(legacy), predictor_factory(),
        corrector_factory() if corrector_factory else None,
    ).run()
    return new, old


@pytest.mark.parametrize("modern,legacy", PAIRS)
@pytest.mark.parametrize("seed", [11, 42])
def test_requested_time_schedules_identical(modern, legacy, seed):
    """No corrections: the pure reservation/backfill logic must agree."""
    trace = get_trace("KTH-SP2", n_jobs=300, seed=seed)
    new, old = run_pair(trace, modern, legacy, RequestedTimePredictor, None)
    assert schedule_of(new) == schedule_of(old)


@pytest.mark.parametrize("modern,legacy", PAIRS)
def test_correction_heavy_schedules_identical(modern, legacy):
    """AVE2 under-predicts constantly: every EXPIRE exercises the
    incremental correction delta against the seed's full rescan."""
    trace = get_trace("CTC-SP2", n_jobs=300, seed=7)
    new, old = run_pair(
        trace, modern, legacy,
        lambda: RecentAveragePredictor(2), IncrementalCorrector,
    )
    assert new.total_corrections() > 0
    assert schedule_of(new) == schedule_of(old)


@pytest.mark.parametrize("modern,legacy", PAIRS[:2])
def test_clairvoyant_schedules_identical(modern, legacy):
    """Exact predictions: finishes land exactly on predicted ends, the
    trickiest tie-handling for the release table."""
    trace = get_trace("KTH-SP2", n_jobs=300, seed=3)
    new, old = run_pair(trace, modern, legacy, ClairvoyantPredictor, None)
    assert schedule_of(new) == schedule_of(old)


@pytest.mark.parametrize("modern,legacy", PAIRS)
def test_engine_stats_match(modern, legacy):
    """Same schedules imply the same pass/correction counters."""
    trace = get_trace("KTH-SP2", n_jobs=200, seed=5)
    new_sim = Simulator(
        trace, make_scheduler(modern),
        RecentAveragePredictor(2), IncrementalCorrector(),
    )
    old_sim = Simulator(
        trace, make_scheduler(legacy),
        RecentAveragePredictor(2), IncrementalCorrector(),
    )
    new, old = new_sim.run(), old_sim.run()
    assert schedule_of(new) == schedule_of(old)
    assert new_sim.stats.n_corrections == old_sim.stats.n_corrections
    assert new_sim.stats.max_queue_length == old_sim.stats.max_queue_length
