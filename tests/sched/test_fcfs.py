"""Unit tests for the pure FCFS scheduler."""

from repro.predict import ClairvoyantPredictor, RequestedTimePredictor
from repro.sched import EasyScheduler, FcfsScheduler
from repro.sim import simulate
from repro.sim.machine import Machine

from tests.helpers import make_record


class TestFcfs:
    def test_starts_in_order(self):
        m = Machine(8)
        sched = FcfsScheduler()
        for i in (1, 2, 3):
            sched.on_submit(make_record(job_id=i, processors=2, predicted_runtime=10.0))
        started = sched.select_jobs(0.0, m)
        assert [r.job_id for r in started] == [1, 2, 3]

    def test_head_blocks_tail(self):
        m = Machine(8)
        sched = FcfsScheduler()
        sched.on_submit(make_record(job_id=1, processors=8, predicted_runtime=10.0))
        sched.on_submit(make_record(job_id=2, processors=1, predicted_runtime=10.0))
        m_started = sched.select_jobs(0.0, m)
        for rec in m_started:
            m.start(rec, 0.0)
        assert [r.job_id for r in m_started] == [1]
        # the 1-wide job must NOT start although a processor... no, none free
        assert sched.select_jobs(0.0, m) == []

    def test_fcfs_never_beats_easy_by_much(self, kth_trace):
        """Backfilling dominates: EASY's AVEbsld is far below pure FCFS on a
        congested trace (this is the gap the paper's Table 6 builds on)."""
        fcfs = simulate(kth_trace, FcfsScheduler(), RequestedTimePredictor())
        easy = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        assert easy.avebsld() < fcfs.avebsld()

    def test_start_order_respects_priority_on_trace(self, tiny_trace):
        result = simulate(tiny_trace, FcfsScheduler(), ClairvoyantPredictor())
        starts = {r.job_id: r.start_time for r in result}
        assert starts[1] <= starts[2] <= starts[3]
