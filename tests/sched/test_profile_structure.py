"""Unit + property tests for the incremental scheduling structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.easy import compute_shadow
from repro.sched.legacy import _SeedProfile
from repro.sched.profile_structure import IncrementalProfile, ReleaseTable
from repro.sim.machine import Machine
from repro.sim.profile import AvailabilityProfile

from tests.helpers import make_record


class TestReleaseTable:
    def test_add_discard_move(self):
        table = ReleaseTable()
        table.add(1, 100.0, 4)
        table.add(2, 50.0, 2)
        assert len(table) == 2
        assert table.releases(0.0) == [(50.0, 2), (100.0, 4)]
        table.move(2, 200.0)
        assert table.releases(0.0) == [(100.0, 4), (200.0, 2)]
        table.discard(1)
        assert table.releases(0.0) == [(200.0, 2)]
        table.discard(1)  # idempotent
        assert len(table) == 1

    def test_duplicate_add_rejected(self):
        table = ReleaseTable()
        table.add(1, 10.0, 1)
        with pytest.raises(ValueError):
            table.add(1, 20.0, 1)

    def test_releases_clamped_to_now(self):
        table = ReleaseTable()
        table.add(1, 10.0, 3)
        table.add(2, 90.0, 1)
        assert table.releases(50.0) == [(50.0, 3), (90.0, 1)]

    def test_matches_machine_predicted_releases(self):
        machine = Machine(16)
        table = ReleaseTable()
        for jid, procs, pred in [(1, 4, 120.0), (2, 2, 30.0), (3, 8, 30.0)]:
            rec = make_record(job_id=jid, processors=procs, predicted_runtime=pred)
            machine.start(rec, now=0.0)
            table.add(jid, pred, procs)
        assert table.releases(0.0) == machine.predicted_releases(0.0)

    def test_resync_from_machine(self):
        machine = Machine(16)
        for jid, procs, pred in [(1, 4, 120.0), (2, 2, 30.0)]:
            machine.start(
                make_record(job_id=jid, processors=procs, predicted_runtime=pred), 0.0
            )
        table = ReleaseTable()
        assert not table.in_sync_with(machine)
        table.resync(machine)
        assert table.in_sync_with(machine)
        assert table.releases(0.0) == machine.predicted_releases(0.0)

    @settings(max_examples=150)
    @given(
        head_q=st.integers(min_value=1, max_value=24),
        free=st.integers(min_value=0, max_value=8),
        releases=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1000.0),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=8,
        ),
        pending=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1000.0),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=4,
        ),
    )
    def test_shadow_matches_compute_shadow(self, head_q, free, releases, pending):
        """Property: the lazy merged shadow scan equals the seed's
        sort-everything compute_shadow on the combined release list."""
        total = free + sum(q for _, q in releases) + sum(q for _, q in pending)
        if head_q > total:
            return  # head can never start; covered by the unit tests
        table = ReleaseTable()
        for idx, (end, procs) in enumerate(releases):
            table.add(idx, end, procs)
        merged = sorted(releases + pending)
        expected = compute_shadow(head_q, free, merged, now=0.0)
        got = table.shadow(head_q, free, 0.0, pending)
        assert got == expected

    def test_shadow_never_startable_raises(self):
        table = ReleaseTable()
        table.add(1, 5.0, 3)
        with pytest.raises(ValueError):
            table.shadow(10, 2, 0.0)


def apply_random_ops(profile, machine, rng, n_ops=40):
    """Drive an IncrementalProfile + Machine through random start/finish/
    correction deltas; returns the current simulation time."""
    now = 0.0
    next_id = 1
    active: list[tuple[int, float]] = []  # (job_id, predicted_end)
    for _ in range(n_ops):
        now += float(rng.uniform(0.0, 20.0))
        choice = rng.integers(0, 3)
        if choice == 0 or not active:
            procs = int(rng.integers(1, 5))
            if machine.free >= procs:
                pred = float(rng.uniform(1.0, 200.0))
                rec = make_record(
                    job_id=next_id, processors=procs, predicted_runtime=pred,
                    runtime=pred, requested_time=10 * pred,
                )
                machine.start(rec, now)
                profile.job_started(next_id, now, pred, procs)
                active.append((next_id, now + pred))
                next_id += 1
        elif choice == 1:
            job_id, _end = active.pop(int(rng.integers(0, len(active))))
            machine.finish(job_id, now)
            profile.job_finished(job_id, now)
        else:
            idx = int(rng.integers(0, len(active)))
            job_id, end = active[idx]
            new_end = max(end, now) + float(rng.uniform(1.0, 100.0))
            run = machine.get_running(job_id)
            run.record.predicted_runtime = new_end - run.start_time
            profile.job_corrected(job_id, new_end)
            active[idx] = (job_id, new_end)
    return now


class TestIncrementalProfile:
    def test_matches_from_releases_oracle(self, rng):
        """Property: after any delta sequence the incremental profile is
        the same step function the seed rebuilt from machine state."""
        machine = Machine(12)
        profile = IncrementalProfile(12, 0.0)
        now = apply_random_ops(profile, machine, rng)
        profile.trim(now)
        oracle = AvailabilityProfile.from_releases(
            12, now, machine.free, machine.predicted_releases(now)
        )
        assert profile.steps() == oracle.steps()

    def test_snapshot_is_independent_copy(self):
        profile = IncrementalProfile(8, 0.0)
        profile.job_started(1, 0.0, 100.0, 4)
        snap = profile.snapshot(0.0)
        snap.reserve(0.0, 50.0, 2)
        assert profile.available_at(10.0) == 4  # base untouched
        assert snap.available_at(10.0) == 2

    def test_finish_returns_claim_early(self):
        profile = IncrementalProfile(8, 0.0)
        profile.job_started(1, 0.0, 100.0, 6)
        assert profile.available_at(50.0) == 2
        profile.job_finished(1, 40.0)
        assert profile.available_at(50.0) == 8

    def test_correction_extends_claim(self):
        profile = IncrementalProfile(8, 0.0)
        profile.job_started(1, 0.0, 100.0, 6)
        profile.job_corrected(1, 250.0)
        assert profile.available_at(150.0) == 2
        assert profile.available_at(250.0) == 8

    def test_backward_correction_rejected(self):
        profile = IncrementalProfile(8, 0.0)
        profile.job_started(1, 0.0, 100.0, 6)
        with pytest.raises(ValueError):
            profile.job_corrected(1, 50.0)

    def test_trim_drops_stale_segments(self):
        profile = IncrementalProfile(8, 0.0)
        profile.job_started(1, 0.0, 10.0, 2)
        profile.job_started(2, 0.0, 20.0, 2)
        profile.job_finished(1, 10.0)
        profile.job_finished(2, 20.0)
        profile.trim(30.0)
        assert profile.steps() == [(30.0, 8)]


class TestEarliestFitSweep:
    @settings(max_examples=200)
    @given(
        free=st.integers(min_value=0, max_value=10),
        releases=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=500.0),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=8,
        ),
        reservations=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=400.0),   # not_before
                st.floats(min_value=1.0, max_value=300.0),   # duration
                st.integers(min_value=1, max_value=6),       # processors
            ),
            max_size=6,
        ),
    )
    def test_sweep_equals_seed_anchor_probe(self, free, releases, reservations):
        """Property: the O(S) sweep and the seed's O(S^2) anchor probing
        agree on every fit query, including after interleaved reserves."""
        # a fit only exists for widths the eventual availability reaches;
        # the schedulers guarantee this by construction (trace validation)
        eventual = free + sum(q for _, q in releases)
        m = max(eventual, 1)
        fast = AvailabilityProfile.from_releases(m, 0.0, free, sorted(releases))
        seed = _SeedProfile.from_releases(m, 0.0, free, sorted(releases))
        for not_before, duration, procs in reservations:
            if procs > eventual:
                continue
            expected = seed.earliest_fit(procs, duration, not_before=not_before)
            got = fast.earliest_fit(procs, duration, not_before=not_before)
            assert got == expected
            seed.reserve(expected, duration, procs)
            fast.reserve(expected, duration, procs)
            assert fast.steps() == seed.steps()
