"""Test package."""
