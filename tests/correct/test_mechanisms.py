"""Unit tests for the correction mechanisms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.correct import (
    INCREMENTS,
    IncrementalCorrector,
    RecursiveDoublingCorrector,
    RequestedTimeCorrector,
    make_corrector,
)

from tests.helpers import make_record


def expired_record(predicted=600.0, requested=36000.0, corrections=0):
    """A record whose prediction just expired at now = start + predicted."""
    rec = make_record(runtime=10000.0, requested_time=requested,
                      predicted_runtime=predicted)
    rec.start_time = 0.0
    rec.corrections = corrections
    return rec


class TestRequestedTime:
    def test_jumps_to_requested(self):
        rec = expired_record()
        assert RequestedTimeCorrector().correct(rec, now=600.0) == 36000.0


class TestIncremental:
    def test_ladder_matches_paper(self):
        """1min, 5min, 15min, 30min, 1h, 2h, 5h, 10h, 20h, 50h, 100h."""
        minutes = [1, 5, 15, 30, 60, 120, 300, 600, 1200, 3000, 6000]
        assert INCREMENTS == tuple(m * 60.0 for m in minutes)

    def test_first_correction_adds_one_minute(self):
        rec = expired_record(predicted=600.0)
        value = IncrementalCorrector().correct(rec, now=600.0)
        assert value == 600.0 + 60.0

    def test_successive_corrections_grow(self):
        corr = IncrementalCorrector()
        rec = expired_record(predicted=600.0)
        previous = rec.predicted_runtime
        for k in range(len(INCREMENTS) + 3):
            rec.corrections = k
            now = rec.start_time + rec.predicted_runtime
            new = corr.correct(rec, now)
            assert new > previous
            rec.predicted_runtime = new
            previous = new

    def test_saturates_at_last_increment(self):
        rec = expired_record(predicted=600.0, corrections=99)
        value = IncrementalCorrector().correct(rec, now=600.0)
        assert value == 600.0 + INCREMENTS[-1]


class TestRecursiveDoubling:
    def test_doubles_elapsed(self):
        rec = expired_record(predicted=600.0)
        assert RecursiveDoublingCorrector().correct(rec, now=600.0) == 1200.0

    def test_doubles_current_prediction_when_larger(self):
        rec = expired_record(predicted=600.0)
        # fire late (engine lag): elapsed 700 > predicted
        assert RecursiveDoublingCorrector().correct(rec, now=700.0) == 1400.0


class TestRegistry:
    def test_names(self):
        assert isinstance(make_corrector("requested"), RequestedTimeCorrector)
        assert isinstance(make_corrector("incremental"), IncrementalCorrector)
        assert isinstance(make_corrector("doubling"), RecursiveDoublingCorrector)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_corrector("bogus")


@given(
    corrector_name=st.sampled_from(["requested", "incremental", "doubling"]),
    predicted=st.floats(min_value=60.0, max_value=5000.0),
    corrections=st.integers(min_value=0, max_value=15),
)
def test_corrections_always_progress(corrector_name, predicted, corrections):
    """Property: every mechanism returns strictly more than the elapsed
    time, so the engine's expiry loop terminates."""
    rec = expired_record(predicted=predicted, corrections=corrections)
    now = rec.start_time + rec.predicted_runtime
    value = make_corrector(corrector_name).correct(rec, now)
    assert value > now - rec.start_time
