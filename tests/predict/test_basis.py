"""Unit tests for the degree-2 polynomial basis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predict.basis import PolynomialBasis


class TestExpansion:
    def test_dimension_formula(self):
        # the paper: w in R^{1 + 2n + C(n,2)}
        for n in (1, 2, 5, 20):
            basis = PolynomialBasis(n)
            assert basis.dim == 1 + 2 * n + n * (n - 1) // 2

    def test_small_example(self):
        basis = PolynomialBasis(2)
        phi = basis.expand(np.array([2.0, 3.0]))
        assert phi.tolist() == [1.0, 2.0, 3.0, 4.0, 9.0, 6.0]

    def test_constant_term_first(self):
        basis = PolynomialBasis(4)
        phi = basis.expand(np.zeros(4))
        assert phi[0] == 1.0
        assert np.all(phi[1:] == 0.0)

    def test_wrong_shape_rejected(self):
        basis = PolynomialBasis(3)
        with pytest.raises(ValueError):
            basis.expand(np.ones(4))

    def test_nonfinite_rejected(self):
        basis = PolynomialBasis(2)
        with pytest.raises(ValueError):
            basis.expand(np.array([1.0, np.nan]))

    def test_term_names(self):
        basis = PolynomialBasis(2)
        names = basis.term_names(("a", "b"))
        assert names == ["1", "a", "b", "a^2", "b^2", "a*b"]

    def test_term_names_length_matches_dim(self):
        basis = PolynomialBasis(7)
        assert len(basis.term_names()) == basis.dim

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            PolynomialBasis(0)


@given(
    x=st.lists(
        st.floats(min_value=-100.0, max_value=100.0), min_size=3, max_size=3
    )
)
def test_expansion_contains_all_products(x):
    """Property: every pairwise product x_i x_j appears exactly once."""
    basis = PolynomialBasis(3)
    phi = basis.expand(np.array(x))
    expected = [
        1.0,
        x[0], x[1], x[2],
        x[0] ** 2, x[1] ** 2, x[2] ** 2,
        x[0] * x[1], x[0] * x[2], x[1] * x[2],
    ]
    assert np.allclose(phi, expected)
