"""Unit + property tests for the asymmetric loss family."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predict.loss import (
    E_LOSS,
    SQUARED_LOSS,
    LossSpec,
    all_loss_specs,
    weight_factor,
)


class TestWeights:
    def test_constant(self):
        assert weight_factor("constant", 1000.0, 16.0) == 1.0

    def test_short_wide(self):
        assert weight_factor("short-wide", 100.0, 100.0) == pytest.approx(5.0)

    def test_long_narrow(self):
        assert weight_factor("long-narrow", 100.0, 100.0) == pytest.approx(5.0)

    def test_small_area(self):
        # 11 + log(1/(q p)) with q p = e^11 -> exactly the floor of the log
        qp = math.exp(11.0)
        assert weight_factor("small-area", qp, 1.0) == pytest.approx(0.01, abs=1e-9)

    def test_large_area(self):
        assert weight_factor("large-area", math.e, 1.0) == pytest.approx(1.0)

    def test_floor_guards_positivity(self):
        # tiny jobs would give a negative log weight; the floor applies
        assert weight_factor("large-area", 1.0, 1.0) == pytest.approx(0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            weight_factor("constant", 0.0, 4.0)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            weight_factor("bogus", 1.0, 1.0)


class TestLossSpec:
    def test_twenty_specs(self):
        specs = list(all_loss_specs())
        assert len(specs) == 20
        assert len({s.key for s in specs}) == 20

    def test_eloss_is_eq3(self):
        """Eq. (3): squared branch when f >= p, linear when f < p,
        large-area weighting."""
        assert E_LOSS.over == "squared"
        assert E_LOSS.under == "linear"
        assert E_LOSS.weight == "large-area"
        assert E_LOSS in list(all_loss_specs())

    def test_eloss_values(self):
        p, q = 1000.0, 16.0
        gamma = math.log(p * q)
        assert E_LOSS.value(1100.0, p, q) == pytest.approx(gamma * 100.0**2)
        assert E_LOSS.value(900.0, p, q) == pytest.approx(gamma * 100.0)

    def test_squared_loss_symmetric(self):
        assert SQUARED_LOSS.value(1100.0, 1000.0, 4.0) == pytest.approx(
            SQUARED_LOSS.value(900.0, 1000.0, 4.0)
        )

    def test_gradient_signs(self):
        p, q = 1000.0, 4.0
        assert E_LOSS.gradient(1100.0, p, q) > 0  # over-predicting: push down
        assert E_LOSS.gradient(900.0, p, q) < 0  # under-predicting: push up

    def test_invalid_branch_rejected(self):
        with pytest.raises(KeyError):
            LossSpec(over="cubic", under="linear", weight="constant")

    def test_invalid_weight_rejected(self):
        with pytest.raises(KeyError):
            LossSpec(over="squared", under="linear", weight="bogus")

    def test_key_round_trip(self):
        assert E_LOSS.key == "sq-lin-large-area"


@given(
    spec=st.sampled_from(list(all_loss_specs())),
    f=st.floats(min_value=0.0, max_value=1e6),
    p=st.floats(min_value=10.0, max_value=1e6),
    q=st.floats(min_value=1.0, max_value=10_000.0),
)
def test_loss_nonnegative_zero_at_truth_convex_sides(spec, f, p, q):
    """Properties from the paper: the loss is non-negative, exactly zero at
    a perfect prediction, and increases away from the truth on each side."""
    value = spec.value(f, p, q)
    assert value >= 0.0
    assert spec.value(p, p, q) == 0.0
    further = spec.value(f + (100.0 if f >= p else -min(100.0, f)), p, q)
    assert further >= value - 1e-9
