"""Unit tests for the Table 2 feature extractor."""


import numpy as np
import pytest

from repro.predict.base import UserHistoryTracker
from repro.predict.features import FEATURE_NAMES, N_FEATURES, extract_features

from tests.helpers import make_job

DAY = 86400.0


def idx(name: str) -> int:
    return FEATURE_NAMES.index(name)


class TestFeatureLayout:
    def test_twenty_features(self):
        assert N_FEATURES == 20
        assert len(FEATURE_NAMES) == 20

    def test_vector_shape(self):
        tracker = UserHistoryTracker()
        x = extract_features(make_job(), tracker, now=0.0)
        assert x.shape == (N_FEATURES,)
        assert np.all(np.isfinite(x))


class TestColdStart:
    def test_no_history_zeros(self):
        tracker = UserHistoryTracker()
        job = make_job(requested_time=600.0, processors=4)
        x = extract_features(job, tracker, now=100.0)
        assert x[idx("requested_time")] == 600.0
        assert x[idx("processors")] == 4.0
        assert x[idx("last_runtime_1")] == 0.0
        assert x[idx("ave2_runtime")] == 0.0
        assert x[idx("aveall_runtime")] == 0.0
        assert x[idx("n_running")] == 0.0
        assert x[idx("break_time")] == 0.0
        # ratio defaults to 1 when the user has no request history
        assert x[idx("processors_over_avehist")] == 1.0


class TestHistoryFeatures:
    def make_history(self):
        tracker = UserHistoryTracker()
        for i, runtime in enumerate((100.0, 200.0, 400.0), start=1):
            job = make_job(job_id=i, runtime=runtime, processors=2)
            tracker.on_submit(job, now=float(i))
            tracker.on_start(job, now=float(i))
            tracker.on_finish(job, now=float(i) + runtime)
        return tracker

    def test_last_runtimes_most_recent_first(self):
        tracker = self.make_history()
        x = extract_features(make_job(job_id=9), tracker, now=1000.0)
        assert x[idx("last_runtime_1")] == 400.0
        assert x[idx("last_runtime_2")] == 200.0
        assert x[idx("last_runtime_3")] == 100.0

    def test_averages(self):
        tracker = self.make_history()
        x = extract_features(make_job(job_id=9), tracker, now=1000.0)
        assert x[idx("ave2_runtime")] == pytest.approx(300.0)
        assert x[idx("ave3_runtime")] == pytest.approx(700.0 / 3)
        assert x[idx("aveall_runtime")] == pytest.approx(700.0 / 3)

    def test_request_history(self):
        tracker = self.make_history()
        x = extract_features(make_job(job_id=9, processors=4), tracker, now=1000.0)
        assert x[idx("ave_hist_processors")] == pytest.approx(2.0)
        assert x[idx("processors_over_avehist")] == pytest.approx(2.0)

    def test_break_time(self):
        tracker = self.make_history()
        # last completion at 3 + 400 = 403
        x = extract_features(make_job(job_id=9), tracker, now=1000.0)
        assert x[idx("break_time")] == pytest.approx(1000.0 - 403.0)


class TestRunningJobFeatures:
    def test_current_running_aggregates(self):
        tracker = UserHistoryTracker()
        a = make_job(job_id=1, processors=4, runtime=500.0)
        b = make_job(job_id=2, processors=2, runtime=500.0)
        tracker.on_submit(a, 0.0)
        tracker.on_start(a, 0.0)
        tracker.on_submit(b, 50.0)
        tracker.on_start(b, 50.0)
        x = extract_features(make_job(job_id=3), tracker, now=100.0)
        assert x[idx("n_running")] == 2.0
        assert x[idx("longest_running")] == pytest.approx(100.0)
        assert x[idx("sum_running")] == pytest.approx(100.0 + 50.0)
        assert x[idx("occupied_resources")] == 6.0
        assert x[idx("ave_running_processors")] == pytest.approx(3.0)

    def test_finish_clears_running(self):
        tracker = UserHistoryTracker()
        a = make_job(job_id=1, processors=4)
        tracker.on_submit(a, 0.0)
        tracker.on_start(a, 0.0)
        tracker.on_finish(a, 100.0)
        x = extract_features(make_job(job_id=2), tracker, now=200.0)
        assert x[idx("n_running")] == 0.0
        assert x[idx("occupied_resources")] == 0.0


class TestTimeFeatures:
    def test_day_periodicity(self):
        tracker = UserHistoryTracker()
        x0 = extract_features(make_job(job_id=1), tracker, now=0.0)
        x1 = extract_features(make_job(job_id=2), tracker, now=DAY)
        assert x0[idx("cos_day")] == pytest.approx(x1[idx("cos_day")])
        assert x0[idx("sin_day")] == pytest.approx(x1[idx("sin_day")])

    def test_unit_circle(self):
        tracker = UserHistoryTracker()
        x = extract_features(make_job(), tracker, now=12345.0)
        assert x[idx("cos_day")] ** 2 + x[idx("sin_day")] ** 2 == pytest.approx(1.0)
        assert x[idx("cos_week")] ** 2 + x[idx("sin_week")] ** 2 == pytest.approx(1.0)

    def test_noon_vs_midnight_differ(self):
        tracker = UserHistoryTracker()
        midnight = extract_features(make_job(job_id=1), tracker, now=0.0)
        noon = extract_features(make_job(job_id=2), tracker, now=DAY / 2)
        assert midnight[idx("cos_day")] == pytest.approx(-noon[idx("cos_day")])


class TestUserIsolation:
    def test_histories_are_per_user(self):
        tracker = UserHistoryTracker()
        a = make_job(job_id=1, user=1, runtime=100.0)
        tracker.on_submit(a, 0.0)
        tracker.on_start(a, 0.0)
        tracker.on_finish(a, 100.0)
        x = extract_features(make_job(job_id=2, user=2), tracker, now=200.0)
        assert x[idx("last_runtime_1")] == 0.0
        assert x[idx("aveall_runtime")] == 0.0
