"""Unit tests for the online quantile predictor (extension)."""

import numpy as np
import pytest

from repro.predict import QuantilePredictor, make_predictor

from tests.helpers import make_record


def run_stream(pred, runtimes, user=1):
    now = 0.0
    predictions = []
    for i, runtime in enumerate(runtimes, start=1):
        rec = make_record(job_id=i, submit_time=now, runtime=runtime,
                          requested_time=1e6, user=user)
        predictions.append(pred.predict(rec, now))
        pred.on_start(rec, now)
        pred.on_finish(rec, now + runtime)
        now += runtime + 60.0
    return predictions


class TestQuantilePredictor:
    def test_cold_start_uses_requested(self):
        pred = QuantilePredictor(0.25)
        rec = make_record(requested_time=777.0)
        assert pred.predict(rec, 0.0) == 777.0

    def test_low_quantile_underpredicts(self):
        """A 0.2-quantile estimate must sit below most runtimes."""
        rng = np.random.default_rng(0)
        runtimes = list(rng.lognormal(np.log(3600), 0.5, size=400))
        pred = QuantilePredictor(0.2)
        predictions = np.array(run_stream(pred, runtimes))
        late_under = np.mean(predictions[-100:] < np.array(runtimes[-100:]))
        assert late_under > 0.6

    def test_high_quantile_overpredicts(self):
        rng = np.random.default_rng(1)
        runtimes = list(rng.lognormal(np.log(3600), 0.5, size=400))
        pred = QuantilePredictor(0.8)
        predictions = np.array(run_stream(pred, runtimes))
        late_over = np.mean(predictions[-100:] > np.array(runtimes[-100:]))
        assert late_over > 0.5

    def test_users_isolated(self):
        pred = QuantilePredictor(0.5)
        run_stream(pred, [100.0] * 10, user=1)
        rec = make_record(job_id=99, user=2, requested_time=555.0)
        assert pred.predict(rec, 0.0) == 555.0

    def test_estimates_stay_positive(self):
        pred = QuantilePredictor(0.1, eta=1.0)
        predictions = run_stream(pred, [10.0] * 50)
        assert all(p > 0 for p in predictions)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantilePredictor(0.0)
        with pytest.raises(ValueError):
            QuantilePredictor(1.0)
        with pytest.raises(ValueError):
            QuantilePredictor(0.5, eta=0.0)

    def test_registry(self):
        pred = make_predictor("quantile0.25")
        assert isinstance(pred, QuantilePredictor)
        assert pred.quantile == 0.25


class TestForgettingVariant:
    def test_forgetting_validation(self):
        from repro.predict import MLPredictor, SQUARED_LOSS

        with pytest.raises(ValueError):
            MLPredictor(SQUARED_LOSS, forgetting=0.0)
        with pytest.raises(ValueError):
            MLPredictor(SQUARED_LOSS, forgetting=1.5)

    def test_forgetting_adapts_faster_to_regime_change(self):
        """After a user's runtime scale jumps 10x, the forgetting variant
        must track the new scale at least as fast as the long-memory one."""
        from repro.predict import MLPredictor, SQUARED_LOSS

        runtimes = [600.0] * 150 + [6000.0] * 150
        def final_error(forgetting):
            pred = MLPredictor(SQUARED_LOSS, forgetting=forgetting)
            predictions = run_stream(pred, list(runtimes))
            return abs(np.median(predictions[-30:]) - 6000.0)

        assert final_error(0.98) <= final_error(1.0) * 1.2
