"""Unit tests for the online ML predictor."""

import numpy as np
import pytest

from repro.correct import IncrementalCorrector
from repro.predict import E_LOSS, SQUARED_LOSS, MLPredictor
from repro.sched import EasyScheduler
from repro.sim import simulate

from tests.helpers import make_record


def feed_user_stream(pred, runtimes, requested=36000.0, user=1, start_id=1):
    """Simulate submit->start->finish cycles for a stream of jobs."""
    predictions = []
    now = 0.0
    for i, runtime in enumerate(runtimes):
        rec = make_record(
            job_id=start_id + i, submit_time=now, runtime=runtime,
            requested_time=requested, user=user,
        )
        predictions.append(pred.predict(rec, now))
        pred.on_start(rec, now)
        pred.on_finish(rec, now + runtime)
        now += runtime + 60.0
    return predictions


class TestLearning:
    def test_cold_start_prediction_is_clamped(self):
        pred = MLPredictor(SQUARED_LOSS)
        rec = make_record(requested_time=500.0)
        value = pred.predict(rec, 0.0)
        assert 0.0 <= value <= 500.0

    def test_learns_repetitive_user(self):
        """A user always running ~2h jobs must be predicted near 2h after
        enough observations."""
        pred = MLPredictor(SQUARED_LOSS, eta=0.5)
        rng = np.random.default_rng(0)
        runtimes = list(rng.normal(7200.0, 200.0, size=300).clip(600))
        predictions = feed_user_stream(pred, runtimes)
        late = np.array(predictions[-50:])
        assert abs(np.median(late) - 7200.0) < 2000.0

    def test_eloss_biases_towards_underprediction(self):
        """Under E-Loss, over-prediction costs quadratically but
        under-prediction only linearly, so the late predictions sit at or
        below the symmetric-loss ones (paper Fig. 4/5)."""
        rng_runtimes = list(np.random.default_rng(1).normal(7200.0, 800.0, 400).clip(600))
        sq = MLPredictor(SQUARED_LOSS, eta=0.5)
        el = MLPredictor(E_LOSS, eta=0.5)
        p_sq = np.array(feed_user_stream(sq, list(rng_runtimes)))
        p_el = np.array(feed_user_stream(el, list(rng_runtimes)))
        assert np.median(p_el[-100:]) <= np.median(p_sq[-100:]) + 200.0

    def test_updates_counted(self):
        pred = MLPredictor(SQUARED_LOSS)
        feed_user_stream(pred, [100.0, 200.0, 300.0])
        assert pred.n_updates == 3
        assert pred.mean_training_loss() >= 0.0

    def test_unknown_finish_ignored(self):
        """A completion the predictor never saw submitted must not crash
        (warm-started simulations)."""
        pred = MLPredictor(SQUARED_LOSS)
        rec = make_record()
        pred.on_finish(rec, 100.0)  # no pending features
        assert pred.n_updates == 0

    def test_target_scale_validation(self):
        with pytest.raises(ValueError):
            MLPredictor(SQUARED_LOSS, target_scale=0.0)

    def test_name_embeds_loss_key(self):
        assert MLPredictor(E_LOSS).name == "ml:sq-lin-large-area"

    def test_weights_accessible(self):
        pred = MLPredictor(SQUARED_LOSS)
        feed_user_stream(pred, [100.0] * 5)
        w = pred.weights
        assert w.shape[0] == pred._basis.dim
        assert np.any(w != 0.0)


class TestInSimulation:
    def test_full_simulation_with_ml(self, kth_trace):
        result = simulate(
            kth_trace, EasyScheduler("sjbf"), MLPredictor(E_LOSS),
            IncrementalCorrector(),
        )
        assert len(result) == len(kth_trace)
        # predictions were bounded by requested times
        assert (result.initial_predictions <= result.requested_times + 1e-9).all()

    def test_ml_beats_requested_time_mae_eventually(self, kth_trace):
        """On a history-rich synthetic log, the learning predictor's MAE
        should beat the raw requested times (which over-estimate wildly)."""
        from repro.metrics import mean_absolute_error
        from repro.predict import RequestedTimePredictor

        ml = simulate(kth_trace, EasyScheduler("sjbf"), MLPredictor(SQUARED_LOSS),
                      IncrementalCorrector())
        req = simulate(kth_trace, EasyScheduler("sjbf"), RequestedTimePredictor())
        assert mean_absolute_error(ml) < mean_absolute_error(req)
