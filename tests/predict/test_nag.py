"""Unit + property tests for the NAG optimiser.

The key property, and the reason the paper picked NAG: robustness to
feature scaling.  Rescaling any input coordinate by a constant must leave
the model's *predictions* unchanged (it absorbs into the weights).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict.nag import NagOptimizer


def squared_grad(pred: float, target: float) -> float:
    return 2.0 * (pred - target)


class TestBasics:
    def test_initial_prediction_zero(self):
        opt = NagOptimizer(3)
        assert opt.predict(np.ones(3)) == 0.0

    def test_learns_linear_function(self, rng):
        """Online regression on y = 2 x1 - 3 x2 + 1 converges."""
        opt = NagOptimizer(3, eta=0.5)
        w_true = np.array([1.0, 2.0, -3.0])
        for _ in range(3000):
            x = np.array([1.0, rng.uniform(-1, 1), rng.uniform(-1, 1)])
            y = float(w_true @ x)
            opt.update(x, squared_grad(opt.predict(x), y))
        errors = []
        for _ in range(200):
            x = np.array([1.0, rng.uniform(-1, 1), rng.uniform(-1, 1)])
            errors.append(abs(opt.predict(x) - float(w_true @ x)))
        assert np.mean(errors) < 0.15

    def test_handles_unscaled_features(self, rng):
        """Same convergence when one feature lives at 1e6 scale."""
        opt = NagOptimizer(3, eta=0.5)
        for _ in range(3000):
            x = np.array([1.0, rng.uniform(-1, 1) * 1e6, rng.uniform(-1, 1)])
            y = 2e-6 * x[1] - 3.0 * x[2]
            opt.update(x, squared_grad(opt.predict(x), y))
        errors = []
        for _ in range(200):
            x = np.array([1.0, rng.uniform(-1, 1) * 1e6, rng.uniform(-1, 1)])
            errors.append(abs(opt.predict(x) - (2e-6 * x[1] - 3.0 * x[2])))
        assert np.mean(errors) < 0.2

    def test_validates_dimension(self):
        opt = NagOptimizer(3)
        with pytest.raises(ValueError):
            opt.update(np.ones(4), 1.0)

    def test_validates_params(self):
        with pytest.raises(ValueError):
            NagOptimizer(0)
        with pytest.raises(ValueError):
            NagOptimizer(3, eta=0.0)
        with pytest.raises(ValueError):
            NagOptimizer(3, l2=-1.0)

    def test_l2_shrinks_weights(self, rng):
        """Stronger ridge -> smaller weight norm on the same data."""
        def train(l2):
            opt = NagOptimizer(2, eta=0.5, l2=l2)
            gen = np.random.default_rng(0)
            for _ in range(800):
                x = np.array([1.0, gen.uniform(-1, 1)])
                y = 5.0 * x[1]
                opt.update(x, squared_grad(opt.predict(x), y))
            return float(np.linalg.norm(opt.w))

        assert train(1.0) < train(0.0)

    def test_state_summary(self):
        opt = NagOptimizer(2)
        opt.update(np.array([1.0, 2.0]), 1.0)
        summary = opt.state_summary()
        assert summary["t"] == 1.0
        assert summary["seen_coordinates"] == 2.0


class TestScaleInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.floats(min_value=1e-4, max_value=1e4),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_predictions_invariant_to_feature_scaling(self, scale, seed):
        """NAG's defining property (Ross et al. 2013): pre-scaling a
        coordinate by any constant leaves all predictions unchanged."""
        gen = np.random.default_rng(seed)
        xs = gen.uniform(-2.0, 2.0, size=(60, 3))
        ys = xs @ np.array([1.5, -2.0, 0.5]) + gen.normal(0, 0.1, size=60)

        opt_a = NagOptimizer(3, eta=0.3)
        opt_b = NagOptimizer(3, eta=0.3)
        scaling = np.array([1.0, scale, 1.0])
        preds_a, preds_b = [], []
        for x, y in zip(xs, ys, strict=True):
            pa = opt_a.predict(x)
            pb = opt_b.predict(x * scaling)
            preds_a.append(pa)
            preds_b.append(pb)
            opt_a.update(x, squared_grad(pa, float(y)))
            opt_b.update(x * scaling, squared_grad(pb, float(y)))
        assert np.allclose(preds_a, preds_b, rtol=1e-7, atol=1e-9)
