"""Test package."""
