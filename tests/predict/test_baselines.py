"""Unit tests for the baseline predictors and the predictor registry."""

import pytest

from repro.predict import (
    ClairvoyantPredictor,
    MLPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
    make_predictor,
)

from tests.helpers import make_record


class TestClairvoyant:
    def test_predicts_actual(self):
        rec = make_record(runtime=123.0)
        assert ClairvoyantPredictor().predict(rec, 0.0) == 123.0


class TestRequested:
    def test_predicts_requested(self):
        rec = make_record(runtime=123.0, requested_time=1000.0)
        assert RequestedTimePredictor().predict(rec, 0.0) == 1000.0


class TestRecentAverage:
    def run_job(self, pred, rec, start, end):
        pred.on_start(rec, start)
        pred.on_finish(rec, end)

    def test_cold_start_falls_back_to_requested(self):
        pred = RecentAveragePredictor(2)
        rec = make_record(requested_time=500.0)
        assert pred.predict(rec, 0.0) == 500.0

    def test_one_completion(self):
        pred = RecentAveragePredictor(2)
        first = make_record(job_id=1, runtime=100.0)
        pred.predict(first, 0.0)
        self.run_job(pred, first, 0.0, 100.0)
        second = make_record(job_id=2)
        assert pred.predict(second, 200.0) == 100.0

    def test_average_of_last_two(self):
        pred = RecentAveragePredictor(2)
        for i, runtime in enumerate((100.0, 300.0, 500.0), start=1):
            rec = make_record(job_id=i, runtime=runtime)
            pred.predict(rec, float(i))
            self.run_job(pred, rec, float(i), float(i) + runtime)
        probe = make_record(job_id=9)
        # last two completions: 300, 500
        assert pred.predict(probe, 1000.0) == pytest.approx(400.0)

    def test_users_isolated(self):
        pred = RecentAveragePredictor(2)
        a = make_record(job_id=1, user=1, runtime=100.0)
        pred.predict(a, 0.0)
        self.run_job(pred, a, 0.0, 100.0)
        other = make_record(job_id=2, user=2, requested_time=999.0)
        assert pred.predict(other, 200.0) == 999.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            RecentAveragePredictor(0)

    def test_ave3(self):
        pred = RecentAveragePredictor(3)
        for i, runtime in enumerate((100.0, 200.0, 600.0), start=1):
            rec = make_record(job_id=i, runtime=runtime)
            pred.predict(rec, float(i))
            self.run_job(pred, rec, float(i), float(i) + runtime)
        probe = make_record(job_id=9)
        assert pred.predict(probe, 1000.0) == pytest.approx(300.0)


class TestRegistry:
    def test_baselines(self):
        assert isinstance(make_predictor("clairvoyant"), ClairvoyantPredictor)
        assert isinstance(make_predictor("requested"), RequestedTimePredictor)
        ave = make_predictor("ave2")
        assert isinstance(ave, RecentAveragePredictor)
        assert ave.k == 2
        assert make_predictor("ave3").k == 3

    def test_ml_keys(self):
        pred = make_predictor("ml:sq-lin-large-area")
        assert isinstance(pred, MLPredictor)
        assert pred.loss.over == "squared"
        assert pred.loss.under == "linear"
        assert pred.loss.weight == "large-area"

    def test_all_twenty_ml_keys_resolve(self):
        from repro.predict import all_loss_specs

        for spec in all_loss_specs():
            pred = make_predictor(f"ml:{spec.key}")
            assert pred.loss == spec

    def test_malformed_ml_key_rejected(self):
        with pytest.raises(KeyError):
            make_predictor("ml:cubic-lin-constant")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_predictor("oracle")
