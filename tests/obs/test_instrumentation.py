"""Telemetry threaded through the engine and campaign layers.

The load-bearing property: instrumentation *observes* and never steers.
A run with a live registry must produce the byte-identical schedule of
an uninstrumented run, and its counters must reconcile with the run's
own visible outcome (jobs in == jobs finished == predictions scored).
"""

from __future__ import annotations

import json

import pytest

from repro.core import run_cells
from repro.core.run import run_cell_report, run_spec
from repro.obs import Telemetry
from repro.spec import CellSpec

TRIPLES = [
    "requested|none|easy",
    "ave2|incremental|easy-sjbf",
    "requested|none|conservative",
    "clairvoyant|none|fcfs",
]


def _spec(triple_key: str, n_jobs: int = 120) -> CellSpec:
    return CellSpec.from_triple("KTH-SP2", triple_key, n_jobs=n_jobs, seed=7)


def _schedule(outcome_spec: CellSpec, telemetry: Telemetry | None):
    from repro.core.run import build_workload
    from repro.sim.session import SimSession

    trace = build_workload(outcome_spec.workload)
    scheduler, predictor, corrector = outcome_spec.build_components()
    session = SimSession(
        trace.processors,
        scheduler,
        predictor,
        corrector,
        min_prediction=outcome_spec.min_prediction,
        trace_name=trace.name,
        telemetry=telemetry,
    )
    session.feed(trace)
    session.drain()
    return sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections)
        for r in session.result()
    )


class TestByteIdentity:
    @pytest.mark.parametrize("triple_key", TRIPLES)
    def test_schedule_identical_with_telemetry_on(self, triple_key):
        spec = _spec(triple_key)
        baseline = _schedule(spec, None)
        instrumented = _schedule(spec, Telemetry(component="test"))
        assert baseline == instrumented

    def test_outcome_identical_through_run_spec(self):
        spec = _spec("ave2|incremental|easy-sjbf")
        plain = run_spec(spec)
        tele = Telemetry(component="test")
        observed = run_spec(spec, telemetry=tele)
        assert observed == plain


class TestEngineCounters:
    @pytest.fixture(scope="class")
    def run(self):
        spec = _spec("ave2|incremental|easy-sjbf")
        tele = Telemetry(component="test")
        outcome = run_spec(spec, telemetry=tele)
        return spec, tele, outcome

    def test_event_counts_reconcile_with_the_trace(self, run):
        spec, tele, outcome = run
        n_jobs = spec.workload.n_jobs
        assert tele.counter_value("engine.events.submit") == n_jobs
        assert tele.counter_value("engine.events.finish") == n_jobs
        assert tele.counter_value("engine.sched.jobs_started") == n_jobs
        assert tele.counter_value("engine.events.expire") == outcome.corrections

    def test_expire_storms_sum_to_the_corrections(self, run):
        _spec_, tele, outcome = run
        storms = tele.histogram("engine.expire_storm.size")
        assert storms is not None
        assert storms.total == outcome.corrections

    def test_prediction_quality_counters(self, run):
        spec, tele, _outcome = run
        finished = tele.counter_value("predict.finished")
        assert finished == spec.workload.n_jobs
        assert 0 <= tele.counter_value("predict.underestimates") <= finished
        assert tele.histogram("predict.abs_error.seconds").count == finished

    def test_queue_depth_sampled_per_pass(self, run):
        _spec_, tele, _outcome = run
        passes = tele.counter_value("engine.sched.passes")
        assert passes > 0
        queue = tele.histogram("engine.sched.queue_length")
        assert queue.count == passes
        # easy-sjbf exposes its release-table size via introspect()
        assert tele.histogram("engine.sched.release_table").count == passes

    def test_time_split_and_cell_span(self, run):
        _spec_, tele, _outcome = run
        wall = tele.counter_value("engine.time.wall.seconds")
        sched = tele.counter_value("engine.time.sched.seconds")
        predict = tele.counter_value("engine.time.predict.seconds")
        build = tele.counter_value("engine.time.build.seconds")
        assert wall > 0
        assert sched + predict + build < wall
        assert tele.counter_value("engine.cells") == 1
        assert tele.histogram("engine.cell.seconds").count == 1

    def test_conservative_profile_segments_sampled(self):
        spec = _spec("requested|none|conservative", n_jobs=60)
        tele = Telemetry(component="test")
        run_spec(spec, telemetry=tele)
        segments = tele.histogram("engine.sched.profile_segments")
        assert segments is not None and segments.count > 0


class TestCellReport:
    def test_report_always_carries_seconds(self):
        score, report = run_cell_report(_spec("requested|none|easy", 40))
        assert score > 0
        assert report["seconds"] > 0
        assert "telemetry" not in report

    def test_with_telemetry_ships_a_picklable_snapshot(self):
        _score, report = run_cell_report(
            _spec("requested|none|easy", 40), with_telemetry=True
        )
        snap = json.loads(json.dumps(report["telemetry"]))
        assert snap["component"] == "cell"
        assert snap["counters"]["engine.events.submit"] == 40


class TestCampaignTelemetry:
    def test_run_cells_folds_cell_metrics_home(self, tmp_path):
        cells = [_spec(key, 40) for key in ("requested|none|easy",
                                            "requested|none|easy-sjbf")]
        tele = Telemetry(component="campaign")
        result = run_cells(cells, workers=1, telemetry=tele)
        assert tele.counter_value("campaign.cells.total") == 2
        assert tele.counter_value("campaign.cells.simulated") == 2
        assert tele.counter_value("campaign.cells.cached") == 0
        # per-cell engine counters came home through snapshots
        assert tele.counter_value("engine.events.submit") == 80
        assert tele.histogram("campaign.cell.seconds").count == 2
        assert tele.histogram("campaign.dispatch.seconds").count == 1
        # planner estimates recorded alongside the real durations
        assert tele.histogram("campaign.cell.est_seconds").count == 2
        assert len(result.durations) == 2
        assert all(seconds > 0 for seconds in result.durations.values())

    def test_cached_cells_skip_simulation_counters(self, tmp_path):
        cells = [_spec("requested|none|easy", 40)]
        cache = str(tmp_path / "cache.jsonl")
        run_cells(cells, cache_path=cache, workers=1)
        tele = Telemetry(component="campaign")
        result = run_cells(cells, cache_path=cache, workers=1, telemetry=tele)
        assert tele.counter_value("campaign.cells.cached") == 1
        assert tele.counter_value("campaign.cells.simulated") == 0
        assert result.durations == {}
        board = result.leaderboard()
        assert board[0].mean_seconds is None  # nothing simulated this run

    def test_leaderboard_timing_column(self):
        cells = [_spec(key, 40) for key in ("requested|none|easy",
                                            "requested|none|easy-sjbf")]
        result = run_cells(cells, workers=1)
        board = result.leaderboard()
        assert [row.mean_score for row in board] == sorted(
            row.mean_score for row in board
        )
        assert all(row.n_cells == 1 for row in board)
        assert all(row.mean_seconds > 0 for row in board)
