"""Rendering and diffing for ``repro metrics``."""

from __future__ import annotations

from repro.obs import Telemetry, diff_snapshots, format_snapshots


def _snap(component: str, cells: float, seconds: list[float]) -> dict:
    tele = Telemetry(component=component)
    tele.inc("engine.cells", cells)
    tele.gauge("depth", 4)
    for value in seconds:
        tele.observe("cell.seconds", value)
    return tele.snapshot()


class TestFormat:
    def test_groups_per_component(self):
        text = format_snapshots([_snap("a", 1, [0.5]), _snap("b", 2, [])])
        assert "== a ==" in text
        assert "== b ==" in text
        assert "engine.cells" in text
        assert "counter" in text
        assert "histogram" in text and "count=1" in text

    def test_empty_inputs(self):
        assert format_snapshots([]) == "no metrics snapshots found"
        assert "(empty)" in format_snapshots([{"component": "x"}])


class TestDiff:
    def test_counter_and_histogram_deltas(self):
        before = _snap("c", 2, [1.0])
        after = _snap("c", 5, [1.0, 3.0])
        text = diff_snapshots([before], [after])
        assert "== c (delta) ==" in text
        assert "engine.cells" in text and "+3" in text
        assert "cell.seconds:count" in text
        # gauges are point-in-time, never diffed
        assert "depth" not in text

    def test_unchanged_component_reports_no_change(self):
        snap = _snap("c", 1, [])
        assert "(no change)" in diff_snapshots([snap], [snap])

    def test_component_only_on_one_side_still_diffs(self):
        text = diff_snapshots([], [_snap("new", 4, [])])
        assert "== new (delta) ==" in text
        assert "+4" in text
