"""Sinks: JSONL traces, Prometheus exposition, snapshot directories."""

from __future__ import annotations

import json
import os

from repro.obs import JsonlTraceSink, Telemetry, load_snapshots
from repro.obs.sinks import prom_text, snapshot_paths, write_snapshot


class TestJsonlTraceSink:
    def test_lazy_open_leaves_no_file_when_unused(self, tmp_path):
        path = tmp_path / "trace-x.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.close()
        assert not path.exists()

    def test_appends_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "sub" / "trace-x.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.write({"kind": "a", "n": 1})
        sink.write({"kind": "b"})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "b"]

    def test_telemetry_events_and_spans_reach_the_sink(self, tmp_path):
        path = tmp_path / "trace-t.jsonl"
        tele = Telemetry(component="t", trace=JsonlTraceSink(str(path)))
        tele.event("worker_start", worker="w1")
        with tele.span("shard", shard="g1-0"):
            pass
        tele.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["kind"] == "worker_start"
        assert records[0]["component"] == "t"
        assert records[1]["kind"] == "span"
        assert records[1]["name"] == "shard"
        assert records[1]["ok"] is True

    def test_span_failure_is_recorded_as_not_ok(self, tmp_path):
        path = tmp_path / "trace-t.jsonl"
        tele = Telemetry(component="t", trace=JsonlTraceSink(str(path)))
        try:
            with tele.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        tele.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["ok"] is False


class TestPromText:
    def test_counters_gauges_histograms(self):
        tele = Telemetry(component="c")
        tele.inc("engine.cells", 3)
        tele.gauge("queue.depth", 7)
        tele.observe("lat.seconds", 1.5)
        text = prom_text(tele.snapshot())
        assert '# TYPE repro_engine_cells_total counter' in text
        assert 'repro_engine_cells_total{component="c"} 3' in text
        assert 'repro_queue_depth{component="c"} 7' in text
        # 1.5 lands in the (1, 2] bucket; cumulative + +Inf + sum + count
        assert 'repro_lat_seconds_bucket{component="c",le="2"} 1' in text
        assert 'repro_lat_seconds_bucket{component="c",le="+Inf"} 1' in text
        assert 'repro_lat_seconds_sum{component="c"} 1.5' in text
        assert 'repro_lat_seconds_count{component="c"} 1' in text

    def test_bucket_counts_are_cumulative(self):
        tele = Telemetry(component="c")
        for value in (0.5, 1.5, 1.6, 3.0):
            tele.observe("h", value)
        text = prom_text(tele.snapshot())
        assert 'le="0.5"} 1' in text
        assert 'le="2"} 3' in text
        assert 'le="4"} 4' in text

    def test_empty_snapshot_renders_empty(self):
        assert prom_text({"component": "x"}) == ""


class TestSnapshotDirectory:
    def test_write_then_load_roundtrip(self, tmp_path):
        tele = Telemetry(component="worker-1")
        tele.inc("worker.claims", 2)
        tele.observe("worker.cell.seconds", 0.25)
        json_path = tele.write(str(tmp_path))
        expected_json, expected_prom = snapshot_paths(str(tmp_path), "worker-1")
        assert json_path == expected_json
        assert os.path.exists(expected_prom)
        snaps = load_snapshots(str(tmp_path))
        assert len(snaps) == 1
        assert snaps[0]["component"] == "worker-1"
        assert snaps[0]["counters"]["worker.claims"] == 2

    def test_load_sorts_by_name_and_skips_corrupt(self, tmp_path):
        write_snapshot({"component": "b", "counters": {"x": 1}}, str(tmp_path))
        write_snapshot({"component": "a", "counters": {"y": 2}}, str(tmp_path))
        (tmp_path / "metrics-broken.json").write_text("{not json")
        (tmp_path / "metrics-list.json").write_text("[1, 2]")
        (tmp_path / "unrelated.json").write_text("{}")
        snaps = load_snapshots(str(tmp_path))
        assert [s["component"] for s in snaps] == ["a", "b"]

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert load_snapshots(str(tmp_path / "nope")) == []

    def test_component_defaults_from_filename(self, tmp_path):
        (tmp_path / "metrics-bare.json").write_text('{"counters": {}}')
        snaps = load_snapshots(str(tmp_path))
        assert snaps[0]["component"] == "bare"
