"""Shared logging setup: level resolution and idempotent handlers."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs import get_logger, resolve_level, setup_logging
from repro.obs.log import _HANDLER_FLAG


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    root = logging.getLogger("repro")
    saved = (root.level, list(root.handlers), root.propagate)
    root.handlers = [
        h for h in root.handlers if not getattr(h, _HANDLER_FLAG, False)
    ]
    yield
    root.level, root.handlers, root.propagate = saved[0], saved[1], saved[2]


class TestResolveLevel:
    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level() == logging.WARNING

    def test_verbosity_counts(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level(verbosity=1) == logging.INFO
        assert resolve_level(verbosity=2) == logging.DEBUG
        assert resolve_level(verbosity=5) == logging.DEBUG

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert resolve_level() == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG", "15")
        assert resolve_level() == 15

    def test_explicit_level_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "DEBUG")
        assert resolve_level("ERROR", verbosity=2) == logging.ERROR
        assert resolve_level(logging.INFO) == logging.INFO

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_level("chatty")


class TestSetupLogging:
    def test_attaches_exactly_one_handler(self):
        root = setup_logging("INFO")
        again = setup_logging("DEBUG")
        assert root is again
        flagged = [
            h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)
        ]
        assert len(flagged) == 1
        assert root.level == logging.DEBUG
        assert root.propagate is False

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        setup_logging("INFO", stream=stream)
        get_logger("dist.worker").info("claimed shard %s", "g1-0")
        text = stream.getvalue()
        assert "repro.dist.worker" in text
        assert "claimed shard g1-0" in text

    def test_below_level_is_suppressed(self):
        stream = io.StringIO()
        setup_logging("WARNING", stream=stream)
        get_logger("serve").info("quiet")
        assert stream.getvalue() == ""


class TestGetLogger:
    def test_prefixes_repro_namespace(self):
        assert get_logger("merge").name == "repro.merge"
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger("repro").name == "repro"
