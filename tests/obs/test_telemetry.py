"""The instrumentation core: buckets, histograms, registries, merging."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import NOOP, Histogram, Telemetry
from repro.obs.telemetry import _ZERO_BUCKET, bucket_bound, bucket_index


class TestBuckets:
    def test_exact_powers_of_two_land_on_their_own_bound(self):
        # bucket e holds (2**(e-1), 2**e]: the bound is inclusive
        assert bucket_index(1.0) == 0
        assert bucket_index(2.0) == 1
        assert bucket_index(4.0) == 2
        assert bucket_index(0.5) == -1

    def test_values_between_powers_round_up(self):
        assert bucket_index(1.5) == 1
        assert bucket_index(3.0) == 2
        assert bucket_index(0.3) == -1

    def test_zero_and_negative_get_the_zero_bucket(self):
        assert bucket_index(0.0) == _ZERO_BUCKET
        assert bucket_index(-5.0) == _ZERO_BUCKET
        assert bucket_bound(_ZERO_BUCKET) == 0.0

    def test_bound_is_smallest_covering_power(self):
        for value in (0.001, 0.7, 1.0, 1.0001, 3.14, 1e6, 1e-9):
            index = bucket_index(value)
            assert value <= bucket_bound(index)
            assert value > bucket_bound(index - 1)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_quantile_clamped_by_observed_max(self):
        hist = Histogram()
        for value in (1.0, 1.0, 1.0, 100.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 100.0  # bound 128 clamped to max

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        obj = hist.to_obj()
        assert obj["count"] == 0
        assert obj["min"] is None and obj["max"] is None

    def test_roundtrip_and_merge_through_json(self):
        a, b = Histogram(), Histogram()
        for value in (0.5, 2.0, 7.0):
            a.observe(value)
        for value in (0.1, 64.0):
            b.observe(value)
        # snapshots cross process boundaries as JSON
        obj = json.loads(json.dumps(a.to_obj()))
        b.merge_obj(obj)
        assert b.count == 5
        assert b.total == pytest.approx(73.6)
        assert b.min == 0.1
        assert b.max == 64.0
        # bucket counts add: merged holds every original observation
        assert sum(b.buckets.values()) == 5

    def test_from_obj(self):
        hist = Histogram()
        hist.observe(3.0)
        clone = Histogram.from_obj(hist.to_obj())
        assert clone.to_obj() == hist.to_obj()


class TestTelemetry:
    def test_counters_gauges_histograms(self):
        tele = Telemetry(component="t")
        tele.inc("a")
        tele.inc("a", 2.5)
        tele.gauge("g", 5.0)
        tele.gauge("g", 3.0)
        tele.gauge_max("m", 1.0)
        tele.gauge_max("m", 0.5)
        tele.observe("h", 2.0)
        assert tele.counter_value("a") == 3.5
        assert tele.gauge_value("g") == 3.0  # last write wins
        assert tele.gauge_value("m") == 1.0  # max wins
        assert tele.histogram("h").count == 1
        assert set(tele.names()) == {"a", "g", "m", "h"}

    def test_span_records_seconds_histogram(self):
        tele = Telemetry(component="t")
        with tele.span("op") as span:
            pass
        assert span.seconds >= 0.0
        hist = tele.histogram("op.seconds")
        assert hist is not None and hist.count == 1

    def test_snapshot_is_json_serialisable_and_detached(self):
        tele = Telemetry(component="t")
        tele.inc("c")
        tele.observe("h", 1.0)
        snap = json.loads(json.dumps(tele.snapshot()))
        assert snap["component"] == "t"
        assert snap["counters"] == {"c": 1.0}
        tele.inc("c")  # must not mutate the earlier snapshot
        assert snap["counters"] == {"c": 1.0}

    def test_merge_snapshot_adds_counters_and_histograms(self):
        worker = Telemetry(component="cell")
        worker.inc("engine.events.submit", 10)
        worker.gauge_max("peak", 7.0)
        worker.observe("lat", 0.5)
        home = Telemetry(component="campaign")
        home.inc("engine.events.submit", 5)
        home.gauge_max("peak", 3.0)
        home.observe("lat", 2.0)
        home.merge_snapshot(json.loads(json.dumps(worker.snapshot())))
        assert home.counter_value("engine.events.submit") == 15
        assert home.gauge_value("peak") == 7.0
        assert home.histogram("lat").count == 2
        assert home.histogram("lat").max == 2.0

    def test_merge_empty_snapshot_is_noop(self):
        tele = Telemetry(component="t")
        tele.merge_snapshot({})
        assert list(tele.names()) == []

    def test_thread_safety_of_inc(self):
        tele = Telemetry(component="t")

        def hammer():
            for _ in range(1000):
                tele.inc("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tele.counter_value("n") == 4000


class TestNoop:
    def test_noop_records_nothing(self):
        NOOP.inc("a")
        NOOP.gauge("g", 1.0)
        NOOP.gauge_max("m", 1.0)
        NOOP.observe("h", 1.0)
        NOOP.event("e", x=1)
        with NOOP.span("op"):
            pass
        assert list(NOOP.names()) == []
        snap = NOOP.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_disabled_registry_ignores_merges(self):
        live = Telemetry(component="t")
        live.inc("c")
        NOOP.merge_snapshot(live.snapshot())
        assert NOOP.counter_value("c") == 0.0

    def test_noop_span_is_shared_and_inert(self):
        span_a = NOOP.span("a")
        span_b = NOOP.span("b", field=1)
        assert span_a is span_b
        with span_a:
            pass
        assert span_a.seconds == 0.0
