"""End-to-end integration tests: the paper's qualitative claims.

These are the semantic anchors of the reproduction -- each test asserts a
*shape* from the paper on small synthetic traces (the benchmarks assert
the same shapes at full scale).
"""

import numpy as np
import pytest

from repro import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    HeuristicTriple,
    get_trace,
    run_triple_on_trace,
    simulate,
)
from repro.correct import IncrementalCorrector
from repro.predict import ClairvoyantPredictor, RequestedTimePredictor
from repro.sched import EasyScheduler, FcfsScheduler
from repro.workload import LOG_NAMES
from repro.workload.archive import stable_seed


@pytest.fixture(scope="module")
def traces():
    """Three replicas of two contrasting logs.

    Individual small traces are noisy samples of a queueing process, so
    the shape assertions below always average replicas (the benchmarks
    re-check the same shapes at full campaign scale).
    """
    out = {}
    for name in ("KTH-SP2", "Curie"):
        out[name] = [
            get_trace(name, n_jobs=1200, seed=stable_seed(name) + r)
            for r in (0, 1, 2)
        ]
    return out


def mean_avebsld(traces, triple):
    return float(np.mean([run_triple_on_trace(t, triple).avebsld() for t in traces]))


class TestPaperShapes:
    def test_backfilling_beats_pure_fcfs(self, traces):
        """The premise of the whole line of work."""
        for name, replicas in traces.items():
            for trace in replicas:
                easy = simulate(trace, EasyScheduler("fcfs"), RequestedTimePredictor())
                fcfs = simulate(trace, FcfsScheduler(), RequestedTimePredictor())
                assert easy.avebsld() < fcfs.avebsld(), name

    def test_clairvoyant_sjbf_is_best_in_class(self, traces):
        """Table 6: 'Clairvoyant EASY-SJBF almost always outperforms its
        competitors' (tolerance absorbs small-trace noise vs EASY++)."""
        sjbf_clair = HeuristicTriple("clairvoyant", None, "easy-sjbf")
        for name, replicas in traces.items():
            clair = mean_avebsld(replicas, sjbf_clair)
            easy = mean_avebsld(replicas, EASY_TRIPLE)
            easypp = mean_avebsld(replicas, EASYPP_TRIPLE)
            assert clair < easy, name
            assert clair < easypp * 1.3, name

    def test_eloss_triple_beats_easy(self, traces):
        """The headline: the winning triple reduces AVEbsld vs EASY."""
        for name, replicas in traces.items():
            eloss = mean_avebsld(replicas, ELOSS_TRIPLE)
            easy = mean_avebsld(replicas, EASY_TRIPLE)
            assert eloss < easy, f"{name}: {eloss} !< {easy}"

    def test_corrections_only_fire_for_underpredicting_techniques(self, traces):
        trace = traces["KTH-SP2"][0]
        clair = simulate(trace, EasyScheduler("fcfs"), ClairvoyantPredictor(),
                         IncrementalCorrector())
        easypp = run_triple_on_trace(trace, EASYPP_TRIPLE)
        assert clair.total_corrections() == 0
        assert easypp.total_corrections() > 0

    def test_every_log_simulates_end_to_end(self):
        """All six archive logs run the winning triple to completion."""
        for name in LOG_NAMES:
            trace = get_trace(name, n_jobs=250)
            result = run_triple_on_trace(trace, ELOSS_TRIPLE)
            assert len(result) == 250
            assert result.avebsld() >= 1.0


class TestSchedulePhysics:
    def test_schedule_is_feasible_for_every_triple_class(self, traces):
        """Processor conservation holds for a representative triple of
        every predictor family."""
        trace = traces["Curie"][0]
        for key in (
            "requested|none|easy",
            "clairvoyant|none|easy-sjbf",
            "ave2|doubling|easy",
            "ml:lin-sq-small-area|requested|easy-sjbf",
        ):
            result = run_triple_on_trace(trace, HeuristicTriple.from_key(key))
            events = []
            for rec in result:
                events.append((rec.start_time, rec.processors))
                events.append((rec.end_time, -rec.processors))
            events.sort()
            used = 0
            for _t, delta in events:
                used += delta
                assert 0 <= used <= trace.processors, key

    def test_no_job_starts_before_submission(self, traces):
        trace = traces["KTH-SP2"][1]
        result = run_triple_on_trace(trace, ELOSS_TRIPLE)
        assert (result.wait_times >= 0.0).all()
