"""Test package."""
