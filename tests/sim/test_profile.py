"""Unit + property tests for the availability profile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.profile import AvailabilityProfile


class TestConstruction:
    def test_initial_availability(self):
        p = AvailabilityProfile(10, now=0.0, free=4)
        assert p.available_at(0.0) == 4
        assert p.available_at(1e9) == 4

    def test_from_releases(self):
        p = AvailabilityProfile.from_releases(10, now=0.0, free=2,
                                              releases=[(5.0, 3), (8.0, 5)])
        assert p.available_at(0.0) == 2
        assert p.available_at(5.0) == 5
        assert p.available_at(8.0) == 10

    def test_bad_free_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityProfile(10, now=0.0, free=11)

    def test_query_before_start_rejected(self):
        p = AvailabilityProfile(10, now=5.0)
        with pytest.raises(ValueError):
            p.available_at(4.0)


class TestQueries:
    def test_min_available_spanning_steps(self):
        p = AvailabilityProfile.from_releases(10, 0.0, 2, [(5.0, 3)])
        assert p.min_available(0.0, 10.0) == 2
        assert p.min_available(5.0, 10.0) == 5

    def test_earliest_fit_now(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        assert p.earliest_fit(4, 100.0, not_before=0.0) == 0.0

    def test_earliest_fit_waits_for_release(self):
        p = AvailabilityProfile.from_releases(10, 0.0, 2, [(50.0, 8)])
        assert p.earliest_fit(4, 100.0, not_before=0.0) == 50.0

    def test_earliest_fit_respects_not_before(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        assert p.earliest_fit(4, 10.0, not_before=33.0) == 33.0

    def test_earliest_fit_too_wide_rejected(self):
        p = AvailabilityProfile(10, 0.0)
        with pytest.raises(ValueError):
            p.earliest_fit(11, 10.0, 0.0)


class TestReservation:
    def test_reserve_then_availability_drops(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        p.reserve(0.0, 100.0, 4)
        assert p.available_at(0.0) == 6
        assert p.available_at(100.0) == 10

    def test_reserve_overlapping(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        p.reserve(0.0, 100.0, 4)
        p.reserve(50.0, 100.0, 6)
        assert p.available_at(50.0) == 0
        assert p.available_at(100.0) == 4
        assert p.available_at(150.0) == 10

    def test_oversubscription_rejected(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        p.reserve(0.0, 100.0, 8)
        with pytest.raises(ValueError):
            p.reserve(10.0, 10.0, 4)

    def test_reserve_in_gap_found_by_earliest_fit(self):
        p = AvailabilityProfile(10, 0.0, free=10)
        p.reserve(100.0, 100.0, 10)  # machine blocked in [100, 200)
        start = p.earliest_fit(4, 50.0, not_before=0.0)
        assert start == 0.0  # fits before the block
        p.reserve(start, 50.0, 4)
        # an 8-wide 100s job cannot fit before or inside the block
        start2 = p.earliest_fit(8, 100.0, not_before=0.0)
        assert start2 == 200.0


@settings(max_examples=60)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),  # start
            st.floats(min_value=1.0, max_value=500.0),  # duration
            st.integers(min_value=1, max_value=8),  # processors
        ),
        max_size=12,
    )
)
def test_profile_never_negative_and_steps_sorted(reservations):
    """Property: any sequence of feasible earliest-fit reservations keeps
    the profile within [0, m] with strictly increasing breakpoints."""
    p = AvailabilityProfile(8, now=0.0, free=8)
    for not_before, duration, procs in reservations:
        start = p.earliest_fit(procs, duration, not_before=not_before)
        assert start >= not_before
        p.reserve(start, duration, procs)
        steps = p.steps()
        times = [t for t, _ in steps]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert all(0 <= a <= 8 for _, a in steps)
        # the far future is always fully free again
        assert p.available_at(1e12) == 8
