"""Unit tests for schedule timeline reconstruction."""

import pytest

from repro.predict import RequestedTimePredictor
from repro.sched import EasyScheduler
from repro.sim import (
    ascii_timeline,
    occupancy_timeline,
    queue_timeline,
    simulate,
    utilization_profile,
)
from repro.sim.results import SimulationResult

from tests.helpers import make_record


def finished(job_id, submit, start, runtime, processors=2):
    rec = make_record(job_id=job_id, submit_time=submit, runtime=runtime,
                      processors=processors)
    rec.start_time = start
    rec.end_time = start + runtime
    return rec


@pytest.fixture
def two_job_result():
    records = [
        finished(1, submit=0.0, start=0.0, runtime=100.0, processors=4),
        finished(2, submit=10.0, start=50.0, runtime=100.0, processors=2),
    ]
    return SimulationResult(records, machine_processors=8)


class TestOccupancy:
    def test_step_values(self, two_job_result):
        times, busy = occupancy_timeline(two_job_result)
        assert times.tolist() == [0.0, 50.0, 100.0, 150.0]
        assert busy.tolist() == [4, 6, 2, 0]

    def test_ends_at_zero(self, two_job_result):
        _times, busy = occupancy_timeline(two_job_result)
        assert busy[-1] == 0

    def test_never_exceeds_machine(self, kth_trace):
        result = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        _times, busy = occupancy_timeline(result)
        assert busy.max() <= kth_trace.processors
        assert busy.min() >= 0


class TestQueueTimeline:
    def test_step_values(self, two_job_result):
        times, depth = queue_timeline(two_job_result)
        # job1 submits and starts at 0; job2 waits in [10, 50)
        assert depth.max() == 1
        assert depth[-1] == 0

    def test_conservation(self, kth_trace):
        result = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        _times, depth = queue_timeline(result)
        assert depth[-1] == 0
        assert depth.min() >= 0


class TestUtilization:
    def test_profile_in_unit_range(self, two_job_result):
        _starts, util = utilization_profile(two_job_result, n_bins=10)
        assert (util >= 0).all()
        assert (util <= 1.0 + 1e-9).all()

    def test_profile_integral_matches_total_area(self, two_job_result):
        starts, util = utilization_profile(two_job_result, n_bins=30)
        bin_width = starts[1] - starts[0]
        area = util.sum() * bin_width * two_job_result.machine_processors
        expected = sum(r.runtime * r.processors for r in two_job_result)
        assert area == pytest.approx(expected, rel=1e-6)

    def test_validates_bins(self, two_job_result):
        with pytest.raises(ValueError):
            utilization_profile(two_job_result, n_bins=0)

    def test_ascii_render(self, two_job_result):
        chart = ascii_timeline(two_job_result, width=40, height=6)
        assert "#" in chart
        assert "utilization" in chart
