"""Failure-injection and edge-case tests for the engine."""

import pytest

from repro.correct import (
    IncrementalCorrector,
    RecursiveDoublingCorrector,
    RequestedTimeCorrector,
)
from repro.predict import ClairvoyantPredictor
from repro.predict.base import Predictor
from repro.sched import EasyScheduler
from repro.sim import Simulator, simulate
from repro.workload import Trace

from tests.helpers import make_job


class ConstantPredictor(Predictor):
    name = "constant"

    def __init__(self, value: float) -> None:
        self.value = value

    def predict(self, record, now):
        return self.value


class ChattyPredictor(Predictor):
    """Counts its hook invocations (protocol-contract check)."""

    name = "chatty"

    def __init__(self) -> None:
        self.predicted = []
        self.started = []
        self.finished = []

    def predict(self, record, now):
        self.predicted.append(record.job_id)
        return record.requested_time

    def on_start(self, record, now):
        self.started.append(record.job_id)

    def on_finish(self, record, now):
        self.finished.append(record.job_id)


class TestKillBoundary:
    def test_job_running_exactly_to_requested(self):
        """runtime == requested: the FINISH event must win over EXPIRE."""
        jobs = [make_job(job_id=1, runtime=1000.0, requested_time=1000.0)]
        trace = Trace(jobs, processors=4)
        result = simulate(
            trace, EasyScheduler("fcfs"), ConstantPredictor(1000.0),
            IncrementalCorrector(),
        )
        assert result[0].corrections == 0
        assert result[0].end_time == 1000.0

    def test_underpredicted_job_hitting_requested(self):
        """Corrections must converge below/at the requested bound even when
        the job runs its full request."""
        jobs = [make_job(job_id=1, runtime=4000.0, requested_time=4000.0)]
        trace = Trace(jobs, processors=4)
        for corrector in (IncrementalCorrector(), RecursiveDoublingCorrector(),
                          RequestedTimeCorrector()):
            result = simulate(
                trace, EasyScheduler("fcfs"), ConstantPredictor(60.0), corrector
            )
            rec = result[0]
            assert rec.end_time == 4000.0
            assert rec.predicted_runtime <= 4000.0
            assert rec.corrections >= 1


class TestPredictorContract:
    def test_hooks_called_once_per_job_in_order(self, tiny_trace):
        predictor = ChattyPredictor()
        simulate(tiny_trace, EasyScheduler("fcfs"), predictor)
        assert sorted(predictor.predicted) == [1, 2, 3]
        assert sorted(predictor.started) == [1, 2, 3]
        assert sorted(predictor.finished) == [1, 2, 3]

    def test_nonfinite_prediction_rejected(self, tiny_trace):
        class NanPredictor(Predictor):
            name = "nan"

            def predict(self, record, now):
                return float("nan")

        with pytest.raises(ValueError):
            simulate(tiny_trace, EasyScheduler("fcfs"), NanPredictor())


class TestSimultaneousEvents:
    def test_mass_simultaneous_submission(self):
        """A thousand jobs at t=0 must schedule without pathologies."""
        jobs = [
            make_job(job_id=i, submit_time=0.0, runtime=60.0 + i % 7,
                     processors=1 + i % 4, requested_time=600.0)
            for i in range(1, 301)
        ]
        trace = Trace(jobs, processors=16)
        result = simulate(trace, EasyScheduler("sjbf"), ClairvoyantPredictor())
        assert len(result) == 300
        assert (result.wait_times >= 0).all()

    def test_finish_and_submit_same_instant(self):
        """A job submitted exactly when another finishes must see the
        freed processors (FINISH processed before SUBMIT)."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=4,
                     requested_time=100.0),
            make_job(job_id=2, submit_time=100.0, runtime=50.0, processors=4,
                     requested_time=50.0),
        ]
        trace = Trace(jobs, processors=4)
        result = simulate(trace, EasyScheduler("fcfs"), ClairvoyantPredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[2].start_time == 100.0  # no artificial delay


class TestEngineStatsAccuracy:
    def test_event_count_lower_bound(self, tiny_trace):
        sim = Simulator(tiny_trace, EasyScheduler("fcfs"), ClairvoyantPredictor())
        sim.run()
        # 3 submits + 3 finishes minimum
        assert sim.stats.n_events >= 6

    def test_correction_count_matches_records(self):
        jobs = [
            make_job(job_id=i, runtime=2000.0, requested_time=40000.0)
            for i in (1, 2)
        ]
        trace = Trace(jobs, processors=8)
        sim = Simulator(
            trace, EasyScheduler("fcfs"), ConstantPredictor(60.0),
            IncrementalCorrector(),
        )
        result = sim.run()
        assert sim.stats.n_corrections == result.total_corrections()
        assert sim.stats.n_corrections > 0
