"""Unit tests for the event queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue, EventType


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push(Event(10.0, EventType.SUBMIT, 1))
        q.push(Event(5.0, EventType.SUBMIT, 2))
        q.push(Event(7.5, EventType.SUBMIT, 3))
        assert [q.pop().job_id for _ in range(3)] == [2, 3, 1]

    def test_same_time_kind_priority(self):
        """FINISH < EXPIRE < SUBMIT at equal timestamps."""
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.push(Event(5.0, EventType.FINISH, 2))
        q.push(Event(5.0, EventType.EXPIRE, 3))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventType.FINISH, EventType.EXPIRE, EventType.SUBMIT]

    def test_stable_within_kind(self):
        q = EventQueue()
        for job_id in (1, 2, 3):
            q.push(Event(5.0, EventType.SUBMIT, job_id))
        assert [q.pop().job_id for _ in range(3)] == [1, 2, 3]

    def test_drain_time(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.push(Event(5.0, EventType.SUBMIT, 2))
        q.push(Event(6.0, EventType.SUBMIT, 3))
        drained = list(q.drain_time(5.0))
        assert [e.job_id for e in drained] == [1, 2]
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        assert q.peek().job_id == 1
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventType.SUBMIT, 1))

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(Event(0.0, EventType.SUBMIT, 1))
        assert q
        assert len(q) == 1

    def test_machine_events_order_after_submits(self):
        """MACHINE is the last kind at a timestamp: capacity changes land
        after every job event of the instant."""
        q = EventQueue()
        q.push(Event(5.0, EventType.MACHINE, 1))
        q.push(Event(5.0, EventType.SUBMIT, 2))
        q.push(Event(5.0, EventType.FINISH, 3))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventType.FINISH, EventType.SUBMIT, EventType.MACHINE]


class TestMonotonicFloor:
    def test_floor_starts_open(self):
        q = EventQueue()
        assert q.floor == float("-inf")
        q.push(Event(0.0, EventType.SUBMIT, 1))  # any time is fine initially

    def test_pop_raises_the_floor(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.pop()
        assert q.floor == 5.0

    def test_push_behind_floor_rejected(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.pop()
        with pytest.raises(ValueError, match="monotonic"):
            q.push(Event(4.0, EventType.SUBMIT, 2))

    def test_push_at_floor_allowed(self):
        """Same-instant pushes stay legal: a streaming feed may add more
        events at the timestamp currently being processed."""
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.pop()
        q.push(Event(5.0, EventType.SUBMIT, 2))
        assert q.pop().job_id == 2

    def test_drain_time_raises_the_floor(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.SUBMIT, 1))
        q.push(Event(5.0, EventType.FINISH, 2))
        list(q.drain_time(5.0))
        assert q.floor == 5.0
        with pytest.raises(ValueError):
            q.push(Event(1.0, EventType.SUBMIT, 3))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6),
            st.sampled_from(list(EventType)),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_pop_sequence_is_globally_ordered(items):
    """Property: events pop in (time, kind) lexicographic order."""
    q = EventQueue()
    for time, kind, job_id in items:
        q.push(Event(time, kind, job_id))
    popped = [q.pop() for _ in range(len(items))]
    keys = [(e.time, int(e.kind)) for e in popped]
    assert keys == sorted(keys)
