"""Unit tests for the machine model."""

import pytest

from repro.sim.machine import Machine

from tests.helpers import make_record


class TestMachineLifecycle:
    def test_start_allocates(self):
        m = Machine(10)
        rec = make_record(processors=4)
        m.start(rec, now=0.0)
        assert m.free == 6
        assert m.is_running(rec.job_id)
        m.check_invariants()

    def test_finish_releases(self):
        m = Machine(10)
        rec = make_record(processors=4)
        m.start(rec, now=0.0)
        finished = m.finish(rec.job_id, now=100.0)
        assert m.free == 10
        assert finished.end_time == 100.0
        m.check_invariants()

    def test_start_records_start_time(self):
        m = Machine(10)
        rec = make_record()
        m.start(rec, now=42.0)
        assert rec.start_time == 42.0

    def test_overallocation_rejected(self):
        m = Machine(4)
        m.start(make_record(job_id=1, processors=3), now=0.0)
        with pytest.raises(ValueError, match="needs"):
            m.start(make_record(job_id=2, processors=2), now=0.0)

    def test_double_start_rejected(self):
        m = Machine(10)
        rec = make_record()
        m.start(rec, now=0.0)
        with pytest.raises(ValueError, match="already running"):
            m.start(rec, now=1.0)

    def test_finish_unknown_rejected(self):
        with pytest.raises(ValueError, match="not running"):
            Machine(10).finish(99, now=0.0)

    def test_start_without_prediction_rejected(self):
        m = Machine(10)
        rec = make_record()
        rec.predicted_runtime = 0.0
        with pytest.raises(ValueError, match="predicted"):
            m.start(rec, now=0.0)

    def test_nonpositive_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)


class TestPredictedReleases:
    def test_sorted_by_predicted_end(self):
        m = Machine(10)
        a = make_record(job_id=1, processors=2, predicted_runtime=100.0)
        b = make_record(job_id=2, processors=3, predicted_runtime=50.0)
        m.start(a, now=0.0)
        m.start(b, now=0.0)
        releases = m.predicted_releases(now=0.0)
        assert releases == [(50.0, 3), (100.0, 2)]

    def test_expired_predictions_clamped_to_now(self):
        m = Machine(10)
        a = make_record(job_id=1, processors=2, predicted_runtime=10.0)
        m.start(a, now=0.0)
        releases = m.predicted_releases(now=25.0)
        assert releases == [(25.0, 2)]

    def test_fits(self):
        m = Machine(4)
        assert m.fits(4)
        assert not m.fits(5)
