"""Test package."""
