"""Streaming session API: equivalence with batch, monotonicity, queries,
machine events, external completions, and the deprecation shims."""

import json

import pytest

from repro.core.triples import EASYPP_TRIPLE, HeuristicTriple, campaign_triples
from repro.correct import IncrementalCorrector
from repro.predict import (
    ClairvoyantPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
)
from repro.sched import make_scheduler
from repro.sim import (
    MachineEvent,
    MonotonicityError,
    SimSession,
    Simulator,
    simulate,
)
from repro.workload import Trace, get_trace

from tests.helpers import make_job


def schedule_bytes(result) -> bytes:
    """Canonical byte serialisation of a per-job schedule."""
    rows = sorted(
        (r.job_id, r.start_time, r.end_time, r.corrections) for r in result
    )
    return json.dumps(rows).encode("utf-8")


def make_session(triple: HeuristicTriple, processors: int) -> SimSession:
    scheduler, predictor, corrector = triple.build()
    return SimSession(processors, scheduler, predictor, corrector)


def stream_trace(session: SimSession, trace: Trace) -> None:
    """Feed a trace the streaming way: one submit-time group at a time,
    advancing the clock to each group's instant before the next feed."""
    group: list = []
    for job in trace:
        if group and job.submit_time != group[0].submit_time:
            session.feed(group)
            session.advance_to(group[0].submit_time)
            group = []
        group.append(job)
    if group:
        session.feed(group)
        session.advance_to(group[0].submit_time)
    session.drain()


@pytest.fixture(scope="module")
def stream_kth() -> Trace:
    return get_trace("KTH-SP2", n_jobs=60)


class TestBatchStreamingEquivalence:
    """A streamed session must be byte-identical to ``Simulator.run()``."""

    # every 16th of the 128-triple campaign matrix, plus the references
    SAMPLE = campaign_triples()[::16] + [
        HeuristicTriple("clairvoyant", None, "easy"),
        HeuristicTriple("requested", None, "conservative"),
        HeuristicTriple("ave2", "incremental", "conservative"),
    ]

    @pytest.mark.parametrize("triple", SAMPLE, ids=lambda t: t.key)
    def test_streamed_schedule_matches_batch(self, stream_kth, triple):
        scheduler, predictor, corrector = triple.build()
        batch = simulate(stream_kth, scheduler, predictor, corrector)

        session = make_session(triple, stream_kth.processors)
        stream_trace(session, stream_kth)
        assert schedule_bytes(session.result()) == schedule_bytes(batch)

    def test_single_feed_then_drain_matches_batch(self, stream_kth):
        scheduler, predictor, corrector = EASYPP_TRIPLE.build()
        batch = simulate(stream_kth, scheduler, predictor, corrector)

        session = make_session(EASYPP_TRIPLE, stream_kth.processors)
        assert session.feed(stream_kth) == len(stream_kth)
        session.drain()
        assert schedule_bytes(session.result()) == schedule_bytes(batch)

    def test_step_by_step_matches_batch(self, tiny_trace):
        batch = simulate(
            tiny_trace, make_scheduler("easy"), ClairvoyantPredictor()
        )
        session = SimSession(
            tiny_trace.processors, make_scheduler("easy"), ClairvoyantPredictor()
        )
        session.feed(tiny_trace)
        timestamps = []
        while (t := session.step()) is not None:
            timestamps.append(t)
        assert timestamps == sorted(timestamps)
        assert schedule_bytes(session.result()) == schedule_bytes(batch)


class TestMonotonicity:
    def test_feed_behind_clock_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(make_job(job_id=1, submit_time=100.0))
        session.advance_to(100.0)
        with pytest.raises(MonotonicityError):
            session.feed(make_job(job_id=2, submit_time=50.0))

    def test_advance_backwards_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.advance_to(100.0)
        with pytest.raises(MonotonicityError):
            session.advance_to(99.0)

    def test_machine_event_behind_clock_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.advance_to(10.0)
        with pytest.raises(MonotonicityError):
            session.feed_machine_event(time=5.0, kind="drain", processors=1)

    def test_advance_to_now_is_a_noop(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.advance_to(10.0)
        assert session.advance_to(10.0) == 0
        assert session.now == 10.0

    def test_clock_advances_even_without_events(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        assert session.now == 0.0
        session.advance_to(1000.0)
        assert session.now == 1000.0

    def test_duplicate_job_id_rejected(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(make_job(job_id=7))
        with pytest.raises(ValueError, match="already fed"):
            session.feed(make_job(job_id=7, submit_time=10.0))


class TestMidStreamFeed:
    def test_feed_after_advance(self):
        """Jobs can arrive while earlier ones run -- the live-session use."""
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(make_job(job_id=1, submit_time=0.0, runtime=100.0))
        session.advance_to(50.0)
        assert session.machine.is_running(1)
        session.feed(make_job(job_id=2, submit_time=50.0, runtime=100.0))
        session.feed(make_job(job_id=3, submit_time=120.0, runtime=100.0))
        session.drain()
        result = session.result()
        by_id = {r.job_id: r for r in result}
        assert len(result) == 3
        assert by_id[2].start_time == 50.0  # room alongside job 1
        assert by_id[3].start_time == 120.0

    def test_mid_stream_feed_matches_batch(self, stream_kth):
        """Streaming half the trace, draining to the midpoint, then
        feeding the rest still reproduces the batch schedule (every job
        is fed before the clock passes its submit time)."""
        scheduler, predictor, corrector = EASYPP_TRIPLE.build()
        batch = simulate(stream_kth, scheduler, predictor, corrector)

        session = make_session(EASYPP_TRIPLE, stream_kth.processors)
        jobs = list(stream_kth)
        half = len(jobs) // 2
        session.feed(jobs[:half])
        # advance close to the second half, but not past its first submit
        session.advance_to(jobs[half].submit_time)
        session.feed(jobs[half:])
        session.drain()
        assert schedule_bytes(session.result()) == schedule_bytes(batch)


class TestQueries:
    def test_query_is_side_effect_free(self, stream_kth):
        """Interleaving queries into a streamed run must not change a
        single byte of the schedule."""
        plain = make_session(EASYPP_TRIPLE, stream_kth.processors)
        stream_trace(plain, stream_kth)

        probed = make_session(EASYPP_TRIPLE, stream_kth.processors)
        probe = make_job(job_id=10**9, submit_time=0.0, runtime=600.0,
                         processors=2, requested_time=1200.0)
        for job in stream_kth:
            probed.feed(job)
            probed.advance_to(job.submit_time)
            probed.query(job_id=job.job_id)  # fed job
            probed.query(probe)  # hypothetical
        probed.drain()
        assert schedule_bytes(probed.result()) == schedule_bytes(plain.result())

    def test_query_states(self):
        session = SimSession(2, make_scheduler("easy"), ClairvoyantPredictor())
        session.feed(
            [
                make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=2,
                         requested_time=100.0),
                make_job(job_id=2, submit_time=0.0, runtime=100.0, processors=2,
                         requested_time=100.0),
            ]
        )
        session.advance_to(0.0)
        running = session.query(job_id=1)
        assert running.state == "running"
        assert running.start_time == 0.0
        waiting = session.query(job_id=2)
        assert waiting.state == "waiting"
        assert waiting.start_time == 100.0  # behind job 1 on a full machine
        assert waiting.wait == 100.0
        session.drain()
        finished = session.query(job_id=2)
        assert finished.state == "finished"
        assert finished.start_time == 100.0

    def test_hypothetical_query(self):
        session = SimSession(2, make_scheduler("easy"), ClairvoyantPredictor())
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=2,
                     requested_time=100.0)
        )
        session.advance_to(0.0)
        ghost = make_job(job_id=99, submit_time=0.0, runtime=60.0, processors=1,
                         requested_time=120.0)
        answer = session.query(ghost)
        assert answer.state == "hypothetical"
        assert answer.start_time == 100.0  # machine is full until then
        assert 99 not in [r.job_id for r in session.result(partial=True)]
        assert session.n_jobs == 1  # the probe was never fed

    def test_query_unsubmitted_job_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(make_job(job_id=1, submit_time=100.0))
        with pytest.raises(ValueError, match="not yet submitted"):
            session.query(job_id=1)

    def test_query_unknown_job_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        with pytest.raises(ValueError, match="never fed"):
            session.query(job_id=42)
        with pytest.raises(ValueError, match="job or a job_id"):
            session.query()

    def test_conservative_clairvoyant_query_is_exact(self):
        """Under conservative backfilling with exact predictions, the
        estimate at submit time IS the start time the batch run produces
        (runtimes >= min_prediction so clamping never bites)."""
        base = get_trace("KTH-SP2", n_jobs=40)
        jobs = [
            job.with_updates(
                runtime=max(job.runtime, 60.0),
                requested_time=max(job.requested_time, 60.0),
            )
            for job in base
        ]
        trace = Trace(jobs, processors=base.processors, name="clamped")
        session = SimSession(
            trace.processors, make_scheduler("conservative"), ClairvoyantPredictor()
        )
        estimates = {}
        for job in trace:
            session.feed(job)
            session.advance_to(job.submit_time)
            estimates[job.job_id] = session.query(job_id=job.job_id).start_time
        session.drain()
        for record in session.result():
            assert estimates[record.job_id] == record.start_time


class TestMachineEvents:
    def test_drain_removes_free_capacity(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed_machine_event(time=0.0, kind="drain", processors=2)
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                     requested_time=200.0)
        )
        session.advance_to(0.0)
        snap = session.snapshot()
        assert snap.free == 2  # 4 minus the 2 drained; the 3-wide job waits
        assert snap.drained == 2
        assert snap.waiting and snap.waiting[0][0] == 1

    def test_restore_reenables_scheduling(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed_machine_event(time=0.0, kind="drain", processors=2)
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                     requested_time=200.0)
        )
        session.advance_to(0.0)
        session.feed_machine_event(time=50.0, kind="restore", processors=2)
        session.drain()
        record = session.record(1)
        assert record.start_time == 50.0
        assert session.machine.drained == 0

    def test_drain_wider_than_free_rejected(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                     requested_time=200.0)
        )
        session.advance_to(0.0)  # job 1 running, 1 processor free
        with pytest.raises(ValueError, match="drain"):
            session.feed_machine_event(time=10.0, kind="drain", processors=2)
            session.advance_to(10.0)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            MachineEvent(time=0.0, kind="explode", processors=1)
        with pytest.raises(ValueError, match="processors"):
            MachineEvent(time=0.0, kind="drain", processors=0)

    def test_conservative_resyncs_on_capacity_change(self):
        """The conservative scheduler's incremental profile must absorb a
        capacity change, not keep planning on the old machine size."""
        session = SimSession(
            4, make_scheduler("conservative"), RequestedTimePredictor()
        )
        session.feed(
            [
                make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=4,
                         requested_time=100.0),
                make_job(job_id=2, submit_time=0.0, runtime=100.0, processors=4,
                         requested_time=100.0),
            ]
        )
        session.advance_to(0.0)
        session.feed_machine_event(time=100.0, kind="drain", processors=2)
        session.drain()
        # job 2 needs 4 processors but 2 are drained: it can never start
        assert not session.record(2).started
        assert session.record(1).finished


class TestExternalCompletion:
    def test_complete_overrides_simulated_runtime(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0,
                     requested_time=200.0)
        )
        session.advance_to(0.0)
        record = session.complete(1, time=70.0)
        assert record.finished
        assert record.runtime == 70.0
        assert record.end_time == 70.0
        session.drain()  # the stale simulated FINISH at t=100 is dropped
        assert session.result()[0].end_time == 70.0

    def test_complete_frees_processors_for_waiters(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(
            [
                make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=4,
                         requested_time=100.0),
                make_job(job_id=2, submit_time=0.0, runtime=50.0, processors=4,
                         requested_time=50.0),
            ]
        )
        session.advance_to(0.0)
        session.complete(1, time=30.0)
        assert session.record(2).start_time == 30.0

    def test_complete_teaches_the_predictor(self):
        predictor = RecentAveragePredictor(2)
        session = SimSession(4, make_scheduler("easy"), predictor,
                             IncrementalCorrector())
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=1000.0,
                     requested_time=2000.0, user=5)
        )
        session.advance_to(0.0)
        session.complete(1, time=400.0)
        follow_up = make_job(job_id=2, submit_time=400.0, runtime=1000.0,
                             requested_time=2000.0, user=5)
        probe = session.query(follow_up)
        assert probe.predicted_runtime == 400.0  # learned from the completion

    def test_complete_not_running_raises(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(make_job(job_id=1, submit_time=10.0, runtime=100.0))
        with pytest.raises(ValueError, match="not running"):
            session.complete(1, time=5.0)

    def test_complete_after_finish_is_idempotent(self):
        session = SimSession(4, make_scheduler("easy"), RequestedTimePredictor())
        session.feed(
            make_job(job_id=1, submit_time=0.0, runtime=100.0,
                     requested_time=200.0)
        )
        session.drain()
        record = session.complete(1, time=150.0)
        assert record.end_time == 100.0  # simulated finish already happened

    def test_observe_completion_updates_predictor_only(self):
        predictor = RecentAveragePredictor(2)
        session = SimSession(4, make_scheduler("easy"), predictor)
        history = make_job(job_id=500, submit_time=0.0, runtime=900.0,
                           requested_time=1800.0, user=9)
        session.observe_completion(history, 900.0)
        assert session.n_jobs == 0  # never entered the schedule
        probe = make_job(job_id=1, submit_time=0.0, runtime=1.0,
                         requested_time=1800.0, user=9)
        assert session.query(probe).predicted_runtime == 900.0


class TestSnapshotAndResult:
    def test_snapshot_fields(self, tiny_trace):
        session = SimSession(
            tiny_trace.processors, make_scheduler("easy"), ClairvoyantPredictor()
        )
        session.feed(tiny_trace)
        session.advance_to(0.0)
        snap = session.snapshot()
        assert snap.now == 0.0
        assert snap.processors == 4
        assert snap.scheduler == "easy"
        assert snap.predictor == "clairvoyant"
        assert snap.corrector == "none"
        assert len(snap.running) + len(snap.waiting) == 3
        assert snap.n_finished == 0
        assert snap.n_pending_events > 0

    def test_partial_result(self, tiny_trace):
        session = SimSession(
            tiny_trace.processors, make_scheduler("easy"), ClairvoyantPredictor()
        )
        session.feed(tiny_trace)
        session.advance_to(90.0)  # job 3 done, jobs 1-2 not yet
        partial = session.result(partial=True)
        assert [r.job_id for r in partial] == [3]
        session.drain()
        assert len(session.result()) == 3


class TestDeprecationShims:
    def test_simulator_internals_warn(self, tiny_trace):
        sim = Simulator(tiny_trace, make_scheduler("easy"), ClairvoyantPredictor())
        sim.run()
        with pytest.warns(DeprecationWarning, match="SimSession"):
            handler = sim._schedule_pass
        assert callable(handler)

    def test_simulator_internals_before_run_raise(self, tiny_trace):
        sim = Simulator(tiny_trace, make_scheduler("easy"), ClairvoyantPredictor())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(AttributeError, match="deprecated"):
                sim._handle_submit

    def test_unknown_attribute_still_raises_plainly(self, tiny_trace):
        sim = Simulator(tiny_trace, make_scheduler("easy"), ClairvoyantPredictor())
        with pytest.raises(AttributeError):
            sim.definitely_not_an_attribute

    def test_simulator_stats_track_session(self, tiny_trace):
        sim = Simulator(tiny_trace, make_scheduler("easy"), ClairvoyantPredictor())
        result = sim.run()
        assert len(result) == 3
        assert sim.stats.n_events > 0
        assert sim.stats.max_queue_length >= 1
