"""Unit tests for job records and simulation results."""

import numpy as np
import pytest

from repro.sim.results import SimulationResult

from tests.helpers import make_record


def finished_record(job_id=1, submit=0.0, start=10.0, runtime=100.0, processors=1):
    rec = make_record(job_id=job_id, submit_time=submit, runtime=runtime,
                      processors=processors)
    rec.start_time = start
    rec.end_time = start + runtime
    return rec


class TestJobRecord:
    def test_wait_time(self):
        rec = finished_record(submit=5.0, start=25.0)
        assert rec.wait_time == 20.0

    def test_wait_time_before_start_raises(self):
        rec = make_record()
        with pytest.raises(ValueError):
            _ = rec.wait_time

    def test_bounded_slowdown_long_job(self):
        rec = finished_record(submit=0.0, start=100.0, runtime=100.0)
        # (100 + 100) / max(100, 10) = 2
        assert rec.bounded_slowdown() == pytest.approx(2.0)

    def test_bounded_slowdown_short_job_uses_tau(self):
        rec = finished_record(submit=0.0, start=0.0, runtime=1.0)
        # max((0+1)/max(1,10), 1) = 1
        assert rec.bounded_slowdown() == 1.0

    def test_bounded_slowdown_floor_is_one(self):
        rec = finished_record(submit=0.0, start=0.0, runtime=5.0)
        assert rec.bounded_slowdown() >= 1.0

    def test_predicted_end(self):
        rec = finished_record(start=50.0)
        rec.predicted_runtime = 30.0
        assert rec.predicted_end == 80.0


class TestSimulationResult:
    def test_requires_finished_jobs(self):
        with pytest.raises(ValueError, match="did not finish"):
            SimulationResult([make_record()], machine_processors=8)

    def test_avebsld(self):
        records = [
            finished_record(job_id=1, submit=0.0, start=0.0, runtime=100.0),
            finished_record(job_id=2, submit=0.0, start=100.0, runtime=100.0),
        ]
        result = SimulationResult(records, machine_processors=8)
        assert result.avebsld() == pytest.approx((1.0 + 2.0) / 2)

    def test_iteration_in_submit_order(self):
        records = [
            finished_record(job_id=2, submit=50.0),
            finished_record(job_id=1, submit=0.0),
        ]
        result = SimulationResult(records, machine_processors=8)
        assert [r.job_id for r in result] == [1, 2]

    def test_utilization(self):
        records = [finished_record(job_id=1, start=0.0, runtime=100.0, processors=4)]
        result = SimulationResult(records, machine_processors=8)
        assert result.utilization() == pytest.approx(0.5)

    def test_arrays(self):
        records = [
            finished_record(job_id=1, submit=0.0, start=10.0),
            finished_record(job_id=2, submit=5.0, start=30.0),
        ]
        result = SimulationResult(records, machine_processors=8)
        assert np.allclose(result.wait_times, [10.0, 25.0])
        assert len(result.runtimes) == 2

    def test_total_corrections(self):
        rec = finished_record()
        rec.corrections = 3
        result = SimulationResult([rec], machine_processors=8)
        assert result.total_corrections() == 3
