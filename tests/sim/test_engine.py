"""Integration-grade unit tests for the simulation engine."""

import pytest

from repro.correct import IncrementalCorrector, RequestedTimeCorrector
from repro.predict import (
    ClairvoyantPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
)
from repro.predict.base import Predictor
from repro.sched import EasyScheduler, FcfsScheduler
from repro.sim import Simulator, simulate
from repro.workload import Trace

from tests.helpers import make_job


class ConstantPredictor(Predictor):
    """Test helper: always predicts the same value."""

    name = "constant"

    def __init__(self, value: float) -> None:
        self.value = value

    def predict(self, record, now):
        return self.value


class TestFigure2Scenario:
    """The paper's Figure 2: 3 jobs on 4 processors under EASY."""

    def test_easy_backfills_job3(self, tiny_trace):
        result = simulate(tiny_trace, EasyScheduler("fcfs"), ClairvoyantPredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[1].start_time == 0.0  # head starts immediately
        assert by_id[3].start_time == 0.0  # backfilled alongside
        assert by_id[2].start_time == 100.0  # waits for job 1 (and 3)

    def test_fcfs_does_not_backfill(self, tiny_trace):
        result = simulate(tiny_trace, FcfsScheduler(), ClairvoyantPredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[1].start_time == 0.0
        assert by_id[2].start_time == 100.0
        # job 3 is stuck behind job 2 without backfilling
        assert by_id[3].start_time == 100.0

    def test_long_estimate_blocks_backfill(self):
        """If job 3's prediction exceeds the backfill window and the extra
        processors, it must not be backfilled (Figure 2's discussion)."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                     requested_time=100.0),
            make_job(job_id=2, submit_time=0.0, runtime=50.0, processors=4,
                     requested_time=50.0),
            make_job(job_id=3, submit_time=0.0, runtime=90.0, processors=1,
                     requested_time=500.0),
        ]
        trace = Trace(jobs, processors=4)
        # Requested-time predictions: job 3 looks like 500s > shadow (100s),
        # and job 2 needs the whole machine so extra = 0.
        result = simulate(trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        by_id = {r.job_id: r for r in result}
        assert by_id[3].start_time > 0.0


class TestCorrections:
    def test_underprediction_triggers_corrections(self):
        jobs = [make_job(job_id=1, runtime=1000.0, requested_time=4000.0)]
        trace = Trace(jobs, processors=4)
        sim = Simulator(
            trace, EasyScheduler("fcfs"), ConstantPredictor(60.0),
            IncrementalCorrector(),
        )
        result = sim.run()
        rec = result[0]
        # 60s predicted, +60 => 120, +300 => 420, +900 => 1320 > 1000: done
        assert rec.corrections == 3
        assert rec.end_time == 1000.0

    def test_requested_corrector_jumps_once(self):
        jobs = [make_job(job_id=1, runtime=1000.0, requested_time=4000.0)]
        trace = Trace(jobs, processors=4)
        result = simulate(
            trace, EasyScheduler("fcfs"), ConstantPredictor(60.0),
            RequestedTimeCorrector(),
        )
        assert result[0].corrections == 1
        assert result[0].predicted_runtime == 4000.0

    def test_clairvoyant_never_corrects(self, kth_trace):
        result = simulate(
            kth_trace, EasyScheduler("fcfs"), ClairvoyantPredictor(),
            IncrementalCorrector(),
        )
        assert result.total_corrections() == 0

    def test_missing_corrector_raises_on_underprediction(self):
        jobs = [make_job(job_id=1, runtime=1000.0, requested_time=4000.0)]
        trace = Trace(jobs, processors=4)
        with pytest.raises(RuntimeError, match="no\\s+correction mechanism"):
            simulate(trace, EasyScheduler("fcfs"), ConstantPredictor(60.0))

    def test_prediction_never_exceeds_requested(self):
        jobs = [make_job(job_id=1, runtime=3900.0, requested_time=4000.0)]
        trace = Trace(jobs, processors=4)
        result = simulate(
            trace, EasyScheduler("fcfs"), ConstantPredictor(60.0),
            IncrementalCorrector(),
        )
        assert result[0].predicted_runtime <= 4000.0


class TestEngineInvariants:
    def test_predictions_clamped_to_requested(self, tiny_trace):
        result = simulate(
            tiny_trace, EasyScheduler("fcfs"), ConstantPredictor(1e9),
        )
        for rec in result:
            assert rec.initial_prediction <= rec.requested_time

    def test_min_prediction_floor(self, tiny_trace):
        result = simulate(
            tiny_trace, EasyScheduler("fcfs"), ClairvoyantPredictor(),
            min_prediction=60.0,
        )
        for rec in result:
            # the floor applies, but the requested time still dominates
            assert rec.initial_prediction >= min(60.0, rec.requested_time)

    def test_bad_min_prediction_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            Simulator(tiny_trace, EasyScheduler("fcfs"), ClairvoyantPredictor(),
                      min_prediction=0.0)

    def test_all_jobs_finish_all_waits_nonnegative(self, kth_trace):
        result = simulate(
            kth_trace, EasyScheduler("sjbf"), RecentAveragePredictor(2),
            IncrementalCorrector(),
        )
        assert len(result) == len(kth_trace)
        assert (result.wait_times >= 0).all()
        for rec in result:
            assert rec.end_time == pytest.approx(rec.start_time + rec.runtime)

    def test_stats_counters(self, kth_trace):
        sim = Simulator(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        sim.run()
        assert sim.stats.n_events >= 2 * len(kth_trace)
        assert sim.stats.n_scheduling_passes > 0

    def test_deterministic_replay(self, kth_trace):
        r1 = simulate(kth_trace, EasyScheduler("sjbf"),
                      RecentAveragePredictor(2), IncrementalCorrector())
        r2 = simulate(kth_trace, EasyScheduler("sjbf"),
                      RecentAveragePredictor(2), IncrementalCorrector())
        assert (r1.wait_times == r2.wait_times).all()

    def test_machine_never_oversubscribed(self, kth_trace):
        """Replay the schedule and check processor conservation over time."""
        result = simulate(kth_trace, EasyScheduler("fcfs"), RequestedTimePredictor())
        events = []
        for rec in result:
            events.append((rec.start_time, rec.processors))
            events.append((rec.end_time, -rec.processors))
        events.sort()
        used = 0
        for _t, delta in events:
            used += delta
            assert 0 <= used <= kth_trace.processors
