"""Contract tests for the top-level public API."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_no_private_leaks(self):
        assert all(not n.startswith("_") or n == "__version__" for n in repro.__all__)

    def test_readme_quickstart_snippet(self):
        """The README's quickstart must actually work (tiny scale)."""
        from repro import (
            E_LOSS,
            EasyScheduler,
            IncrementalCorrector,
            MLPredictor,
            get_trace,
            simulate,
        )

        trace = get_trace("KTH-SP2", n_jobs=150)
        result = simulate(
            trace,
            EasyScheduler("sjbf"),
            MLPredictor(E_LOSS),
            IncrementalCorrector(),
        )
        assert result.avebsld() >= 1.0

    def test_module_docstring_campaign_snippet(self):
        from repro import CampaignConfig, run_campaign

        campaign = run_campaign(
            CampaignConfig(logs=("KTH-SP2",), n_jobs=80, replicas=1),
            workers=8,
        )
        rows = campaign.table1_rows()
        assert len(rows) == 1

    def test_registries_cover_campaign_triples(self):
        """Every campaign triple must be buildable from the registries."""
        from repro import campaign_triples

        for triple in campaign_triples():
            scheduler, predictor, corrector = triple.build()
            assert scheduler is not None and predictor is not None
