"""Unit tests for the per-user behaviour model."""

import numpy as np
import pytest

from repro.workload.usermodel import (
    SessionJob,
    sample_user_profiles,
    wide_job_runtime_cap,
)


def sample_profiles(rng, n_users=20, processors=128, **overrides):
    kwargs = dict(
        n_users=n_users,
        processors=processors,
        runtime_log_mu=7.0,
        runtime_log_sigma=1.5,
        width_mix=(0.6, 0.3, 0.1),
        width_max_frac=1.0,
        session_jobs_mean=4.0,
        session_gap_minutes=5.0,
        estimate_styles=(0.4, 0.4, 0.2),
        estimate_margin_range=(1.2, 4.0),
        max_requested_hours=48.0,
        failure_prob=0.05,
    )
    kwargs.update(overrides)
    return sample_user_profiles(rng, **kwargs)


class TestWideJobCap:
    def test_narrow_jobs_keep_full_ceiling(self):
        assert wide_job_runtime_cap(8, 128, 3600.0) == 3600.0

    def test_quarter_machine_is_threshold(self):
        assert wide_job_runtime_cap(32, 128, 3600.0) == 3600.0

    def test_full_machine_gets_quarter_ceiling(self):
        assert wide_job_runtime_cap(128, 128, 3600.0) == pytest.approx(900.0)

    def test_cap_monotone_in_width(self):
        caps = [wide_job_runtime_cap(w, 128, 3600.0) for w in range(1, 129)]
        assert all(a >= b for a, b in zip(caps, caps[1:], strict=False))


class TestProfileSampling:
    def test_population_size(self, rng):
        profiles = sample_profiles(rng)
        assert len(profiles) == 20
        assert len({p.user_id for p in profiles}) == 20

    def test_weights_form_distribution(self, rng):
        profiles = sample_profiles(rng)
        total = sum(p.weight for p in profiles)
        assert total == pytest.approx(1.0)

    def test_widths_bounded_by_machine(self, rng):
        profiles = sample_profiles(rng, width_max_frac=0.5, processors=128)
        assert all(p.max_width == 64 for p in profiles)

    def test_rejects_empty_population(self, rng):
        with pytest.raises(ValueError):
            sample_profiles(rng, n_users=0)


class TestSessionGeneration:
    def test_session_emits_jobs(self, rng):
        profile = sample_profiles(rng)[0]
        session = profile.generate_session(rng)
        assert len(session) >= 1
        assert all(isinstance(j, SessionJob) for j in session)

    def test_offsets_increase(self, rng):
        profile = sample_profiles(rng)[0]
        for _ in range(10):
            session = profile.generate_session(rng)
            offsets = [j.offset for j in session]
            assert offsets == sorted(offsets)

    def test_invariants_across_many_sessions(self, rng):
        profiles = sample_profiles(rng)
        for profile in profiles:
            for _ in range(5):
                for job in profile.generate_session(rng):
                    assert job.runtime > 0
                    assert job.runtime <= job.requested_time + 1e-9
                    assert 1 <= job.processors <= profile.max_width
                    cap = wide_job_runtime_cap(
                        job.processors, profile.max_width, profile.max_requested
                    )
                    assert job.runtime <= cap + 1e-9

    def test_runtime_locality_within_user(self, rng):
        """Successive non-failed runtimes of one user must correlate --
        this is what gives AVE2 and the history features their power."""
        profiles = sample_profiles(rng, failure_prob=0.0)
        ratios = []
        for profile in profiles:
            runtimes = []
            for _ in range(6):
                runtimes.extend(j.runtime for j in profile.generate_session(rng))
            for a, b in zip(runtimes, runtimes[1:], strict=False):
                ratios.append(max(a, b) / min(a, b))
        # median consecutive ratio should be modest (strong locality)
        assert np.median(ratios) < 4.0

    def test_failures_are_short(self, rng):
        profiles = sample_profiles(rng, failure_prob=1.0)
        failed_jobs = [
            job
            for profile in profiles
            for _ in range(3)
            for job in profile.generate_session(rng)
            if job.failed
        ]
        assert failed_jobs, "failure_prob=1.0 must produce failures"
        for job in failed_jobs:
            assert job.runtime <= 600.0

    def test_failures_cluster_in_bursts(self, rng):
        """Once a job fails, the next one in the session usually fails too
        (the bursty-failure model that breaks AVE2-style predictors)."""
        profiles = sample_profiles(rng, failure_prob=0.2)
        after_failure = []
        for profile in profiles:
            for _ in range(10):
                session = profile.generate_session(rng)
                for prev, cur in zip(session, session[1:], strict=False):
                    if prev.failed:
                        after_failure.append(cur.failed)
        if len(after_failure) >= 30:
            # persistence is 0.7 by construction; allow sampling noise
            assert sum(after_failure) / len(after_failure) > 0.45
