"""Unit tests for synthetic workload generation."""

import numpy as np
import pytest

from repro.workload import ARCHIVE, WorkloadModel, arrival_intensity, synthesize
from repro.workload.archive import stable_seed


def small_model(**overrides) -> WorkloadModel:
    base = ARCHIVE["KTH-SP2"].model.resized(400)
    if overrides:
        from dataclasses import replace

        base = replace(base, **overrides)
    return base


class TestArrivalIntensity:
    def test_bounded(self):
        for t in np.linspace(0, 14 * 86400, 500):
            value = arrival_intensity(float(t), 0.7, 0.5)
            assert 0.0 < value <= 1.0

    def test_weekend_suppressed(self):
        # t=0 is Monday 0:00; Saturday noon is day 5.5
        weekday = arrival_intensity(2.5 * 86400, 0.5, 0.6)
        weekend = arrival_intensity(5.5 * 86400, 0.5, 0.6)
        assert weekend < weekday

    def test_night_suppressed(self):
        night = arrival_intensity(4 * 3600.0, 0.8, 0.0)  # 4 am Monday
        afternoon = arrival_intensity(16 * 3600.0, 0.8, 0.0)  # 4 pm Monday
        assert night < afternoon


class TestSynthesize:
    def test_job_count_exact(self):
        trace = synthesize(small_model(), seed=1)
        assert len(trace) == 400

    def test_deterministic_in_seed(self):
        a = synthesize(small_model(), seed=7)
        b = synthesize(small_model(), seed=7)
        assert len(a) == len(b)
        for ja, jb in zip(a, b, strict=True):
            assert ja.submit_time == jb.submit_time
            assert ja.runtime == jb.runtime
            assert ja.processors == jb.processors
            assert ja.user == jb.user

    def test_different_seeds_differ(self):
        a = synthesize(small_model(), seed=1)
        b = synthesize(small_model(), seed=2)
        assert any(x.runtime != y.runtime for x, y in zip(a, b, strict=False))

    def test_invariants(self):
        trace = synthesize(small_model(), seed=3)
        for job in trace:
            assert job.runtime > 0
            assert job.runtime <= job.requested_time + 1e-9
            assert 1 <= job.processors <= trace.processors
        assert trace[0].submit_time == 0.0

    def test_offered_load_near_target(self):
        model = small_model()
        trace = synthesize(model, seed=4)
        stats = trace.stats()
        # stats.duration includes trailing completions, so achieved load
        # lands a bit under target; allow a generous band.
        assert 0.5 * model.offered_load < stats.offered_load < 1.3 * model.offered_load

    def test_submission_monotone(self):
        trace = synthesize(small_model(), seed=5)
        times = [j.submit_time for j in trace]
        assert times == sorted(times)

    def test_resized_scales_users(self):
        full = ARCHIVE["KTH-SP2"].model
        small = full.resized(400)
        assert small.n_jobs == 400
        assert small.n_users < full.n_users
        assert small.target_days is not None

    def test_resized_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ARCHIVE["KTH-SP2"].model.resized(0)

    def test_requested_times_overestimate_on_average(self):
        trace = synthesize(small_model(), seed=6)
        ratios = [j.requested_time / j.runtime for j in trace]
        assert np.mean(ratios) > 2.0  # users over-estimate heavily (paper Sec 1)

    def test_multiple_users_present(self):
        trace = synthesize(small_model(), seed=8)
        users = {j.user for j in trace}
        assert len(users) >= 5


class TestArchiveModels:
    @pytest.mark.parametrize("name", list(ARCHIVE))
    def test_every_log_synthesises(self, name):
        trace = synthesize(ARCHIVE[name].model.resized(250), seed=stable_seed(name))
        assert len(trace) == 250
        stats = trace.stats()
        assert stats.offered_load > 0.3
        assert stats.n_users >= 5
