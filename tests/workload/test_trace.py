"""Unit tests for the Trace container."""

import pytest

from repro.workload import Trace

from tests.helpers import make_job


class TestTraceConstruction:
    def test_jobs_sorted_by_submit_time(self):
        jobs = [
            make_job(job_id=1, submit_time=100.0),
            make_job(job_id=2, submit_time=0.0),
            make_job(job_id=3, submit_time=50.0),
        ]
        trace = Trace(jobs, processors=8)
        assert [j.job_id for j in trace] == [2, 3, 1]

    def test_ties_broken_by_job_id(self):
        jobs = [make_job(job_id=5, submit_time=0.0), make_job(job_id=2, submit_time=0.0)]
        trace = Trace(jobs, processors=8)
        assert [j.job_id for j in trace] == [2, 5]

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            Trace([make_job(processors=16)], processors=8)

    def test_duplicate_ids_rejected(self):
        jobs = [make_job(job_id=1), make_job(job_id=1, submit_time=5.0)]
        with pytest.raises(ValueError, match="duplicate"):
            Trace(jobs, processors=8)

    def test_nonpositive_machine_rejected(self):
        with pytest.raises(ValueError):
            Trace([], processors=0)

    def test_empty_trace_allowed(self):
        trace = Trace([], processors=8)
        assert len(trace) == 0
        assert trace.duration == 0.0


class TestTraceStats:
    def test_stats_of_simple_trace(self):
        jobs = [
            make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=4),
            make_job(job_id=2, submit_time=50.0, runtime=100.0, processors=4),
        ]
        trace = Trace(jobs, processors=8)
        stats = trace.stats()
        assert stats.n_jobs == 2
        assert stats.total_area == 800.0
        # duration: last completion (150) - first submit (0)
        assert stats.duration == 150.0
        assert stats.offered_load == pytest.approx(800.0 / (8 * 150.0))
        assert stats.n_users == 1

    def test_describe_mentions_key_numbers(self):
        jobs = [make_job()]
        text = Trace(jobs, processors=8).stats().describe()
        assert "1 jobs" in text
        assert "8 processors" in text


class TestTraceTransforms:
    def test_filter(self):
        jobs = [make_job(job_id=i, processors=i) for i in (1, 2, 3, 4)]
        trace = Trace(jobs, processors=8)
        narrow = trace.filter(lambda j: j.processors <= 2)
        assert len(narrow) == 2
        assert len(trace) == 4  # original untouched

    def test_head(self):
        jobs = [make_job(job_id=i, submit_time=float(i)) for i in range(1, 6)]
        trace = Trace(jobs, processors=8)
        assert [j.job_id for j in trace.head(2)] == [1, 2]

    def test_rebase_time(self):
        jobs = [make_job(job_id=1, submit_time=1000.0), make_job(job_id=2, submit_time=1100.0)]
        trace = Trace(jobs, processors=8, unix_start_time=500)
        rebased = trace.rebase_time()
        assert rebased[0].submit_time == 0.0
        assert rebased[1].submit_time == 100.0
        assert rebased.unix_start_time == 1500

    def test_rebase_empty_is_noop(self):
        trace = Trace([], processors=8)
        assert trace.rebase_time() is trace
