"""Unit tests for trace cleaning filters."""

import pytest

from repro.workload import Trace
from repro.workload.filters import (
    clamp_requested,
    drop_flurries,
    drop_oversized,
    drop_status,
    restrict_interval,
    standard_clean,
)

from tests.helpers import make_job


@pytest.fixture
def mixed_trace():
    jobs = [
        make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=4),
        make_job(job_id=2, submit_time=10.0, runtime=100.0, processors=8, status=5),
        make_job(job_id=3, submit_time=20.0, runtime=5000.0, processors=2,
                 requested_time=20000.0),
        make_job(job_id=4, submit_time=4000.0, runtime=50.0, processors=1),
    ]
    return Trace(jobs, processors=8)


class TestBasicFilters:
    def test_drop_status_removes_cancelled(self, mixed_trace):
        cleaned = drop_status(mixed_trace)
        assert all(j.status != 5 for j in cleaned)
        assert len(cleaned) == 3

    def test_drop_oversized_noop_on_valid_trace(self, mixed_trace):
        assert len(drop_oversized(mixed_trace)) == len(mixed_trace)

    def test_clamp_requested(self, mixed_trace):
        cleaned = clamp_requested(mixed_trace, max_seconds=10000.0)
        job3 = next(j for j in cleaned if j.job_id == 3)
        assert job3.requested_time == 10000.0
        assert job3.runtime == 5000.0

    def test_clamp_requested_clamps_runtime_too(self, mixed_trace):
        cleaned = clamp_requested(mixed_trace, max_seconds=1000.0)
        job3 = next(j for j in cleaned if j.job_id == 3)
        assert job3.requested_time == 1000.0
        assert job3.runtime == 1000.0

    def test_clamp_requested_rejects_nonpositive(self, mixed_trace):
        with pytest.raises(ValueError):
            clamp_requested(mixed_trace, 0.0)

    def test_restrict_interval(self, mixed_trace):
        cleaned = restrict_interval(mixed_trace, 5.0, 3000.0)
        assert len(cleaned) == 2
        assert cleaned[0].submit_time == 0.0  # rebased

    def test_restrict_interval_validates(self, mixed_trace):
        with pytest.raises(ValueError):
            restrict_interval(mixed_trace, 10.0, 10.0)


class TestFlurries:
    def test_flurry_removed(self):
        # one user submitting 200 jobs in a minute is a flurry
        flurry = [
            make_job(job_id=i, submit_time=float(i) * 0.2, user=1)
            for i in range(1, 201)
        ]
        normal = [
            make_job(job_id=1000 + i, submit_time=float(i) * 400.0, user=2)
            for i in range(10)
        ]
        trace = Trace(flurry + normal, processors=8)
        cleaned = drop_flurries(trace, user_jobs_per_hour=100.0)
        kept_user1 = sum(1 for j in cleaned if j.user == 1)
        assert kept_user1 == 100  # rate-capped
        assert sum(1 for j in cleaned if j.user == 2) == 10

    def test_normal_rate_untouched(self, mixed_trace):
        assert len(drop_flurries(mixed_trace)) == len(mixed_trace)

    def test_rejects_nonpositive_rate(self, mixed_trace):
        with pytest.raises(ValueError):
            drop_flurries(mixed_trace, user_jobs_per_hour=0.0)


class TestStandardClean:
    def test_pipeline_runs(self, mixed_trace):
        cleaned = standard_clean(mixed_trace, max_requested_seconds=10000.0)
        assert len(cleaned) == 3  # cancelled job dropped
        assert cleaned[0].submit_time == 0.0
        assert all(j.requested_time <= 10000.0 for j in cleaned)
