"""Test package."""
