"""Unit tests for the job model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import Job

from tests.helpers import make_job


class TestJobValidation:
    def test_valid_job_constructs(self):
        job = make_job()
        assert job.job_id == 1
        assert job.runtime == 100.0

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError, match="processors"):
            make_job(processors=0)

    def test_negative_processors_rejected(self):
        with pytest.raises(ValueError, match="processors"):
            make_job(processors=-4)

    def test_negative_submit_time_rejected(self):
        with pytest.raises(ValueError, match="submit_time"):
            make_job(submit_time=-1.0)

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            make_job(runtime=0.0)

    def test_zero_requested_rejected(self):
        with pytest.raises(ValueError, match="requested_time"):
            make_job(requested_time=0.0)

    def test_runtime_above_requested_rejected(self):
        # jobs are killed at the requested time, so this is inconsistent
        with pytest.raises(ValueError, match="exceeds requested_time"):
            make_job(runtime=200.0, requested_time=100.0)

    def test_runtime_equal_requested_allowed(self):
        job = make_job(runtime=100.0, requested_time=100.0)
        assert job.runtime == job.requested_time


class TestJobDerived:
    def test_area(self):
        job = make_job(runtime=100.0, processors=4)
        assert job.area == 400.0

    def test_requested_area(self):
        job = make_job(runtime=100.0, requested_time=300.0, processors=4)
        assert job.requested_area == 1200.0

    def test_overestimation_factor(self):
        job = make_job(runtime=100.0, requested_time=250.0)
        assert job.overestimation_factor == pytest.approx(2.5)

    def test_with_updates_returns_new_object(self):
        job = make_job()
        moved = job.with_updates(submit_time=50.0)
        assert moved.submit_time == 50.0
        assert job.submit_time == 0.0
        assert moved.job_id == job.job_id

    def test_with_updates_validates(self):
        job = make_job(runtime=100.0, requested_time=100.0)
        with pytest.raises(ValueError):
            job.with_updates(runtime=500.0)


@given(
    runtime=st.floats(min_value=1.0, max_value=1e6),
    factor=st.floats(min_value=1.0, max_value=100.0),
    processors=st.integers(min_value=1, max_value=100_000),
)
def test_job_invariants_hold_for_any_valid_job(runtime, factor, processors):
    job = Job(
        job_id=1,
        submit_time=0.0,
        runtime=runtime,
        processors=processors,
        requested_time=runtime * factor,
    )
    assert job.runtime <= job.requested_time * (1 + 1e-9)
    assert job.area == pytest.approx(runtime * processors)
    assert job.overestimation_factor >= 1.0 - 1e-9
