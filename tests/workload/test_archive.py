"""Unit tests for the workload archive metadata."""

import pytest

from repro.workload import ARCHIVE, LOG_NAMES, get_trace, save_swf, table4_rows
from repro.workload.archive import stable_seed


class TestArchiveContents:
    def test_six_logs_in_paper_order(self):
        assert LOG_NAMES == (
            "KTH-SP2",
            "CTC-SP2",
            "SDSC-SP2",
            "SDSC-BLUE",
            "Curie",
            "Metacentrum",
        )

    def test_table4_metadata_matches_paper(self):
        rows = {r[0]: r for r in table4_rows()}
        assert rows["KTH-SP2"] == ("KTH-SP2", 1996, 100, "28k", "11 Months")
        assert rows["CTC-SP2"] == ("CTC-SP2", 1996, 338, "77k", "11 Months")
        assert rows["SDSC-SP2"] == ("SDSC-SP2", 2000, 128, "59k", "24 Months")
        assert rows["SDSC-BLUE"] == ("SDSC-BLUE", 2003, 1152, "243k", "32 Months")
        assert rows["Curie"] == ("Curie", 2012, 80640, "312k", "3 Months")
        assert rows["Metacentrum"] == ("Metacentrum", 2013, 3356, "495k", "6 Months")

    def test_models_target_high_utilization(self):
        # the paper selected these logs "for their high resource utilization"
        for spec in ARCHIVE.values():
            assert spec.model.offered_load >= 0.75


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("Curie") == stable_seed("Curie")

    def test_distinct_across_logs(self):
        seeds = {stable_seed(name) for name in LOG_NAMES}
        assert len(seeds) == len(LOG_NAMES)

    def test_32bit(self):
        for name in LOG_NAMES:
            assert 0 <= stable_seed(name) < 2**32


class TestGetTrace:
    def test_unknown_log_rejected(self):
        with pytest.raises(KeyError, match="unknown log"):
            get_trace("NOPE")

    def test_synthetic_default(self):
        trace = get_trace("KTH-SP2", n_jobs=120)
        assert len(trace) == 120
        assert trace.name == "KTH-SP2"

    def test_same_call_same_trace(self):
        a = get_trace("CTC-SP2", n_jobs=100)
        b = get_trace("CTC-SP2", n_jobs=100)
        assert [j.runtime for j in a] == [j.runtime for j in b]

    def test_swf_dir_loads_real_file(self, tmp_path):
        synthetic = get_trace("KTH-SP2", n_jobs=50)
        path = tmp_path / "KTH-SP2.swf"
        save_swf(synthetic, path)
        loaded = get_trace("KTH-SP2", n_jobs=30, swf_dir=str(tmp_path))
        assert len(loaded) == 30

    def test_swf_dir_env_var(self, tmp_path, monkeypatch):
        synthetic = get_trace("Curie", n_jobs=40)
        save_swf(synthetic, tmp_path / "Curie.swf")
        monkeypatch.setenv("REPRO_SWF_DIR", str(tmp_path))
        loaded = get_trace("Curie", n_jobs=20)
        assert len(loaded) == 20
