"""Unit tests for the requested-time (user estimate) model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.workload.estimates import (
    ROUND_VALUES,
    EstimateStyle,
    pick_fixed_request,
    requested_time_for,
    round_up_to_round_value,
)


class TestRoundValues:
    def test_ladder_is_sorted(self):
        assert list(ROUND_VALUES) == sorted(ROUND_VALUES)

    def test_round_up_picks_next_value(self):
        assert round_up_to_round_value(301.0, ceiling=1e9) == 600.0

    def test_round_up_exact_value_kept(self):
        assert round_up_to_round_value(3600.0, ceiling=1e9) == 3600.0

    def test_round_up_respects_ceiling(self):
        assert round_up_to_round_value(301.0, ceiling=500.0) == 500.0

    def test_round_up_above_ladder_returns_ceiling(self):
        assert round_up_to_round_value(1e7, ceiling=2e7) == 2e7


class TestFixedRequest:
    def test_covers_typical_runtime_with_margin(self):
        fixed = pick_fixed_request(typical_runtime=1000.0, margin=2.0, ceiling=1e9)
        assert fixed >= 2000.0
        assert fixed in ROUND_VALUES


class TestRequestedTimeFor:
    def test_round_up_style(self):
        request, runtime = requested_time_for(
            EstimateStyle.ROUND_UP, runtime=500.0, believed_runtime=500.0,
            margin=2.0, fixed_request=0.0, ceiling=86400.0, floor=60.0,
        )
        assert request >= 1000.0
        assert runtime == 500.0

    def test_fixed_style_uses_fixed(self):
        request, _ = requested_time_for(
            EstimateStyle.FIXED, runtime=500.0, believed_runtime=500.0,
            margin=2.0, fixed_request=7200.0, ceiling=86400.0, floor=60.0,
        )
        assert request == 7200.0

    def test_maximum_style_uses_ceiling(self):
        request, _ = requested_time_for(
            EstimateStyle.MAXIMUM, runtime=500.0, believed_runtime=500.0,
            margin=2.0, fixed_request=7200.0, ceiling=86400.0, floor=60.0,
        )
        assert request == 86400.0

    def test_runtime_clamped_when_exceeding_request(self):
        # the scheduler kills jobs at the requested time
        request, runtime = requested_time_for(
            EstimateStyle.FIXED, runtime=9000.0, believed_runtime=500.0,
            margin=2.0, fixed_request=3600.0, ceiling=86400.0, floor=60.0,
        )
        assert request == 3600.0
        assert runtime == 3600.0

    def test_floor_applies(self):
        request, _ = requested_time_for(
            EstimateStyle.ROUND_UP, runtime=20.0, believed_runtime=20.0,
            margin=1.2, fixed_request=0.0, ceiling=86400.0, floor=1800.0,
        )
        assert request >= 1800.0


@given(
    style=st.sampled_from(list(EstimateStyle)),
    runtime=st.floats(min_value=10.0, max_value=1e6),
    believed=st.floats(min_value=10.0, max_value=1e6),
    margin=st.floats(min_value=1.0, max_value=20.0),
    fixed=st.sampled_from(ROUND_VALUES),
    ceiling=st.floats(min_value=3600.0, max_value=360000.0),
    floor=st.sampled_from([60.0, 900.0, 3600.0]),
)
def test_request_always_bounds_runtime(style, runtime, believed, margin, fixed, ceiling, floor):
    """The model invariant: returned runtime <= request <= ceiling."""
    request, clamped = requested_time_for(
        style, runtime=runtime, believed_runtime=believed, margin=margin,
        fixed_request=fixed, ceiling=ceiling, floor=floor,
    )
    assert clamped <= request
    assert request <= ceiling
    assert request >= min(floor, ceiling) - 1e-9
    assert clamped <= runtime + 1e-9
