"""Unit tests for the SWF parser and writer."""

import pytest

from repro.workload import Trace, dumps_swf, load_swf, loads_swf, save_swf

from tests.helpers import make_job

SAMPLE = """\
; Version: 2.2
; Computer: TestBox
; MaxProcs: 64
; UnixStartTime: 820454400
; Note: hand-written sample
1 0 -1 100 4 -1 -1 4 300 -1 1 7 1 3 1 0 -1 -1
2 10 -1 50 8 -1 -1 8 600 -1 1 8 1 3 1 0 -1 -1
3 20 -1 25 1 -1 -1 1 100 -1 0 7 1 4 2 0 -1 -1
"""


class TestParsing:
    def test_parses_jobs_and_header(self):
        trace, report = loads_swf(SAMPLE, name="sample")
        assert len(trace) == 3
        assert trace.processors == 64
        assert trace.unix_start_time == 820454400
        assert report.header["Computer"] == "TestBox"
        assert report.n_jobs == 3
        assert report.n_skipped == 0

    def test_field_mapping(self):
        trace, _ = loads_swf(SAMPLE)
        job = trace[0]
        assert job.job_id == 1
        assert job.submit_time == 0.0
        assert job.runtime == 100.0
        assert job.processors == 4
        assert job.requested_time == 300.0
        assert job.user == 7
        assert job.executable == 3

    def test_status_preserved(self):
        trace, _ = loads_swf(SAMPLE)
        assert trace[2].status == 0

    def test_skips_nonpositive_runtime(self):
        text = SAMPLE + "4 30 -1 0 4 -1 -1 4 300 -1 5 7 1 3 1 0 -1 -1\n"
        trace, report = loads_swf(text)
        assert len(trace) == 3
        assert report.skipped_reasons["nonpositive runtime"] == 1

    def test_skips_short_lines(self):
        text = SAMPLE + "5 30 -1 10\n"
        _, report = loads_swf(text)
        assert report.skipped_reasons["short line"] == 1

    def test_skips_non_numeric(self):
        text = SAMPLE + "x y z " * 6 + "\n"
        _, report = loads_swf(text)
        assert report.n_skipped == 1

    def test_runtime_clamped_to_requested(self):
        # runtime 400 > requested 300: grace-period record, clamp
        text = "; MaxProcs: 16\n1 0 -1 400 4 -1 -1 4 300 -1 1 7 1 3 1 0 -1 -1\n"
        trace, report = loads_swf(text)
        assert trace[0].runtime == 300.0
        assert report.n_clamped_runtime == 1

    def test_missing_requested_falls_back_to_runtime(self):
        text = "; MaxProcs: 16\n1 0 -1 400 4 -1 -1 4 -1 -1 1 7 1 3 1 0 -1 -1\n"
        trace, _ = loads_swf(text)
        assert trace[0].requested_time == 400.0

    def test_requested_processors_fallback(self):
        # allocated -1 but requested 8 -> width 8
        text = "; MaxProcs: 16\n1 0 -1 400 -1 -1 -1 8 500 -1 1 7 1 3 1 0 -1 -1\n"
        trace, _ = loads_swf(text)
        assert trace[0].processors == 8

    def test_machine_size_inferred_from_widest_job_without_header(self):
        text = "1 0 -1 400 8 -1 -1 8 500 -1 1 7 1 3 1 0 -1 -1\n"
        trace, _ = loads_swf(text)
        assert trace.processors == 8

    def test_duplicate_ids_remapped(self):
        text = (
            "; MaxProcs: 16\n"
            "7 0 -1 100 4 -1 -1 4 300 -1 1 7 1 3 1 0 -1 -1\n"
            "7 10 -1 100 4 -1 -1 4 300 -1 1 7 1 3 1 0 -1 -1\n"
        )
        trace, _ = loads_swf(text)
        ids = sorted(j.job_id for j in trace)
        assert len(set(ids)) == 2

    def test_processors_override(self):
        trace, _ = loads_swf(SAMPLE, processors=128)
        assert trace.processors == 128


class TestRoundTrip:
    def test_dumps_then_loads_preserves_jobs(self):
        jobs = [
            make_job(job_id=i, submit_time=10.0 * i, runtime=60.0 + i,
                     processors=1 + i, requested_time=600.0, user=i % 3)
            for i in range(1, 10)
        ]
        trace = Trace(jobs, processors=32, name="rt")
        text = dumps_swf(trace)
        back, report = loads_swf(text)
        assert report.n_skipped == 0
        assert len(back) == len(trace)
        assert back.processors == 32
        for a, b in zip(trace, back, strict=True):
            assert a.job_id == b.job_id
            assert a.submit_time == pytest.approx(b.submit_time)
            assert a.runtime == pytest.approx(b.runtime)
            assert a.processors == b.processors
            assert a.requested_time == pytest.approx(b.requested_time)
            assert a.user == b.user

    def test_file_round_trip(self, tmp_path):
        jobs = [make_job(job_id=i, submit_time=float(i)) for i in range(1, 5)]
        trace = Trace(jobs, processors=8, name="file-rt")
        path = tmp_path / "out.swf"
        save_swf(trace, path)
        back, _ = load_swf(path)
        assert len(back) == 4
        assert back.name == "out"

    def test_synthetic_trace_round_trips(self, kth_trace):
        text = dumps_swf(kth_trace)
        back, report = loads_swf(text)
        assert len(back) == len(kth_trace)
        assert report.n_skipped == 0
        assert back.processors == kth_trace.processors
        # runtimes are written as integer seconds; tolerate rounding
        for a, b in zip(kth_trace, back, strict=True):
            assert abs(a.runtime - b.runtime) <= 0.5 + 1e-9
