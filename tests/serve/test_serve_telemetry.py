"""Serving-layer telemetry: request latency, per-command and query counters."""

from __future__ import annotations

import io
import json

from repro.obs import Telemetry
from repro.serve import SessionServer, build_serve_session, serve_loop

from tests.helpers import make_job


def make_server(processors: int = 8) -> tuple[SessionServer, Telemetry]:
    tele = Telemetry(component="serve")
    session = build_serve_session(processors, telemetry=tele)
    return SessionServer(session, telemetry=tele), tele


def submit(
    server: SessionServer, job_id: int, when: float = 0.0, processors: int = 1
) -> None:
    job = make_job(job_id=job_id, submit_time=when, processors=processors)
    server.handle({
        "cmd": "submit", "advance": True,
        "job": {
            "job_id": job.job_id, "submit_time": job.submit_time,
            "processors": job.processors,
            "requested_time": job.requested_time, "runtime": job.runtime,
        },
    })


class TestRequestCounters:
    def test_every_request_is_counted_by_command(self):
        server, tele = make_server()
        submit(server, 1)
        server.handle({"cmd": "ping"})
        server.handle({"cmd": "drain"})
        assert tele.counter_value("serve.requests.total") == 3
        assert tele.counter_value("serve.requests.submit") == 1
        assert tele.counter_value("serve.requests.ping") == 1
        assert tele.counter_value("serve.requests.drain") == 1
        assert tele.histogram("serve.request.seconds").count == 3

    def test_errors_counted_even_for_bad_payloads(self):
        server, tele = make_server()
        server.handle_line("{broken json")
        server.handle(["not", "an", "object"])
        server.handle({"cmd": "warp"})
        server.handle({"cmd": "advance"})  # missing 'time'
        assert tele.counter_value("serve.errors") == 4
        # handler-level failures still attribute to their command
        assert tele.counter_value("serve.requests.advance") == 1

    def test_engine_counters_share_the_registry(self):
        server, tele = make_server()
        submit(server, 1)
        server.handle({"cmd": "drain"})
        assert tele.counter_value("engine.events.submit") == 1
        assert tele.counter_value("engine.events.finish") == 1


class TestQueryCounters:
    def test_warm_cold_split(self):
        server, tele = make_server()
        # machine-wide jobs: the first runs, the second must wait -- and
        # only waiting-job queries sweep (and memoise) start estimates
        submit(server, 1, processors=8)
        submit(server, 2, processors=8)
        server.handle({"cmd": "query", "job_id": 2})  # first: cold sweep
        server.handle({"cmd": "query", "job_id": 2})  # memoised: warm
        assert tele.counter_value("serve.query.cold") == 1
        assert tele.counter_value("serve.query.warm") == 1
        assert tele.histogram("serve.query.seconds").count == 2

    def test_hypothetical_probe_counted_separately(self):
        server, tele = make_server()
        job = make_job(job_id=99, submit_time=0.0)
        server.handle({
            "cmd": "query",
            "job": {
                "job_id": job.job_id, "submit_time": job.submit_time,
                "processors": job.processors,
                "requested_time": job.requested_time,
            },
        })
        assert tele.counter_value("serve.query.probe") == 1
        assert tele.counter_value("serve.query.warm") == 0
        assert tele.counter_value("serve.query.cold") == 0


class TestServeLoopTelemetry:
    def test_loop_threads_telemetry_through(self):
        tele = Telemetry(component="serve")
        session = build_serve_session(8, telemetry=tele)
        lines = [
            json.dumps({"cmd": "ping"}),
            "{torn",
            json.dumps({"cmd": "quit"}),
        ]
        out = io.StringIO()
        stats = serve_loop(
            session, io.StringIO("\n".join(lines) + "\n"), out, telemetry=tele
        )
        assert stats.n_requests == 2  # torn line never reaches dispatch
        assert tele.counter_value("serve.requests.total") == 2
        assert tele.counter_value("serve.errors") == 1

    def test_without_telemetry_nothing_breaks(self):
        session = build_serve_session(8)
        server = SessionServer(session)
        assert server.handle({"cmd": "ping"})["ok"] is True
