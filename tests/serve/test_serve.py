"""The ``repro serve`` JSONL protocol: command dispatch, error handling,
the stream loop, and parity of served answers with a batch run."""

import io
import json

import pytest

from repro.predict import ClairvoyantPredictor
from repro.sched import make_scheduler
from repro.serve import SessionServer, build_serve_session, serve_loop
from repro.sim import SimSession, simulate
from repro.workload import Trace, get_trace

from tests.helpers import make_job


def make_server(processors: int = 8, **kwargs) -> SessionServer:
    return SessionServer(build_serve_session(processors, **kwargs))


def job_payload(job_id: int, submit: float = 0.0, processors: int = 1,
                requested: float = 600.0, **extra) -> dict:
    return {
        "job_id": job_id,
        "submit_time": submit,
        "processors": processors,
        "requested_time": requested,
        **extra,
    }


class TestDispatch:
    def test_ping(self):
        server = make_server()
        response = server.handle({"cmd": "ping"})
        assert response == {"pong": True, "ok": True, "cmd": "ping", "now": 0.0}

    def test_submit_advance_query_complete_roundtrip(self):
        server = make_server()
        assert server.handle(
            {"cmd": "submit", "job": job_payload(1), "advance": True}
        )["ok"]
        answer = server.handle({"cmd": "query", "job_id": 1})
        assert answer["ok"]
        assert answer["state"] == "running"
        assert answer["start"] == 0.0
        assert answer["elapsed_us"] >= 0.0
        done = server.handle({"cmd": "complete", "job_id": 1, "time": 90.0})
        assert done["ok"]
        assert done["runtime"] == 90.0
        result = server.handle({"cmd": "result"})
        assert result["jobs"] == [[1, 0.0, 90.0]]

    def test_submit_without_advance_queues_only(self):
        server = make_server()
        server.handle({"cmd": "submit", "job": job_payload(1, submit=10.0)})
        snap = server.handle({"cmd": "snapshot"})
        assert snap["n_waiting"] == 0 and snap["n_running"] == 0
        assert snap["n_pending_events"] == 1
        server.handle({"cmd": "advance", "time": 10.0})
        assert server.handle({"cmd": "snapshot"})["n_running"] == 1

    def test_hypothetical_query_leaves_no_trace(self):
        server = make_server()
        ghost = job_payload(999, processors=2)
        answer = server.handle({"cmd": "query", "job": ghost})
        assert answer["ok"] and answer["state"] == "hypothetical"
        assert server.handle({"cmd": "stats"})["n_jobs"] == 0

    def test_machine_drain_and_restore(self):
        server = make_server(processors=4)
        server.handle({"cmd": "machine", "kind": "drain", "processors": 2})
        server.handle({"cmd": "step"})
        assert server.handle({"cmd": "snapshot"})["drained"] == 2
        server.handle({"cmd": "machine", "kind": "restore", "processors": 2})
        server.handle({"cmd": "drain"})
        assert server.handle({"cmd": "snapshot"})["drained"] == 0

    def test_held_job_query_serialises_null(self):
        server = make_server(processors=4)
        server.handle({"cmd": "machine", "kind": "drain", "processors": 2})
        server.handle({"cmd": "step"})
        server.handle(
            {"cmd": "submit", "job": job_payload(1, processors=3), "advance": True}
        )
        answer = server.handle({"cmd": "query", "job_id": 1})
        assert answer["ok"]
        assert answer["start"] is None and answer["wait"] is None
        json.dumps(answer)  # must stay strict-JSON serialisable

    def test_observe_warms_the_predictor(self):
        server = make_server(predictor="ave2")
        server.handle(
            {"cmd": "observe", "job": job_payload(100, requested=1200.0, user=3),
             "runtime": 300.0}
        )
        probe = server.handle(
            {"cmd": "query", "job": job_payload(101, requested=1200.0, user=3)}
        )
        assert probe["predicted_runtime"] == 300.0

    def test_quit_closes(self):
        server = make_server()
        assert server.handle({"cmd": "quit"})["bye"]
        assert server.closed


class TestErrors:
    def test_bad_json_line(self):
        server = make_server()
        response = server.handle_line("{nope")
        assert response["ok"] is False
        assert "bad JSON" in response["error"]

    def test_blank_line_ignored(self):
        assert make_server().handle_line("   \n") is None

    def test_unknown_command(self):
        response = make_server().handle({"cmd": "fandango"})
        assert response["ok"] is False and "unknown command" in response["error"]

    def test_non_object_request(self):
        response = make_server().handle([1, 2, 3])
        assert response["ok"] is False

    def test_missing_job_fields(self):
        response = make_server().handle(
            {"cmd": "submit", "job": {"job_id": 1}}
        )
        assert response["ok"] is False and "missing required" in response["error"]

    def test_unknown_job_fields(self):
        response = make_server().handle(
            {"cmd": "submit", "job": {**job_payload(1), "colour": "red"}}
        )
        assert response["ok"] is False and "unknown job field" in response["error"]

    def test_monotonicity_error_is_reported_not_fatal(self):
        server = make_server()
        server.handle({"cmd": "advance", "time": 100.0})
        response = server.handle(
            {"cmd": "submit", "job": job_payload(1, submit=50.0)}
        )
        assert response["ok"] is False and "behind" in response["error"]
        assert server.handle({"cmd": "ping"})["ok"]  # connection survives

    def test_errors_are_counted(self):
        server = make_server()
        server.handle({"cmd": "fandango"})
        server.handle_line("{nope")
        assert server.stats.n_errors == 2


class TestServeLoop:
    def run_protocol(self, requests: list[dict], **kwargs) -> list[dict]:
        session = build_serve_session(8, **kwargs)
        in_stream = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests)
        )
        out_stream = io.StringIO()
        serve_loop(session, in_stream, out_stream)
        return [json.loads(line) for line in out_stream.getvalue().splitlines()]

    def test_one_response_per_request(self):
        responses = self.run_protocol(
            [
                {"cmd": "submit", "job": job_payload(1), "advance": True},
                {"cmd": "query", "job_id": 1},
                {"cmd": "quit"},
            ]
        )
        assert len(responses) == 3
        assert [r["cmd"] for r in responses] == ["submit", "query", "quit"]
        assert all(r["ok"] for r in responses)

    def test_loop_stops_at_quit(self):
        responses = self.run_protocol(
            [{"cmd": "quit"}, {"cmd": "ping"}]  # ping is never served
        )
        assert len(responses) == 1

    def test_loop_survives_garbage_then_eof(self):
        session = build_serve_session(8)
        out = io.StringIO()
        stats = serve_loop(session, io.StringIO("not json\n\n"), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(responses) == 1 and responses[0]["ok"] is False
        assert stats.n_errors == 1


class TestGarbageMidStream:
    """Torn or adversarial JSONL mid-stream must answer with a
    structured error line and leave the session fully alive -- the loop
    may never tear down over one bad client write."""

    def serve(self, raw: str):
        session = build_serve_session(8)
        out = io.StringIO()
        stats = serve_loop(session, io.StringIO(raw), out)
        return stats, [json.loads(line) for line in out.getvalue().splitlines()]

    def test_garbage_between_valid_requests_keeps_session_alive(self):
        raw = "\n".join(
            [
                json.dumps(
                    {"cmd": "submit", "job": job_payload(1), "advance": True}
                ),
                '{"cmd": "submit", "job": {"job_id',  # torn mid-write
                "total garbage",
                json.dumps({"cmd": "query", "weird": True}),  # no job_id/job
                json.dumps({"cmd": "query", "job_id": 1}),
                json.dumps({"cmd": "quit"}),
            ]
        ) + "\n"
        stats, responses = self.serve(raw)
        assert len(responses) == 6  # one response per non-blank line
        assert [r["ok"] for r in responses] == [
            True, False, False, False, True, True,
        ]
        assert all("error" in bad for bad in responses[1:4])
        # the valid query after the garbage still answers about job 1
        assert responses[4]["job_id"] == 1
        assert stats.n_errors == 3

    def test_unexpected_handler_exception_answers_structured_error(
        self, monkeypatch
    ):
        server = make_server()

        def boom(request):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(server, "_cmd_snapshot", boom)
        response = server.handle({"cmd": "snapshot"})
        assert response["ok"] is False
        assert response["cmd"] == "snapshot"
        assert "internal error: RuntimeError: wires crossed" in response["error"]
        assert server.handle({"cmd": "ping"})["ok"]  # session survives
        assert server.stats.n_errors == 1

    def test_unserialisable_response_replaced_not_fatal(self, monkeypatch):
        monkeypatch.setattr(
            SessionServer, "_cmd_ping", lambda self, request: {"pong": {1, 2}}
        )
        raw = json.dumps({"cmd": "ping"}) + "\n" + json.dumps({"cmd": "quit"}) + "\n"
        stats, responses = self.serve(raw)
        assert responses[0]["ok"] is False
        assert "unserialisable" in responses[0]["error"]
        assert responses[1]["ok"] is True  # quit still served; loop intact
        assert stats.n_errors == 1


class TestServedParityWithBatch:
    """Conservative + clairvoyant: the served query at submit time must
    equal the start time an equivalent batch run produces (runtimes are
    clamped >= min_prediction so clairvoyance is exact)."""

    @pytest.fixture(scope="class")
    def clamped_trace(self) -> Trace:
        base = get_trace("KTH-SP2", n_jobs=40)
        jobs = [
            job.with_updates(
                runtime=max(job.runtime, 60.0),
                requested_time=max(job.requested_time, 60.0),
            )
            for job in base
        ]
        return Trace(jobs, processors=base.processors, name="serve-parity")

    def test_served_schedule_and_queries_match_batch(self, clamped_trace):
        batch = simulate(
            clamped_trace, make_scheduler("conservative"), ClairvoyantPredictor()
        )
        batch_rows = sorted(
            [r.job_id, r.start_time, r.end_time] for r in batch
        )
        batch_starts = {r.job_id: r.start_time for r in batch}

        session = SimSession(
            clamped_trace.processors,
            make_scheduler("conservative"),
            ClairvoyantPredictor(),
        )
        server = SessionServer(session)
        for job in clamped_trace:
            payload = {
                "job_id": job.job_id,
                "submit_time": job.submit_time,
                "processors": job.processors,
                "requested_time": job.requested_time,
                "runtime": job.runtime,
                "user": job.user,
            }
            assert server.handle(
                {"cmd": "submit", "job": payload, "advance": True}
            )["ok"]
            answer = server.handle({"cmd": "query", "job_id": job.job_id})
            assert answer["start"] == batch_starts[job.job_id], (
                f"served estimate diverged for job {job.job_id}"
            )
        server.handle({"cmd": "drain"})
        result = server.handle({"cmd": "result"})
        assert result["jobs"] == batch_rows


class TestCliServe:
    def test_main_serve_roundtrip(self, monkeypatch, capsys):
        from repro.cli import main

        requests = [
            {"cmd": "submit", "job": job_payload(1), "advance": True},
            {"cmd": "query", "job_id": 1},
            {"cmd": "quit"},
        ]
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
        )
        assert main(["serve", "--processors", "8"]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert len(responses) == 3 and all(r["ok"] for r in responses)
        assert "serve session closed" in captured.err
