"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload import Trace, get_trace

from tests.helpers import make_job, make_record

__all__ = ["make_job", "make_record"]


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_trace() -> Trace:
    """Three-job trace reproducing the paper's Figure 2 scenario."""
    jobs = [
        make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                 requested_time=100.0),
        make_job(job_id=2, submit_time=0.0, runtime=50.0, processors=3,
                 requested_time=50.0),
        make_job(job_id=3, submit_time=0.0, runtime=90.0, processors=1,
                 requested_time=90.0),
    ]
    return Trace(jobs, processors=4, name="figure2")


@pytest.fixture(scope="session")
def kth_trace() -> Trace:
    """A small KTH-class synthetic trace shared across tests (read-only)."""
    return get_trace("KTH-SP2", n_jobs=600)


@pytest.fixture(scope="session")
def curie_trace() -> Trace:
    """A small Curie-class synthetic trace shared across tests (read-only)."""
    return get_trace("Curie", n_jobs=600)
