"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.results import JobRecord
from repro.workload import Job, Trace, get_trace


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


def make_job(
    job_id: int = 1,
    submit_time: float = 0.0,
    runtime: float = 100.0,
    processors: int = 1,
    requested_time: float | None = None,
    user: int = 1,
    **kwargs,
) -> Job:
    """Job factory with sane defaults (requested defaults to 2x runtime)."""
    if requested_time is None:
        requested_time = 2.0 * runtime
    return Job(
        job_id=job_id,
        submit_time=submit_time,
        runtime=runtime,
        processors=processors,
        requested_time=requested_time,
        user=user,
        **kwargs,
    )


def make_record(
    job_id: int = 1,
    submit_time: float = 0.0,
    runtime: float = 100.0,
    processors: int = 1,
    requested_time: float | None = None,
    predicted_runtime: float | None = None,
    user: int = 1,
) -> JobRecord:
    """JobRecord factory; prediction defaults to the requested time."""
    job = make_job(
        job_id=job_id,
        submit_time=submit_time,
        runtime=runtime,
        processors=processors,
        requested_time=requested_time,
        user=user,
    )
    record = JobRecord(job=job)
    record.predicted_runtime = (
        predicted_runtime if predicted_runtime is not None else job.requested_time
    )
    record.initial_prediction = record.predicted_runtime
    record.raw_prediction = record.predicted_runtime
    return record


@pytest.fixture
def tiny_trace() -> Trace:
    """Three-job trace reproducing the paper's Figure 2 scenario."""
    jobs = [
        make_job(job_id=1, submit_time=0.0, runtime=100.0, processors=3,
                 requested_time=100.0),
        make_job(job_id=2, submit_time=0.0, runtime=50.0, processors=3,
                 requested_time=50.0),
        make_job(job_id=3, submit_time=0.0, runtime=90.0, processors=1,
                 requested_time=90.0),
    ]
    return Trace(jobs, processors=4, name="figure2")


@pytest.fixture(scope="session")
def kth_trace() -> Trace:
    """A small KTH-class synthetic trace shared across tests (read-only)."""
    return get_trace("KTH-SP2", n_jobs=600)


@pytest.fixture(scope="session")
def curie_trace() -> Trace:
    """A small Curie-class synthetic trace shared across tests (read-only)."""
    return get_trace("Curie", n_jobs=600)
