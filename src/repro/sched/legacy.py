"""The seed per-pass-rescan schedulers, kept as correctness oracles.

These are the pre-profile implementations of EASY and conservative
backfilling: every scheduling pass rebuilds the machine's future
availability from scratch (sorting the full predicted-release list,
or reconstructing a whole :class:`AvailabilityProfile` release by
release).  They are retained verbatim so that

* the equivalence test suite can assert the profile-based hot path
  produces *identical* schedules, job for job, and
* ``benchmarks/bench_engine.py`` can measure the speedup against the
  exact seed behaviour.

Do not use these in campaigns; they are O(running x queued) per pass.
"""

from __future__ import annotations

from ..sim.machine import Machine
from ..sim.profile import AvailabilityProfile
from ..sim.results import JobRecord
from .base import Scheduler
from .easy import compute_shadow
from .ordering import BACKFILL_ORDERS, order_queue

__all__ = ["LegacyEasyScheduler", "LegacyConservativeScheduler"]


class _SeedProfile(AvailabilityProfile):
    """Seed availability profile with the original anchor-probing fit query.

    The modern :meth:`AvailabilityProfile.earliest_fit` is a single O(S)
    sweep; the seed probed ``min_available`` from every breakpoint in
    turn (O(S^2) per query).  The seed behaviour is preserved here so the
    legacy schedulers benchmark exactly what the seed shipped.
    """

    def earliest_fit(self, processors: int, duration: float, not_before: float) -> float:
        if processors > self.processors:
            raise ValueError(
                f"cannot fit {processors} processors on an {self.processors}-machine"
            )
        anchors = [max(not_before, self._times[0])]
        anchors.extend(t for t in self._times if t > anchors[0])
        for anchor in anchors:
            if self.min_available(anchor, duration) >= processors:
                return anchor
        raise AssertionError(
            "no fit found; the final profile segment should make this impossible"
        )


class LegacyEasyScheduler(Scheduler):
    """Seed EASY backfilling: full release rescan every pass."""

    def __init__(self, backfill_order: str = "fcfs") -> None:
        super().__init__()
        if backfill_order not in BACKFILL_ORDERS:
            raise KeyError(
                f"unknown backfill order {backfill_order!r}; "
                f"known: {', '.join(BACKFILL_ORDERS)}"
            )
        self.backfill_order = backfill_order
        self.name = "easy" if backfill_order == "fcfs" else f"easy-{backfill_order}"

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        started: list[JobRecord] = []
        free = machine.free

        # Phase 1: start the queue head(s) while they fit (FCFS priority).
        while self._queue and self._queue[0].processors <= free:
            record = self._queue.pop(0)
            free -= record.processors
            started.append(record)
        if not self._queue:
            return started

        # Phase 2: the head cannot start; compute its reservation.  The
        # release profile must include the jobs we just decided to start.
        releases = machine.predicted_releases(now)
        for rec in started:
            releases.append((now + rec.predicted_runtime, rec.processors))
        releases.sort()
        head = self._queue[0]
        shadow, extra = compute_shadow(head.processors, free, releases, now)

        # Phase 3: backfill.  A candidate may start iff it fits now and
        # does not delay the head's reservation.
        candidates = order_queue(self._queue[1:], self.backfill_order)
        backfilled_ids: set[int] = set()
        for record in candidates:
            if record.processors > free:
                continue
            finishes_before_shadow = now + record.predicted_runtime <= shadow
            if finishes_before_shadow or record.processors <= extra:
                free -= record.processors
                if not finishes_before_shadow:
                    extra -= record.processors
                started.append(record)
                backfilled_ids.add(record.job_id)
        if backfilled_ids:
            self._queue = [r for r in self._queue if r.job_id not in backfilled_ids]
        return started


class LegacyConservativeScheduler(Scheduler):
    """Seed conservative backfilling: profile rebuilt every pass."""

    def __init__(self, reservation_order: str = "fcfs") -> None:
        super().__init__()
        if reservation_order not in BACKFILL_ORDERS:
            raise KeyError(
                f"unknown reservation order {reservation_order!r}; "
                f"known: {', '.join(BACKFILL_ORDERS)}"
            )
        self.reservation_order = reservation_order
        self.name = (
            "conservative"
            if reservation_order == "fcfs"
            else f"conservative-{reservation_order}"
        )

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        if not self._queue:
            return []
        profile = _SeedProfile.from_releases(
            machine.processors, now, machine.free, machine.predicted_releases(now)
        )
        started: list[JobRecord] = []
        started_ids: set[int] = set()
        for record in order_queue(self._queue, self.reservation_order):
            start = profile.earliest_fit(
                record.processors, record.predicted_runtime, not_before=now
            )
            profile.reserve(start, record.predicted_runtime, record.processors)
            if start == now:
                started.append(record)
                started_ids.add(record.job_id)
        if started_ids:
            self._queue = [r for r in self._queue if r.job_id not in started_ids]
        return started
