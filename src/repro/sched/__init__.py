"""Scheduling algorithms: FCFS, EASY (+SJBF order), conservative backfilling."""

from .base import Scheduler
from .conservative import ConservativeScheduler
from .easy import EasyScheduler, compute_shadow
from .fcfs import FcfsScheduler
from .legacy import LegacyConservativeScheduler, LegacyEasyScheduler
from .ordering import BACKFILL_ORDERS, order_queue
from .priority import MultifactorScheduler, PriorityWeights
from .profile_structure import IncrementalProfile, ReleaseTable

__all__ = [
    "Scheduler",
    "ConservativeScheduler",
    "EasyScheduler",
    "compute_shadow",
    "FcfsScheduler",
    "LegacyConservativeScheduler",
    "LegacyEasyScheduler",
    "MultifactorScheduler",
    "PriorityWeights",
    "IncrementalProfile",
    "ReleaseTable",
    "BACKFILL_ORDERS",
    "order_queue",
]


def make_scheduler(spec) -> Scheduler:
    """Construct a scheduler from the unified component registry.

    Accepts a legacy string (``fcfs``, ``easy``, ``easy-sjbf``,
    ``easy-saf``, ``easy-narrow``, ``conservative``,
    ``conservative-sjbf``, ``multifactor``[``-sjbf``], and the seed
    ``legacy-*`` oracles -- the ``-<order>`` suffix is shorthand for the
    ``order`` param), a ``{"name": "easy", "params": {"order": "sjbf"}}``
    dict, or a ready :class:`repro.spec.ComponentSpec`.
    """
    from ..spec.components import scheduler_registry

    return scheduler_registry().build(spec)
