"""Scheduling algorithms: FCFS, EASY (+SJBF order), conservative backfilling."""

from .base import Scheduler
from .conservative import ConservativeScheduler
from .easy import EasyScheduler, compute_shadow
from .fcfs import FcfsScheduler
from .legacy import LegacyConservativeScheduler, LegacyEasyScheduler
from .ordering import BACKFILL_ORDERS, order_queue
from .priority import MultifactorScheduler, PriorityWeights
from .profile_structure import IncrementalProfile, ReleaseTable

__all__ = [
    "Scheduler",
    "ConservativeScheduler",
    "EasyScheduler",
    "compute_shadow",
    "FcfsScheduler",
    "LegacyConservativeScheduler",
    "LegacyEasyScheduler",
    "MultifactorScheduler",
    "PriorityWeights",
    "IncrementalProfile",
    "ReleaseTable",
    "BACKFILL_ORDERS",
    "order_queue",
]


def make_scheduler(name: str) -> Scheduler:
    """Construct a scheduler from its registry name.

    Known names: ``fcfs``, ``easy``, ``easy-sjbf``, ``easy-saf``,
    ``easy-narrow``, ``conservative``, ``conservative-sjbf``.
    """
    registry = {
        "fcfs": lambda: FcfsScheduler(),
        "easy": lambda: EasyScheduler("fcfs"),
        "easy-sjbf": lambda: EasyScheduler("sjbf"),
        "easy-saf": lambda: EasyScheduler("saf"),
        "easy-narrow": lambda: EasyScheduler("narrow"),
        "conservative": lambda: ConservativeScheduler("fcfs"),
        "conservative-sjbf": lambda: ConservativeScheduler("sjbf"),
        "multifactor": lambda: MultifactorScheduler(),
        "multifactor-sjbf": lambda: MultifactorScheduler(backfill_order="sjbf"),
        # seed per-pass-rescan implementations, kept as correctness and
        # performance oracles (see sched/legacy.py)
        "legacy-easy": lambda: LegacyEasyScheduler("fcfs"),
        "legacy-easy-sjbf": lambda: LegacyEasyScheduler("sjbf"),
        "legacy-conservative": lambda: LegacyConservativeScheduler("fcfs"),
        "legacy-conservative-sjbf": lambda: LegacyConservativeScheduler("sjbf"),
    }
    try:
        return registry[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {', '.join(registry)}"
        ) from None
