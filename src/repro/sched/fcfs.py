"""Pure First-Come-First-Served scheduling (no backfilling).

The strictest baseline: jobs start in arrival order; the queue head
blocks everything behind it until enough processors free up.  The paper
uses EASY as its baseline, but pure FCFS is the natural lower bound and
is included for ablation (backfilling's own contribution is the gap
between FCFS and EASY).
"""

from __future__ import annotations

from ..sim.machine import Machine
from ..sim.results import JobRecord
from .base import Scheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """Start jobs strictly in arrival order."""

    name = "fcfs"

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        started: list[JobRecord] = []
        free = machine.free
        while self._queue and self._queue[0].processors <= free:
            record = self._queue.pop(0)
            free -= record.processors
            started.append(record)
        return started
