"""Multifactor priority queue ordering (SLURM-style extension).

The paper (Section 2.1) notes that SLURM "includes the possibility to
sort the waiting jobs according to various priorities (like by increasing
age, size or share factors)" and that its analysis "can be extended
easily to other scheduling policies".  This module provides that
extension: an EASY-style scheduler whose *queue priority* (who holds the
reservation) is a weighted multifactor score rather than plain FCFS,
while the backfill scan order stays pluggable.

Factors (all normalised to [0, 1] at evaluation time):

* ``age``   -- waiting time relative to the longest current wait;
* ``size``  -- small jobs first (1 - q/m), SLURM's "job size" factor can
  be flipped with a negative weight;
* ``short`` -- short *predicted* jobs first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.machine import Machine
from ..sim.results import JobRecord
from .easy import EasyScheduler

__all__ = ["PriorityWeights", "MultifactorScheduler"]


@dataclass(frozen=True)
class PriorityWeights:
    """Relative weights of the multifactor priority terms."""

    age: float = 1.0
    size: float = 0.0
    short: float = 0.0

    def __post_init__(self) -> None:
        if self.age < 0 or self.size < 0 or self.short < 0:
            raise ValueError("priority weights must be non-negative")
        if self.age == self.size == self.short == 0:
            raise ValueError("at least one priority weight must be positive")


class MultifactorScheduler(EasyScheduler):
    """EASY backfilling with a multifactor queue priority.

    The highest-priority waiting job holds the single reservation; the
    backfill phase is inherited from :class:`EasyScheduler`.
    """

    def __init__(
        self,
        weights: PriorityWeights | None = None,
        backfill_order: str = "fcfs",
    ) -> None:
        super().__init__(backfill_order=backfill_order)
        self.weights = weights or PriorityWeights()
        self.name = f"multifactor-{backfill_order}"

    def _priority(self, record: JobRecord, now: float, machine: Machine) -> float:
        longest_wait = max(
            (now - r.submit_time for r in self._queue), default=0.0
        )
        age = (now - record.submit_time) / longest_wait if longest_wait > 0 else 0.0
        size = 1.0 - record.processors / machine.processors
        # "short first" normalised by the largest prediction in the queue
        longest_pred = max((r.predicted_runtime for r in self._queue), default=1.0)
        short = 1.0 - record.predicted_runtime / longest_pred if longest_pred > 0 else 0.0
        w = self.weights
        return w.age * age + w.size * size + w.short * short

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        # Re-rank the queue by multifactor priority, then run the standard
        # EASY phases on the re-ranked queue.
        if self._queue:
            self._queue.sort(
                key=lambda r: (-self._priority(r, now, machine), r.submit_time, r.job_id)
            )
        return super().select_jobs(now, machine)
