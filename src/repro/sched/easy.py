"""EASY backfilling (aggressive backfilling with one reservation).

The algorithm (paper Section 5.1, originally Lifka 1995):

1. Start waiting jobs in FCFS order while they fit in the free processors.
2. When the queue head does not fit, give it a *reservation*: the
   **shadow time** is the earliest instant at which, according to the
   predicted completions of running jobs, enough processors accumulate
   for the head.  Processors beyond the head's need at that instant are
   the **extra** processors.
3. Scan the remaining waiting jobs (in FCFS order for classic EASY, in
   shortest-predicted-first order for EASY-SJBF) and *backfill* any job
   that fits now and either (a) is predicted to finish before the shadow
   time, or (b) uses only extra processors -- either way the head's
   reservation is not delayed **with respect to current predictions**.

Under-predictions can invalidate the reservation; the engine then fires
correction events and scheduling is recomputed (Section 5.2 of the
paper), which is exactly how the on-line algorithm absorbs misprediction.
"""

from __future__ import annotations

from ..sim.machine import Machine
from ..sim.results import JobRecord
from .base import Scheduler
from .ordering import BACKFILL_ORDERS, order_queue
from .profile_structure import ReleaseTable

__all__ = ["EasyScheduler", "compute_shadow"]


def compute_shadow(
    head_processors: int, free: int, releases: list[tuple[float, int]], now: float
) -> tuple[float, int]:
    """Compute the head job's (shadow time, extra processors).

    ``releases`` is the machine's predicted-release profile, soonest
    first.  Returns ``(shadow_time, extra)`` where ``extra`` is the
    number of processors that will still be free at ``shadow_time`` after
    the head starts; jobs running past the shadow may use at most
    ``extra`` processors.

    Raises :class:`ValueError` if the head can never start (it is wider
    than the machine) -- trace validation prevents that upstream.
    """
    available = free
    if head_processors <= available:
        return now, available - head_processors
    shadow: float | None = None
    for predicted_end, processors in releases:
        if shadow is not None and predicted_end > shadow:
            break
        available += processors
        if shadow is None and available >= head_processors:
            # Keep absorbing releases predicted at the same instant: they
            # are free at the shadow too and belong to the extra pool.
            shadow = max(predicted_end, now)
    if shadow is None:
        raise ValueError(
            f"head job needing {head_processors} processors can never start "
            f"(free={free}, releases={releases})"
        )
    return shadow, available - head_processors


class EasyScheduler(Scheduler):
    """EASY backfilling with a pluggable backfill-candidate order.

    ``backfill_order='fcfs'`` is classic EASY; ``'sjbf'`` is EASY-SJBF
    (Tsafrir et al.), the variant the paper's winning triple uses.

    The machine's predicted-release profile is tracked incrementally in a
    :class:`ReleaseTable` fed by the engine's start/finish/correction
    deltas, so the shadow-time query walks a short sorted prefix instead
    of rebuilding and sorting the full release list every pass.  The
    schedule produced is identical to the seed per-pass rescan (kept as
    :class:`repro.sched.legacy.LegacyEasyScheduler` for verification).
    """

    def __init__(self, backfill_order: str = "fcfs") -> None:
        super().__init__()
        if backfill_order not in BACKFILL_ORDERS:
            raise KeyError(
                f"unknown backfill order {backfill_order!r}; "
                f"known: {', '.join(BACKFILL_ORDERS)}"
            )
        self.backfill_order = backfill_order
        self.name = "easy" if backfill_order == "fcfs" else f"easy-{backfill_order}"
        self._releases = ReleaseTable()
        #: set on the first delta; drivers that never feed deltas (unit
        #: tests poking select_jobs by hand) get a full resync per pass.
        self._delta_fed = False
        #: backfill-candidate order memoised across passes; corrections
        #: never reorder *waiting* jobs, so pure-correction timestamps
        #: (EXPIRE storms) reuse the previous pass's sort.
        self._order_cache: list[JobRecord] | None = None

    # -- engine delta feed --------------------------------------------------
    def on_submit(self, record: JobRecord) -> None:
        super().on_submit(record)
        self._order_cache = None

    def on_start(self, record: JobRecord, now: float) -> None:
        self._delta_fed = True
        self._releases.add(
            record.job_id, now + record.predicted_runtime, record.processors
        )

    def on_finish(self, record: JobRecord) -> None:
        self._releases.discard(record.job_id)

    def on_correction(self, record: JobRecord) -> None:
        self._releases.move(
            record.job_id, record.start_time + record.predicted_runtime
        )

    def on_corrections(self, records) -> None:
        # a same-timestamp correction storm costs one table re-sort
        if len(records) == 1:
            self.on_correction(records[0])
            return
        self._releases.move_many(
            [(r.job_id, r.start_time + r.predicted_runtime) for r in records]
        )

    # -- session queries ------------------------------------------------------
    def introspect(self) -> dict[str, float]:
        """Release-table length = the sweep a shadow-time query may walk."""
        return {"release_table": float(len(self._releases))}

    def estimated_starts(self, now, machine, extra=()):
        """Guaranteed-start estimates served from the release table.

        Same reservation-in-queue-order semantics as the base
        implementation, but the availability profile is built from the
        incrementally-sorted :class:`ReleaseTable` instead of re-sorting
        the machine's running set on every query.
        """
        if not self._delta_fed or not self._releases.in_sync_with(machine):
            return super().estimated_starts(now, machine, extra)
        profile = self._releases.as_profile(machine.processors, now, machine.free)
        return self._reserve_in_order(profile, (*self.queue, *extra), now)

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        started: list[JobRecord] = []
        free = machine.free

        # Phase 1: start the queue head(s) while they fit (FCFS priority).
        while self._queue and self._queue[0].processors <= free:
            record = self._queue.pop(0)
            self._order_cache = None
            free -= record.processors
            started.append(record)
        if not self._queue:
            return started

        # Phase 2: the head cannot start; compute its reservation.  The
        # release profile must include the jobs we just decided to start
        # (the engine feeds them to the table only after this pass).
        if not self._delta_fed or not self._releases.in_sync_with(machine):
            # driven outside the engine (unit tests): rebuild from state
            self._releases.resync(machine)
        head = self._queue[0]
        if head.processors > machine.processors - machine.drained:
            # The head is wider than the undrained capacity (live-session
            # drains only): no reservation exists, and backfilling without
            # one would starve it, so the whole queue holds for a restore.
            return started
        shadow, extra = self._releases.shadow(
            head.processors,
            free,
            now,
            [(now + rec.predicted_runtime, rec.processors) for rec in started],
        )

        # Phase 3: backfill.  A candidate may start iff it fits now and
        # does not delay the head's reservation.
        started.extend(self._backfill(now, free, shadow, extra))
        return started

    def _backfill(
        self, now: float, free: int, shadow: float, extra: int
    ) -> list[JobRecord]:
        """Pick the backfill set given the head's reservation.

        The overridable core of phase 3: everything above (head starts,
        reservation computation, release-table upkeep) is shared by every
        EASY-family scheduler; only *which* eligible candidates start is
        policy.  Implementations must remove the jobs they return from
        ``self._queue`` and must respect the reservation invariant (a
        returned job fits ``free`` and either finishes before ``shadow``
        or consumes only ``extra`` processors).

        The sorted view is reused verbatim when no submit/start/backfill
        changed the waiting set since the previous pass.
        """
        if self._order_cache is None:
            self._order_cache = order_queue(self._queue[1:], self.backfill_order)
        candidates = self._order_cache
        backfilled: list[JobRecord] = []
        backfilled_ids: set[int] = set()
        for record in candidates:
            if record.processors > free:
                continue
            finishes_before_shadow = now + record.predicted_runtime <= shadow
            if finishes_before_shadow or record.processors <= extra:
                free -= record.processors
                if not finishes_before_shadow:
                    extra -= record.processors
                backfilled.append(record)
                backfilled_ids.add(record.job_id)
        if backfilled_ids:
            self._queue = [r for r in self._queue if r.job_id not in backfilled_ids]
            self._order_cache = None
        return backfilled
