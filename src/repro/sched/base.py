"""Scheduler interface.

A scheduler owns the waiting queue.  The engine notifies it of
submissions and asks it, at every event boundary, which waiting jobs to
start *now*.  Schedulers read only scheduler-visible information: job
descriptions, *predicted* running times (``record.predicted_runtime``)
and the machine's predicted-release profile -- never actual runtimes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..sim.machine import Machine
from ..sim.results import JobRecord

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for queue-based schedulers."""

    #: short identifier used in reports and triple names.
    name: str = "base"

    def __init__(self) -> None:
        self._queue: list[JobRecord] = []

    # -- engine-facing protocol --------------------------------------------
    def on_submit(self, record: JobRecord) -> None:
        """A job has been released; add it to the waiting queue."""
        self._queue.append(record)

    def on_start(self, record: JobRecord, now: float) -> None:
        """A selected job was placed on the machine.  Default: nothing.

        Profile-based schedulers use this delta (with :meth:`on_finish`
        and :meth:`on_correction`) to maintain their availability
        structures incrementally instead of rescanning machine state.
        """

    def on_finish(self, record: JobRecord) -> None:
        """A job completed.  Default: nothing (queue unaffected)."""

    def on_correction(self, record: JobRecord) -> None:
        """A running job's prediction was corrected.  Default: nothing."""

    def on_corrections(self, records: Sequence[JobRecord]) -> None:
        """All corrections of one event timestamp, as a single batch.

        The engine collects every EXPIRE-triggered correction of a
        timestamp and delivers them together, *before* the scheduling
        pass.  The default fans out to :meth:`on_correction` per record;
        incremental schedulers override it to pay one availability
        re-sort/rebuild per storm instead of one per job.
        """
        for record in records:
            self.on_correction(record)

    @abstractmethod
    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        """Jobs to start at ``now``.

        Implementations must remove returned jobs from their queue and
        must only return jobs that fit the machine *in the order given*
        (the engine starts them sequentially and will raise otherwise).
        """

    # -- introspection -------------------------------------------------------
    @property
    def queue(self) -> tuple[JobRecord, ...]:
        """Waiting jobs in priority order (read-only view)."""
        return tuple(self._queue)

    @property
    def queue_length(self) -> int:
        return len(self._queue)
