"""Scheduler interface.

A scheduler owns the waiting queue.  The engine notifies it of
submissions and asks it, at every event boundary, which waiting jobs to
start *now*.  Schedulers read only scheduler-visible information: job
descriptions, *predicted* running times (``record.predicted_runtime``)
and the machine's predicted-release profile -- never actual runtimes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from ..sim.machine import Machine
from ..sim.profile import AvailabilityProfile
from ..sim.results import JobRecord

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for queue-based schedulers."""

    #: short identifier used in reports and triple names.
    name: str = "base"

    def __init__(self) -> None:
        self._queue: list[JobRecord] = []

    # -- engine-facing protocol --------------------------------------------
    def on_submit(self, record: JobRecord) -> None:
        """A job has been released; add it to the waiting queue."""
        self._queue.append(record)

    def on_start(self, record: JobRecord, now: float) -> None:
        """A selected job was placed on the machine.  Default: nothing.

        Profile-based schedulers use this delta (with :meth:`on_finish`
        and :meth:`on_correction`) to maintain their availability
        structures incrementally instead of rescanning machine state.
        """

    def on_finish(self, record: JobRecord) -> None:
        """A job completed.  Default: nothing (queue unaffected)."""

    def on_correction(self, record: JobRecord) -> None:
        """A running job's prediction was corrected.  Default: nothing."""

    def on_corrections(self, records: Sequence[JobRecord]) -> None:
        """All corrections of one event timestamp, as a single batch.

        The engine collects every EXPIRE-triggered correction of a
        timestamp and delivers them together, *before* the scheduling
        pass.  The default fans out to :meth:`on_correction` per record;
        incremental schedulers override it to pay one availability
        re-sort/rebuild per storm instead of one per job.
        """
        for record in records:
            self.on_correction(record)

    def on_machine_change(self, now: float, machine: Machine) -> None:
        """The machine's capacity changed (drain/restore).  Default: nothing.

        Schedulers that cache availability derived from the machine's
        free count (not just the running set) must refresh it here; the
        count-based ``in_sync_with`` checks cannot see capacity moves.
        """

    @abstractmethod
    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        """Jobs to start at ``now``.

        Implementations must remove returned jobs from their queue and
        must only return jobs that fit the machine *in the order given*
        (the engine starts them sequentially and will raise otherwise).
        """

    # -- session queries -----------------------------------------------------
    def estimated_starts(
        self,
        now: float,
        machine: Machine,
        extra: Sequence[JobRecord] = (),
    ) -> dict[int, float]:
        """Side-effect-free start estimates for the waiting jobs.

        Gives every waiting job (plus any ``extra`` hypothetical records,
        appended behind the queue) a reservation in queue-priority order
        on the predicted availability profile, and returns each job's
        reserved start -- conservative backfilling's exact allocation,
        and for EASY-family schedulers the guaranteed-start bound that
        generalises the head's shadow time.  The default recomputes the
        profile from the machine; structure-backed schedulers override
        this to serve it from their incremental state.
        """
        profile = AvailabilityProfile.from_releases(
            machine.processors, now, machine.free, machine.predicted_releases(now)
        )
        return self._reserve_in_order(profile, (*self.queue, *extra), now)

    @staticmethod
    def _reserve_in_order(
        profile: AvailabilityProfile,
        records: Iterable[JobRecord],
        now: float,
    ) -> dict[int, float]:
        """Reserve each record at its earliest fit, in the order given.

        A record wider than the profile's steady-state capacity (possible
        only when processors are drained on a live session) is *held*: it
        gets ``inf`` and takes no reservation.
        """
        starts: dict[int, float] = {}
        for record in records:
            if record.processors > profile.terminal_available:
                starts[record.job_id] = float("inf")
                continue
            start = profile.earliest_fit(
                record.processors, record.predicted_runtime, not_before=now
            )
            profile.reserve(start, record.predicted_runtime, record.processors)
            starts[record.job_id] = start
        return starts

    # -- introspection -------------------------------------------------------
    def introspect(self) -> dict[str, float]:
        """Sizes of the scheduler's internal availability structures.

        Sampled by the session once per scheduling pass when telemetry
        is enabled (surfaced as ``engine.sched.<key>`` histograms), so
        implementations must keep this O(1) and side-effect-free.  The
        base scheduler has no structure beyond the queue -- which the
        session samples itself -- so the default is empty.
        """
        return {}

    @property
    def queue(self) -> tuple[JobRecord, ...]:
        """Waiting jobs in priority order (read-only view)."""
        return tuple(self._queue)

    @property
    def queue_length(self) -> int:
        return len(self._queue)
