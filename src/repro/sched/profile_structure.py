"""Incremental availability structures for the scheduling hot path.

The seed implementation recomputed the machine's future availability
from scratch at every scheduling pass: EASY sorted the full
predicted-release list (O(running log running) per pass) and
conservative rebuilt a whole :class:`~repro.sim.profile.AvailabilityProfile`
release by release (O(running^2) per pass).  Over a week-long trace that
per-pass rescan dominates simulation time.

This module provides the two structures that replace it, both maintained
*across* scheduling passes and updated by the engine's start/finish/
re-prediction deltas (see :meth:`repro.sched.base.Scheduler.on_start`
and friends):

* :class:`ReleaseTable` -- a sorted multiset of the running jobs'
  ``(predicted end, processors)`` pairs with O(log n) lookup and
  O(log n + memmove) updates.  EASY's shadow-time query walks only the
  prefix of releases it needs instead of rebuilding and sorting the
  whole list.
* :class:`IncrementalProfile` -- a persistent step function of free
  processors over future time (the conservative scheduler's reservation
  substrate), updated in place on every start/finish/correction and
  snapshot-copied per pass instead of rebuilt.

Both structures can resynchronise from a :class:`~repro.sim.machine.Machine`
when driven outside the engine (unit tests call ``select_jobs`` by hand),
so correctness never depends on the delta feed being wired up.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..sim.profile import AvailabilityProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.machine import Machine

__all__ = ["ReleaseTable", "IncrementalProfile"]


class ReleaseTable:
    """Sorted multiset of running jobs' ``(predicted end, processors)``.

    Entries are kept sorted by ``(end, job_id)`` so updates bisect to a
    deterministic position.  Query-time clamping of past predicted ends
    to ``now`` (the machine's "about to finish" convention) preserves the
    order, so no re-sort is ever needed.
    """

    __slots__ = ("_entries", "_by_job")

    def __init__(self) -> None:
        #: sorted (predicted_end, job_id, processors) per running job.
        self._entries: list[tuple[float, int, int]] = []
        self._by_job: dict[int, tuple[float, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- delta feed ----------------------------------------------------------
    def add(self, job_id: int, predicted_end: float, processors: int) -> None:
        """A job started: it will release ``processors`` at ``predicted_end``."""
        if job_id in self._by_job:
            raise ValueError(f"job {job_id} is already tracked")
        bisect.insort(self._entries, (predicted_end, job_id, processors))
        self._by_job[job_id] = (predicted_end, processors)

    def discard(self, job_id: int) -> None:
        """A job finished: drop its release (no-op if untracked)."""
        entry = self._by_job.pop(job_id, None)
        if entry is None:
            return
        end, processors = entry
        idx = bisect.bisect_left(self._entries, (end, job_id, processors))
        del self._entries[idx]

    def move(self, job_id: int, new_end: float) -> None:
        """A job's prediction was corrected: shift its release time."""
        end, processors = self._by_job[job_id]
        idx = bisect.bisect_left(self._entries, (end, job_id, processors))
        del self._entries[idx]
        bisect.insort(self._entries, (new_end, job_id, processors))
        self._by_job[job_id] = (new_end, processors)

    def move_many(self, moves: Sequence[tuple[int, float]] | dict[int, float]) -> None:
        """Shift several jobs' release times with **one** re-sort.

        ``moves`` maps ``job_id -> new_end`` (a dict, or ``(job_id,
        new_end)`` pairs; later duplicates win).  Equivalent to calling
        :meth:`move` per job, but a correction storm costs one filter
        pass plus one sort of the (mostly ordered) entry list instead of
        a per-job bisect + O(n) memmove.
        """
        targets = dict(moves)
        if not targets:
            return
        if len(targets) == 1:
            ((job_id, new_end),) = targets.items()
            self.move(job_id, new_end)
            return
        missing = [job_id for job_id in targets if job_id not in self._by_job]
        if missing:
            raise KeyError(f"jobs not tracked: {missing}")
        self._entries = [e for e in self._entries if e[1] not in targets]
        for job_id, new_end in targets.items():
            processors = self._by_job[job_id][1]
            self._entries.append((new_end, job_id, processors))
            self._by_job[job_id] = (new_end, processors)
        self._entries.sort()

    def clear(self) -> None:
        self._entries.clear()
        self._by_job.clear()

    def resync(self, machine: Machine) -> None:
        """Rebuild from the machine's running set (out-of-engine drivers)."""
        self.clear()
        entries = self._entries
        by_job = self._by_job
        for run in machine.running:
            job_id = run.record.job_id
            entry = (run.predicted_end, job_id, run.record.processors)
            entries.append(entry)
            by_job[job_id] = (entry[0], entry[2])
        entries.sort()

    def in_sync_with(self, machine: Machine) -> bool:
        """Cheap desync check for partially hook-fed drivers.

        Count-based only: callers that never feed deltas must resync
        unconditionally (the schedulers do, via their hook-seen flag);
        callers that feed *every* delta are exactly in sync.  Feeding
        some deltas but not others is a contract violation this check
        cannot always catch.
        """
        return len(self._entries) == machine.n_running

    # -- queries -------------------------------------------------------------
    def releases(self, now: float) -> list[tuple[float, int]]:
        """The machine's clamped ``(end, processors)`` list, soonest first.

        Equivalent to :meth:`repro.sim.machine.Machine.predicted_releases`
        but served from the incrementally-maintained order.
        """
        return [(end if end > now else now, procs) for end, _, procs in self._entries]

    def as_profile(
        self, processors: int, now: float, free: int
    ) -> AvailabilityProfile:
        """The availability step function implied by the tracked releases.

        Session-query entry point: a throwaway
        :class:`~repro.sim.profile.AvailabilityProfile` built from the
        incrementally-maintained (already sorted) release list, so live
        ``query()`` probes skip the per-call sort of
        :meth:`repro.sim.machine.Machine.predicted_releases`.
        """
        return AvailabilityProfile.from_releases(
            processors, now, free, self.releases(now)
        )

    def shadow(
        self,
        head_processors: int,
        free: int,
        now: float,
        pending: Sequence[tuple[float, int]] = (),
    ) -> tuple[float, int]:
        """Compute the head job's ``(shadow time, extra processors)``.

        Semantically identical to :func:`repro.sched.easy.compute_shadow`
        over the clamped release list merged with ``pending`` (releases of
        jobs selected earlier in the same pass, not yet started on the
        machine) -- but lazily: the scan stops at the shadow instead of
        materialising and sorting the full list.
        """
        available = free
        if head_processors <= available:
            return now, available - head_processors
        entries = self._entries
        pend = sorted(pending)
        i, j = 0, 0
        n, m = len(entries), len(pend)
        shadow: float | None = None
        while i < n or j < m:
            if j >= m or (i < n and entries[i][0] <= pend[j][0]):
                end, _, processors = entries[i]
                i += 1
            else:
                end, processors = pend[j]
                j += 1
            if end < now:
                end = now
            if shadow is not None and end > shadow:
                break
            available += processors
            if shadow is None and available >= head_processors:
                shadow = end
        if shadow is None:
            raise ValueError(
                f"head job needing {head_processors} processors can never start "
                f"(free={free}, releases={self.releases(now)}, pending={list(pending)})"
            )
        return shadow, available - head_processors


class IncrementalProfile(AvailabilityProfile):
    """A persistent availability profile fed by engine deltas.

    Unlike the per-pass throwaway :class:`AvailabilityProfile`, one
    instance lives for a whole simulation.  It tracks each running job's
    predicted release so finish/correction deltas know which interval to
    give back or take away, and hands out cheap per-pass snapshots for
    reservation scratch work.
    """

    def __init__(self, processors: int, now: float = 0.0) -> None:
        super().__init__(processors, now)
        self._jobs: dict[int, tuple[float, int]] = {}

    # -- delta feed ----------------------------------------------------------
    def job_started(self, job_id: int, now: float, predicted_runtime: float,
                    processors: int) -> None:
        """Claim ``processors`` over ``[now, now + predicted_runtime)``."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} is already tracked")
        end = now + predicted_runtime
        self.reserve(now, predicted_runtime, processors)
        self._jobs[job_id] = (end, processors)

    def job_finished(self, job_id: int, now: float) -> None:
        """Release a job early: give back ``[now, predicted end)``."""
        end, processors = self._jobs.pop(job_id)
        if end > now:
            self._apply_delta(now, end, processors)

    def job_corrected(self, job_id: int, new_end: float) -> None:
        """A running job's predicted end moved (always later): extend its claim.

        The engine fires corrections exactly when the old predicted end
        expires, so the old claim has already lapsed; the extension spans
        ``[old end, new end)``.
        """
        old_end, processors = self._jobs[job_id]
        if new_end == old_end:
            return
        if new_end < old_end:
            raise ValueError(
                f"correction moved job {job_id} backwards: {old_end} -> {new_end}"
            )
        self._apply_delta(old_end, new_end, -processors)
        self._jobs[job_id] = (new_end, processors)

    def jobs_corrected(
        self, moves: Sequence[tuple[int, float]] | dict[int, float]
    ) -> None:
        """Apply a whole correction storm with **one** profile rebuild.

        ``moves`` maps ``job_id -> new predicted end``.  Semantically a
        sequence of :meth:`job_corrected` calls, but all claim extensions
        are merged into a single sweep over the step function
        (:meth:`AvailabilityProfile._apply_deltas`) instead of one
        breakpoint-splice-and-coalesce per job.
        """
        targets = dict(moves)
        deltas: list[tuple[float, float, int]] = []
        updates: list[tuple[int, float, int]] = []
        # validate everything first: a bad entry must not leave _jobs
        # half-updated against an unchanged step function
        for job_id, new_end in targets.items():
            entry = self._jobs.get(job_id)
            if entry is None:
                raise KeyError(f"job {job_id} is not tracked")
            old_end, processors = entry
            if new_end == old_end:
                continue
            if new_end < old_end:
                raise ValueError(
                    f"correction moved job {job_id} backwards: {old_end} -> {new_end}"
                )
            deltas.append((old_end, new_end, -processors))
            updates.append((job_id, new_end, processors))
        self._apply_deltas(deltas)
        for job_id, new_end, processors in updates:
            self._jobs[job_id] = (new_end, processors)

    # -- synchronisation -----------------------------------------------------
    def in_sync_with(self, machine: Machine) -> bool:
        """Count-based desync check; see :meth:`ReleaseTable.in_sync_with`
        for the contract (all deltas or none)."""
        return len(self._jobs) == machine.n_running

    def resync(self, machine: Machine, now: float) -> None:
        """Rebuild from the machine state (out-of-engine drivers)."""
        self._jobs.clear()
        self._times = [now]
        self._avail = [machine.free]
        for run in machine.running:
            end = max(run.predicted_end, now)
            processors = run.record.processors
            self.add_release(end, processors)
            self._jobs[run.record.job_id] = (end, processors)

    # -- per-pass use --------------------------------------------------------
    def trim(self, now: float) -> None:
        """Drop stale breakpoints before ``now`` (time never rewinds)."""
        idx = bisect.bisect_right(self._times, now) - 1
        if idx > 0:
            del self._times[:idx]
            del self._avail[:idx]
        if self._times[0] < now:
            self._times[0] = now

    def snapshot(self, now: float) -> AvailabilityProfile:
        """A throwaway copy starting at ``now`` for reservation scratch work."""
        self.trim(now)
        copy = AvailabilityProfile.__new__(AvailabilityProfile)
        copy.processors = self.processors
        copy._times = self._times.copy()
        copy._avail = self._avail.copy()
        return copy

