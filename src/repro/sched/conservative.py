"""Conservative backfilling.

Every waiting job holds a reservation (paper Section 2.1, Mu'alem &
Feitelson 2001): a lower-priority job may backfill only if it delays *no*
earlier reservation, not just the head's.  The allocation is recomputed
at every event from the current predicted releases, which is the
"completely recomputed" behaviour the paper describes.

Included as the third backfilling variant for extension studies; the
paper's campaign proper uses EASY and EASY-SJBF.
"""

from __future__ import annotations

from ..sim.machine import Machine
from ..sim.profile import AvailabilityProfile
from ..sim.results import JobRecord
from .base import Scheduler
from .ordering import BACKFILL_ORDERS, order_queue

__all__ = ["ConservativeScheduler"]


class ConservativeScheduler(Scheduler):
    """Reservation-for-everyone backfilling.

    ``reservation_order`` fixes the priority in which reservations are
    granted ('fcfs' is the classic algorithm; 'sjbf' is an extension that
    pairs with the paper's SJBF idea).
    """

    def __init__(self, reservation_order: str = "fcfs") -> None:
        super().__init__()
        if reservation_order not in BACKFILL_ORDERS:
            raise KeyError(
                f"unknown reservation order {reservation_order!r}; "
                f"known: {', '.join(BACKFILL_ORDERS)}"
            )
        self.reservation_order = reservation_order
        self.name = (
            "conservative"
            if reservation_order == "fcfs"
            else f"conservative-{reservation_order}"
        )

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        if not self._queue:
            return []
        profile = AvailabilityProfile.from_releases(
            machine.processors, now, machine.free, machine.predicted_releases(now)
        )
        started: list[JobRecord] = []
        started_ids: set[int] = set()
        for record in order_queue(self._queue, self.reservation_order):
            start = profile.earliest_fit(
                record.processors, record.predicted_runtime, not_before=now
            )
            profile.reserve(start, record.predicted_runtime, record.processors)
            if start == now:
                started.append(record)
                started_ids.add(record.job_id)
        if started_ids:
            self._queue = [r for r in self._queue if r.job_id not in started_ids]
        return started
