"""Conservative backfilling.

Every waiting job holds a reservation (paper Section 2.1, Mu'alem &
Feitelson 2001): a lower-priority job may backfill only if it delays *no*
earlier reservation, not just the head's.  The allocation is recomputed
at every event from the current predicted releases, which is the
"completely recomputed" behaviour the paper describes.

Included as the third backfilling variant for extension studies; the
paper's campaign proper uses EASY and EASY-SJBF.
"""

from __future__ import annotations

from ..sim.machine import Machine
from ..sim.results import JobRecord
from .base import Scheduler
from .ordering import BACKFILL_ORDERS, order_queue
from .profile_structure import IncrementalProfile

__all__ = ["ConservativeScheduler"]


class ConservativeScheduler(Scheduler):
    """Reservation-for-everyone backfilling.

    ``reservation_order`` fixes the priority in which reservations are
    granted ('fcfs' is the classic algorithm; 'sjbf' is an extension that
    pairs with the paper's SJBF idea).

    The running jobs' availability step function is maintained in an
    :class:`IncrementalProfile` fed by engine deltas; each pass copies it
    (one O(segments) snapshot) instead of rebuilding it release by
    release, which was O(running^2).  Schedules are identical to the seed
    rebuild (kept as :class:`repro.sched.legacy.LegacyConservativeScheduler`).
    """

    def __init__(self, reservation_order: str = "fcfs") -> None:
        super().__init__()
        if reservation_order not in BACKFILL_ORDERS:
            raise KeyError(
                f"unknown reservation order {reservation_order!r}; "
                f"known: {', '.join(BACKFILL_ORDERS)}"
            )
        self.reservation_order = reservation_order
        self.name = (
            "conservative"
            if reservation_order == "fcfs"
            else f"conservative-{reservation_order}"
        )
        self._base: IncrementalProfile | None = None
        #: set on the first delta; drivers that never feed deltas (unit
        #: tests poking select_jobs by hand) get a full resync per pass.
        self._delta_fed = False
        #: reservation order memoised across passes; corrections never
        #: reorder *waiting* jobs, so EXPIRE storms reuse the last sort.
        self._order_cache: list[JobRecord] | None = None

    # -- engine delta feed --------------------------------------------------
    def on_submit(self, record: JobRecord) -> None:
        super().on_submit(record)
        self._order_cache = None

    def on_start(self, record: JobRecord, now: float) -> None:
        self._delta_fed = True
        if self._base is not None:
            self._base.job_started(
                record.job_id, now, record.predicted_runtime, record.processors
            )

    def on_finish(self, record: JobRecord) -> None:
        if self._base is not None:
            self._base.job_finished(record.job_id, record.end_time)

    def on_correction(self, record: JobRecord) -> None:
        if self._base is not None:
            self._base.job_corrected(
                record.job_id, record.start_time + record.predicted_runtime
            )

    def on_corrections(self, records) -> None:
        # a same-timestamp correction storm costs one profile rebuild
        if self._base is None:
            return
        if len(records) == 1:
            self.on_correction(records[0])
            return
        self._base.jobs_corrected(
            [(r.job_id, r.start_time + r.predicted_runtime) for r in records]
        )

    def on_machine_change(self, now, machine) -> None:
        # drains/restores change the baseline free count the incremental
        # profile was seeded with; the count-based sync check cannot see
        # that, so rebuild from the machine outright
        if self._base is not None:
            self._base.resync(machine, now)

    # -- session queries ------------------------------------------------------
    def introspect(self) -> dict[str, float]:
        """Segment count of the base profile = per-pass sweep length."""
        segments = 0 if self._base is None else self._base.n_segments
        return {"profile_segments": float(segments)}

    def estimated_starts(self, now, machine, extra=()):
        """Exact reservation starts, in this scheduler's own order.

        Conservative backfilling *is* a reservation-per-job policy, so
        the session query reproduces ``select_jobs``'s allocation: the
        incremental profile snapshot plus one reservation per waiting job
        in ``reservation_order``.  With exact predictions the estimate
        equals the start the job will really get.
        """
        from ..sim.profile import AvailabilityProfile

        if self._base is not None and self._delta_fed and self._base.in_sync_with(machine):
            profile = self._base.snapshot(now)
        else:
            profile = AvailabilityProfile.from_releases(
                machine.processors, now, machine.free, machine.predicted_releases(now)
            )
        ordered = order_queue(self._queue, self.reservation_order)
        return self._reserve_in_order(profile, (*ordered, *extra), now)

    def select_jobs(self, now: float, machine: Machine) -> list[JobRecord]:
        if not self._queue:
            return []
        if self._base is None:
            self._base = IncrementalProfile(machine.processors, now)
            self._base.resync(machine, now)
        elif not self._delta_fed or not self._base.in_sync_with(machine):
            # driven outside the engine (unit tests): rebuild from state
            self._base.resync(machine, now)
        profile = self._base.snapshot(now)
        started: list[JobRecord] = []
        started_ids: set[int] = set()
        if self._order_cache is None:
            self._order_cache = order_queue(self._queue, self.reservation_order)
        for record in self._order_cache:
            if record.processors > profile.terminal_available:
                # wider than the undrained capacity: held until a restore
                continue
            start = profile.earliest_fit(
                record.processors, record.predicted_runtime, not_before=now
            )
            profile.reserve(start, record.predicted_runtime, record.processors)
            if start == now:
                started.append(record)
                started_ids.add(record.job_id)
        if started_ids:
            self._queue = [r for r in self._queue if r.job_id not in started_ids]
            self._order_cache = None
        return started
