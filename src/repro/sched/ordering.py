"""Backfill-candidate ordering policies.

EASY scans the waiting queue (minus the head job, which holds the
reservation) for backfill candidates.  The paper compares two scan
orders:

* **FCFS**  -- arrival order (classic EASY);
* **SJBF**  -- Shortest (predicted) Job Backfilled First, from Tsafrir et
  al., which the paper's winning triple uses.

Additional orders (not in the paper's campaign, provided for ablation
studies) follow the same interface: a key function over job records.
"""

from __future__ import annotations

from collections.abc import Callable

from ..sim.results import JobRecord

__all__ = ["BACKFILL_ORDERS", "order_queue", "fcfs_key", "sjbf_key", "saf_key", "expansion_key"]

OrderKey = Callable[[JobRecord], tuple]


def fcfs_key(record: JobRecord) -> tuple:
    """Arrival order; ties broken by job id (stable with trace order)."""
    return (record.submit_time, record.job_id)


def sjbf_key(record: JobRecord) -> tuple:
    """Shortest predicted job first; ties broken FCFS."""
    return (record.predicted_runtime, record.submit_time, record.job_id)


def saf_key(record: JobRecord) -> tuple:
    """Smallest predicted area (p*q) first -- ablation extra."""
    return (
        record.predicted_runtime * record.processors,
        record.submit_time,
        record.job_id,
    )


def expansion_key(record: JobRecord) -> tuple:
    """Narrowest job first -- ablation extra."""
    return (record.processors, record.submit_time, record.job_id)


#: Registry of named backfill orders.
BACKFILL_ORDERS: dict[str, OrderKey] = {
    "fcfs": fcfs_key,
    "sjbf": sjbf_key,
    "saf": saf_key,
    "narrow": expansion_key,
}


def order_queue(records: list[JobRecord], order: str) -> list[JobRecord]:
    """Return ``records`` sorted under the named order (copy)."""
    try:
        key = BACKFILL_ORDERS[order]
    except KeyError:
        raise KeyError(
            f"unknown backfill order {order!r}; known: {', '.join(BACKFILL_ORDERS)}"
        ) from None
    return sorted(records, key=key)
