"""User requested-time (estimate) model.

Production logs show that user-provided requested times are crude upper
bounds: users pick *round* values (15 minutes, 1 hour, 4 hours, 1 day...)
and over-estimate heavily, because the system kills jobs that exceed the
request (Tsafrir, Etsion & Feitelson 2005, cited by the paper).  This
module models three documented styles of estimate behaviour:

* ``ROUND_UP`` -- the user multiplies their belief about the runtime by a
  personal safety margin and rounds *up* to the next round value;
* ``FIXED``    -- the user always requests the same round value, picked
  once to cover most of their jobs (very common in practice);
* ``MAXIMUM``  -- the user always requests the queue maximum.

All three styles keep the invariant ``runtime <= requested_time`` by
construction (jobs whose sampled runtime exceeds a fixed/max request are
clamped: in reality those jobs are killed at the limit, which is exactly
what the logs record).
"""

from __future__ import annotations

from enum import Enum


__all__ = [
    "EstimateStyle",
    "ROUND_VALUES",
    "round_up_to_round_value",
    "pick_fixed_request",
    "requested_time_for",
]

#: The ladder of "round" requested times users pick from, in seconds.
#: 5m, 10m, 15m, 30m, 1h, 2h, 3h, 4h, 6h, 8h, 12h, 18h, 1d, 36h, 2d, 3d, 100h
ROUND_VALUES: tuple[float, ...] = (
    300.0,
    600.0,
    900.0,
    1800.0,
    3600.0,
    7200.0,
    10800.0,
    14400.0,
    21600.0,
    28800.0,
    43200.0,
    64800.0,
    86400.0,
    129600.0,
    172800.0,
    259200.0,
    360000.0,
)


class EstimateStyle(Enum):
    """How a user produces requested times."""

    ROUND_UP = "round_up"
    FIXED = "fixed"
    MAXIMUM = "maximum"


def round_up_to_round_value(value: float, ceiling: float) -> float:
    """Smallest round value >= ``value``, capped at ``ceiling``.

    Falls back to ``ceiling`` when ``value`` exceeds every round value,
    matching queue-limit behaviour.
    """
    if value >= ceiling:
        return ceiling
    for rv in ROUND_VALUES:
        if rv >= value:
            return min(rv, ceiling)
    return ceiling


def pick_fixed_request(typical_runtime: float, margin: float, ceiling: float) -> float:
    """The round value a FIXED-style user settles on.

    Chosen to cover ``typical_runtime * margin`` so most of the user's
    jobs finish within it.
    """
    return round_up_to_round_value(typical_runtime * margin, ceiling)


def requested_time_for(
    style: EstimateStyle,
    runtime: float,
    believed_runtime: float,
    margin: float,
    fixed_request: float,
    ceiling: float,
    floor: float = 900.0,
) -> tuple[float, float]:
    """Return ``(requested_time, possibly_clamped_runtime)`` for one job.

    ``believed_runtime`` is what the user *thinks* the job will run
    (their session-level belief), which may differ from the sampled
    ``runtime``; the gap between belief and reality is one source of
    estimate error.  ``floor`` is the user's minimum-request habit:
    production users essentially never request only a few minutes, even
    for seconds-long jobs (effort and safety), which is precisely what
    makes requested times uninformative for short jobs.  The returned
    runtime is clamped to the request, modelling the scheduler killing
    over-running jobs.
    """
    if style is EstimateStyle.ROUND_UP:
        request = round_up_to_round_value(believed_runtime * margin, ceiling)
    elif style is EstimateStyle.FIXED:
        request = fixed_request
    elif style is EstimateStyle.MAXIMUM:
        request = ceiling
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown estimate style {style!r}")
    request = min(max(request, floor, 60.0), ceiling)
    return request, min(runtime, request)
