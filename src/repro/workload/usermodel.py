"""Per-user behaviour model for synthetic workloads.

The paper's prediction features (Table 2) derive almost all their signal
from *user-level temporal locality*: the running times of successive jobs
of the same user are strongly correlated (Tsafrir et al. showed the mean
of the last two is already a good predictor).  The generator therefore
models each user as a stateful process:

* a user has a **base runtime scale** (log-normal across the population)
  and works in **sessions**; within a session they repeatedly submit
  near-identical jobs (same executable, similar runtime, usually the same
  width), and between sessions they occasionally switch "mode"
  (a different application with a different scale);
* **widths** are biased to powers of two, as in all PWA logs;
* a small fraction of submissions **fail early** regardless of the mode,
  which injects the noise the learning algorithm must be robust to;
* requested times follow the user's :class:`~repro.workload.estimates.EstimateStyle`.

Everything is driven by an explicit :class:`numpy.random.Generator` so
traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .estimates import EstimateStyle, pick_fixed_request, requested_time_for

__all__ = ["UserProfile", "SessionJob", "sample_user_profiles", "wide_job_runtime_cap"]


def wide_job_runtime_cap(width: int, max_width: int, ceiling: float) -> float:
    """Maximum runtime for a job of the given width.

    Production queue policies couple width and walltime: wide jobs are
    admitted only with short walltimes (otherwise a single job could wall
    off the machine for days).  Jobs up to a quarter of the machine keep
    the full ceiling; beyond that the cap shrinks inversely with width,
    down to ``ceiling / 4`` for a full-machine job.
    """
    frac = width / max(1, max_width)
    if frac <= 0.25:
        return ceiling
    return ceiling * 0.25 / frac


@dataclass
class SessionJob:
    """One job emitted by a user session (times relative to session start)."""

    offset: float
    runtime: float
    processors: int
    requested_time: float
    executable: int
    failed: bool
    #: what the user believed the runtime would be (session-level scale);
    #: requested times derive from this, not from the exact runtime.
    believed: float = 0.0


@dataclass
class UserProfile:
    """Stateful behaviour model of one user."""

    user_id: int
    base_runtime: float  # median runtime of the user's dominant application
    runtime_within_sigma: float  # log-space jitter within a session
    mode_switch_prob: float  # probability a new session uses a new application
    base_width_log2: float  # log2 of the user's habitual processor count
    width_sigma: float
    max_width: int
    style: EstimateStyle
    margin: float  # personal over-estimation margin (>= 1)
    #: minimum request the user ever writes (default-walltime habit).
    min_request: float
    fixed_request: float
    max_requested: float
    session_jobs_mean: float
    session_gap_seconds: float
    failure_prob: float
    weight: float  # share of the overall submission stream
    # -- mutable session state ------------------------------------------------
    mode_runtime: float = field(default=0.0)
    mode_width: int = field(default=0)
    mode_executable: int = field(default=0)
    _n_modes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.mode_runtime <= 0:
            self.mode_runtime = self.base_runtime
        if self.mode_width <= 0:
            self.mode_width = max(1, int(round(2.0**self.base_width_log2)))
        self.mode_width = min(self.mode_width, self.max_width)

    # -------------------------------------------------------------------
    def _maybe_switch_mode(self, rng: np.random.Generator) -> None:
        """Between sessions, possibly move to a different application."""
        if self._n_modes == 0 or rng.random() < self.mode_switch_prob:
            self.mode_runtime = float(
                self.base_runtime * rng.lognormal(mean=0.0, sigma=1.0)
            )
            log2w = rng.normal(self.base_width_log2, self.width_sigma)
            width = int(round(2.0 ** max(0.0, log2w)))
            # Bias towards exact powers of two, as observed in PWA logs.
            if rng.random() < 0.7:
                width = 1 << max(0, int(round(np.log2(max(1, width)))))
            self.mode_width = int(min(max(1, width), self.max_width))
            self.mode_executable = int(rng.integers(1, 200))
            self._n_modes += 1

    def generate_session(self, rng: np.random.Generator) -> list[SessionJob]:
        """Emit one session's worth of jobs (offsets relative to t=0).

        Failures are *bursty*: once a job fails (buggy script, bad input),
        the user's next submissions in the same session are likely to fail
        too.  This clustering is what production logs show, and it is the
        main source of catastrophic mispredictions for history-based
        predictors such as AVE2 (a run of 60-second crashes poisons the
        user average right before a long job, and vice versa).
        """
        self._maybe_switch_mode(rng)
        n_jobs = 1 + rng.poisson(max(0.0, self.session_jobs_mean - 1.0))
        jobs: list[SessionJob] = []
        offset = 0.0
        failing = False
        for _ in range(n_jobs):
            if failing:
                failed = rng.random() < 0.7  # failure bursts persist
            else:
                failed = rng.random() < self.failure_prob
            failing = failed
            runtime = float(
                self.mode_runtime
                * rng.lognormal(mean=0.0, sigma=self.runtime_within_sigma)
            )
            runtime = max(runtime, 10.0)
            if failed:
                # Erratic early termination: crash or immediate abort.
                runtime = float(min(runtime, rng.uniform(15.0, 600.0)))
            width = self.mode_width
            if rng.random() < 0.15:
                # occasional one-off width change within a session
                factor = 2.0 ** float(rng.integers(-1, 2))
                width = int(min(max(1, round(width * factor)), self.max_width))
            # Queue-policy walltime cap for wide jobs, applied to both the
            # sampled runtime and the user's belief (requests follow it).
            cap = wide_job_runtime_cap(width, self.max_width, self.max_requested)
            runtime = min(runtime, cap)
            believed = min(self.mode_runtime, cap)
            requested, runtime = requested_time_for(
                self.style,
                runtime=runtime,
                believed_runtime=believed,
                margin=self.margin,
                fixed_request=self.fixed_request,
                ceiling=cap,
                floor=min(self.min_request, cap),
            )
            jobs.append(
                SessionJob(
                    offset=offset,
                    runtime=runtime,
                    processors=width,
                    requested_time=requested,
                    executable=self.mode_executable,
                    failed=failed,
                    believed=believed,
                )
            )
            # Think time between submissions in a session: lognormal around
            # the per-log session gap, so streams are bursty but ordered.
            offset += float(rng.lognormal(np.log(self.session_gap_seconds), 0.8))
        return jobs


def sample_user_profiles(
    rng: np.random.Generator,
    n_users: int,
    processors: int,
    runtime_log_mu: float,
    runtime_log_sigma: float,
    width_mix: tuple[float, float, float],
    width_max_frac: float,
    session_jobs_mean: float,
    session_gap_minutes: float,
    estimate_styles: tuple[float, float, float],
    estimate_margin_range: tuple[float, float],
    max_requested_hours: float,
    failure_prob: float,
    min_request_choices: tuple[float, float, float, float] = (
        900.0,
        1800.0,
        3600.0,
        7200.0,
    ),
) -> list[UserProfile]:
    """Draw a population of user profiles for one synthetic log.

    ``width_mix`` gives the population shares of (narrow, medium, wide)
    users; ``estimate_styles`` the shares of (ROUND_UP, FIXED, MAXIMUM)
    requested-time styles.
    """
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    max_requested = max_requested_hours * 3600.0
    max_width = max(1, int(processors * width_max_frac))
    styles = (EstimateStyle.ROUND_UP, EstimateStyle.FIXED, EstimateStyle.MAXIMUM)
    style_p = np.asarray(estimate_styles, dtype=float)
    style_p = style_p / style_p.sum()
    width_p = np.asarray(width_mix, dtype=float)
    width_p = width_p / width_p.sum()

    # Zipf-like activity: a few users dominate the stream, like real logs.
    ranks = np.arange(1, n_users + 1, dtype=float)
    weights = 1.0 / ranks**0.85
    weights /= weights.sum()
    rng.shuffle(weights)

    profiles: list[UserProfile] = []
    for uid in range(1, n_users + 1):
        base_runtime = float(
            np.clip(
                rng.lognormal(mean=runtime_log_mu, sigma=runtime_log_sigma),
                20.0,
                max_requested * 0.9,
            )
        )
        band = rng.choice(3, p=width_p)
        if band == 0:  # narrow users: 1..8 processors
            base_log2 = float(rng.uniform(0.0, 3.0))
        elif band == 1:  # medium users: up to ~m/8
            base_log2 = float(rng.uniform(2.0, max(2.5, np.log2(max(8, max_width / 8)))))
        else:  # wide users: m/8 .. max_width
            lo = max(2.0, np.log2(max(4, max_width / 8)))
            hi = max(lo + 0.5, np.log2(max_width))
            base_log2 = float(rng.uniform(lo, hi))
        style = styles[int(rng.choice(3, p=style_p))]
        margin = float(rng.uniform(*estimate_margin_range))
        min_request = float(
            rng.choice(list(min_request_choices), p=[0.25, 0.30, 0.30, 0.15])
        )
        fixed_request = pick_fixed_request(
            typical_runtime=base_runtime,
            margin=margin * 1.5,
            ceiling=max_requested,
        )
        profiles.append(
            UserProfile(
                user_id=uid,
                base_runtime=base_runtime,
                runtime_within_sigma=float(rng.uniform(0.45, 1.0)),
                mode_switch_prob=float(rng.uniform(0.35, 0.7)),
                base_width_log2=base_log2,
                width_sigma=float(rng.uniform(0.3, 1.0)),
                max_width=max_width,
                style=style,
                margin=margin,
                min_request=min_request,
                fixed_request=fixed_request,
                max_requested=max_requested,
                session_jobs_mean=float(
                    np.clip(rng.normal(session_jobs_mean, session_jobs_mean / 2), 1.0, 40.0)
                ),
                session_gap_seconds=float(
                    np.clip(rng.normal(session_gap_minutes, session_gap_minutes / 2), 0.5, 120.0)
                )
                * 60.0,
                failure_prob=failure_prob,
                weight=float(weights[uid - 1]),
            )
        )
    return profiles
