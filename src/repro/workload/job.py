"""Job model for parallel workloads.

A job is the unit of work scheduled by the batch system.  The attributes
follow the paper's problem formulation (Section 2.3):

* ``submit_time`` (``r_j``) -- release date, seconds;
* ``processors``  (``q_j``) -- rigid resource requirement, processor count;
* ``runtime``     (``p_j``) -- actual running time, seconds, known only
  a posteriori;
* ``requested_time`` (``p~_j``) -- user-requested upper bound on ``p_j``.
  Jobs are killed when they reach it, so ``runtime <= requested_time``
  always holds for the part of the job that actually executes.

Extra descriptive attributes (user, executable, ...) mirror the Standard
Workload Format and feed the learning features of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Job", "validate_job"]


@dataclass(slots=True)
class Job:
    """A rigid parallel job.

    Only ``job_id``, ``submit_time``, ``processors``, ``runtime`` and
    ``requested_time`` are required by the simulator; the remaining fields
    carry SWF metadata used by the prediction features.
    """

    job_id: int
    submit_time: float
    runtime: float
    processors: int
    requested_time: float
    user: int = 0
    group: int = 0
    executable: int = 0
    queue: int = 0
    partition: int = 0
    status: int = 1
    #: average CPU time per processor (SWF field 6); -1 when unknown.
    cpu_time: float = -1.0
    #: memory per processor (SWF field 7); -1 when unknown.
    memory: float = -1.0
    #: requested number of processors if it differs from allocated; -1 unknown.
    requested_processors: int = -1
    #: requested memory (SWF field 10); -1 when unknown.
    requested_memory: float = -1.0
    #: id of the job this one depends on (SWF field 17); -1 when none.
    preceding_job: int = -1
    #: think time after the preceding job completed (SWF field 18).
    think_time: float = -1.0

    def __post_init__(self) -> None:
        validate_job(self)

    @property
    def area(self) -> float:
        """Job area ``p_j * q_j`` (processor-seconds), the paper's job size."""
        return self.runtime * self.processors

    @property
    def requested_area(self) -> float:
        """Requested area ``p~_j * q_j`` (processor-seconds)."""
        return self.requested_time * self.processors

    @property
    def overestimation_factor(self) -> float:
        """Ratio ``p~_j / p_j`` measuring user over-estimation (>= 1)."""
        return self.requested_time / max(self.runtime, 1e-12)

    def with_updates(self, **changes) -> Job:
        """Return a copy of the job with the given fields replaced."""
        return replace(self, **changes)


def validate_job(job: Job) -> None:
    """Raise :class:`ValueError` if the job violates the problem model.

    The model requires a positive processor count, a non-negative submit
    time, a strictly positive runtime and a requested time that upper
    bounds the runtime (jobs are killed at the requested time).
    """
    if job.processors <= 0:
        raise ValueError(f"job {job.job_id}: processors must be > 0, got {job.processors}")
    if job.submit_time < 0:
        raise ValueError(f"job {job.job_id}: submit_time must be >= 0, got {job.submit_time}")
    if job.runtime <= 0:
        raise ValueError(f"job {job.job_id}: runtime must be > 0, got {job.runtime}")
    if job.requested_time <= 0:
        raise ValueError(
            f"job {job.job_id}: requested_time must be > 0, got {job.requested_time}"
        )
    if job.runtime > job.requested_time * (1 + 1e-9):
        raise ValueError(
            f"job {job.job_id}: runtime {job.runtime} exceeds requested_time "
            f"{job.requested_time}; jobs are killed at their requested time"
        )
