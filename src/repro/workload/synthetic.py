"""Calibrated synthetic workload generation.

:func:`synthesize` turns a :class:`WorkloadModel` into a
:class:`~repro.workload.trace.Trace`:

1. sample a user population (:mod:`repro.workload.usermodel`);
2. estimate the trace duration needed to hit the target offered load from
   a pilot sample of job areas;
3. emit user sessions whose start times follow a non-homogeneous Poisson
   process with daily and weekly cycles (so the paper's time-of-day /
   time-of-week features carry signal);
4. rescale runtimes by a single global factor so the achieved offered
   load matches the target (requested times are re-derived afterwards so
   the round-value structure survives);
5. package everything as a trace, sorted by submit time.

The guarantees relied on elsewhere in the code base:

* ``runtime <= requested_time`` for every job;
* the trace achieves the model's offered load within a few percent;
* the same ``(model, seed)`` pair always yields the identical trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .estimates import pick_fixed_request, requested_time_for
from .job import Job
from .trace import Trace
from .usermodel import UserProfile, sample_user_profiles, wide_job_runtime_cap

__all__ = ["WorkloadModel", "synthesize", "arrival_intensity"]

_DAY = 86400.0
_WEEK = 7 * _DAY


@dataclass(frozen=True)
class WorkloadModel:
    """Parameters of one synthetic log (see archive.py for instances)."""

    name: str
    processors: int
    n_jobs: int
    n_users: int
    offered_load: float
    runtime_log_mu: float
    runtime_log_sigma: float
    width_mix: tuple[float, float, float]
    width_max_frac: float
    session_jobs_mean: float
    session_gap_minutes: float
    day_amplitude: float
    week_amplitude: float
    estimate_styles: tuple[float, float, float]
    estimate_margin_range: tuple[float, float]
    max_requested_hours: float
    failure_prob: float
    #: population of minimum-request habits (seconds); the floor below
    #: which each user never bothers to tune their walltime request.
    min_request_choices: tuple[float, float, float, float] = (
        900.0,
        1800.0,
        3600.0,
        7200.0,
    )
    burstiness: float = 1.0
    #: characteristic submission rate of the system being modelled; used
    #: by :meth:`resized` to keep subset traces at the real log's tempo.
    throughput_jobs_per_day: float = 150.0
    #: machine size to use for simulation-sized subsets; ``None`` derives
    #: one from the load calibration.  Production machines are far larger
    #: than a subset trace can saturate, so each log pins a scaled-down
    #: machine that preserves its width-mix character (see DESIGN.md).
    sim_processors: int | None = None
    #: desired trace span in days; ``None`` lets the load calibration pick.
    target_days: float | None = None

    def resized(self, n_jobs: int) -> WorkloadModel:
        """Same model with a different job-count target.

        The user population shrinks with the square root of the job count
        so per-user history depth stays comparable across sizes.  The
        target span follows the real log's submission tempo
        (``n_jobs / throughput_jobs_per_day``), and the *effective*
        machine size is derived at synthesis time so the target offered
        load is achievable over that span: full production logs sustain
        their load with 100x more jobs than a simulation subset, and
        shrinking the machine proportionally preserves the contention
        that drives backfilling, which is what the paper's results hinge
        on (see DESIGN.md, "Substitutions").
        """
        if n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        scale = math.sqrt(n_jobs / max(1, self.n_jobs))
        n_users = int(np.clip(round(self.n_users * scale), 8, self.n_users))
        target_days = float(
            np.clip(n_jobs / self.throughput_jobs_per_day, 0.75, 45.0)
        )
        return replace(self, n_jobs=n_jobs, n_users=n_users, target_days=target_days)


def arrival_intensity(
    t: float, day_amplitude: float, week_amplitude: float
) -> float:
    """Relative session-arrival intensity at time ``t`` (t=0 is Monday 0:00).

    The intensity is a product of a daily cycle peaking mid-afternoon and
    a weekly cycle suppressing weekends, normalised to max 1.0.
    """
    hour = (t % _DAY) / 3600.0
    # Daily cycle: cosine dip at 4am, peak at 4pm.
    day_factor = 1.0 - day_amplitude * 0.5 * (1.0 + math.cos(2 * math.pi * (hour - 4.0) / 24.0))
    day_of_week = int((t % _WEEK) // _DAY)  # 0 = Monday
    week_factor = 1.0 - week_amplitude if day_of_week >= 5 else 1.0
    return max(1e-3, day_factor * week_factor)


def _pilot_mean_area(profiles: list[UserProfile], rng: np.random.Generator, n: int = 400) -> float:
    """Estimate the mean job area by sampling sessions without side effects."""
    import copy

    total_area = 0.0
    total_jobs = 0
    weights = np.array([p.weight for p in profiles])
    weights = weights / weights.sum()
    scratch = [copy.deepcopy(p) for p in profiles]
    while total_jobs < n:
        profile = scratch[int(rng.choice(len(scratch), p=weights))]
        for sj in profile.generate_session(rng):
            total_area += sj.runtime * sj.processors
            total_jobs += 1
    return total_area / max(1, total_jobs)


def _sample_session_starts(
    rng: np.random.Generator,
    duration: float,
    n_sessions: int,
    day_amplitude: float,
    week_amplitude: float,
    burstiness: float,
) -> np.ndarray:
    """Session start times from a thinned non-homogeneous Poisson process.

    ``burstiness > 1`` adds long-range clustering by mixing in bursts
    around randomly chosen epicentres (heavy campaign periods).
    """
    starts: list[float] = []
    n_burst = 0
    if burstiness > 1.0:
        n_burst = int(n_sessions * min(0.5, (burstiness - 1.0) * 0.5))
    n_regular = n_sessions - n_burst
    # Regular stream: rejection-sample against the day/week intensity.
    while len(starts) < n_regular:
        t = float(rng.uniform(0.0, duration))
        if rng.random() <= arrival_intensity(t, day_amplitude, week_amplitude):
            starts.append(t)
    # Bursts: Gaussian clusters around epicentres.
    if n_burst > 0:
        n_centres = max(1, n_burst // 25)
        centres = rng.uniform(0.0, duration, size=n_centres)
        for _ in range(n_burst):
            centre = float(rng.choice(centres))
            t = float(np.clip(rng.normal(centre, _DAY / 3), 0.0, duration))
            starts.append(t)
    return np.sort(np.asarray(starts))


def _profiles_for(model: WorkloadModel, rng: np.random.Generator, processors: int):
    return sample_user_profiles(
        rng,
        n_users=model.n_users,
        processors=processors,
        runtime_log_mu=model.runtime_log_mu,
        runtime_log_sigma=model.runtime_log_sigma,
        width_mix=model.width_mix,
        width_max_frac=model.width_max_frac,
        session_jobs_mean=model.session_jobs_mean,
        session_gap_minutes=model.session_gap_minutes,
        estimate_styles=model.estimate_styles,
        estimate_margin_range=model.estimate_margin_range,
        max_requested_hours=model.max_requested_hours,
        failure_prob=model.failure_prob,
        min_request_choices=model.min_request_choices,
    )


def synthesize(model: WorkloadModel, seed: int = 0) -> Trace:
    """Generate a synthetic trace realising ``model``. Deterministic in seed."""
    rng = np.random.default_rng(seed)
    # Derive the effective machine size.  A production log sustains its
    # offered load with far more jobs than a simulation subset; to keep the
    # same *contention* with model.n_jobs jobs over model.target_days days
    # we shrink the machine (never grow it) until the load is achievable.
    # Job widths are sampled relative to the machine, so the mix keeps its
    # character at any size.
    if model.target_days is not None and model.sim_processors is not None:
        # Subset mode with a pinned simulation machine: the span and the
        # machine are fixed, the runtime rescale below absorbs the rest.
        m_eff = min(model.sim_processors, model.processors)
        profiles = _profiles_for(model, rng, m_eff)
        mean_area = _pilot_mean_area(profiles, rng)
    else:
        m_cap = (
            model.processors
            if model.target_days is None
            else min(model.processors, 768)
        )
        m_eff = m_cap
        profiles = _profiles_for(model, rng, m_eff)
        mean_area = _pilot_mean_area(profiles, rng)
        if model.target_days is not None:
            span_target = model.target_days * _DAY
            for _ in range(3):
                needed_m = mean_area * model.n_jobs / (model.offered_load * span_target)
                m_new = int(np.clip(round(needed_m), 64, m_cap))
                if abs(m_new - m_eff) <= max(1, m_eff // 10):
                    # Converged: keep the machine the profiles were sampled for.
                    break
                m_eff = m_new
                profiles = _profiles_for(model, rng, m_eff)
                mean_area = _pilot_mean_area(profiles, rng)
    # Duration that would realise the target load for the expected mix.
    if model.target_days is not None and model.sim_processors is not None:
        # Pinned machine: the span is the target span; the runtime rescale
        # further below makes the load match over it.
        duration = model.target_days * _DAY
    else:
        target_area = mean_area * model.n_jobs
        duration = target_area / (model.offered_load * m_eff)
    duration = max(duration, _DAY)

    mean_session_len = float(np.mean([p.session_jobs_mean for p in profiles]))
    n_sessions = max(1, int(round(model.n_jobs / mean_session_len)))
    session_starts = _sample_session_starts(
        rng,
        duration,
        n_sessions,
        model.day_amplitude,
        model.week_amplitude,
        model.burstiness,
    )

    weights = np.array([p.weight for p in profiles])
    weights = weights / weights.sum()
    raw: list[tuple[float, UserProfile, object]] = []
    owner_of_session = rng.choice(len(profiles), p=weights, size=len(session_starts))
    for start, owner_idx in zip(session_starts, owner_of_session, strict=True):
        profile = profiles[int(owner_idx)]
        for sj in profile.generate_session(rng):
            raw.append((float(start + sj.offset), profile, sj))
        if len(raw) >= model.n_jobs:
            break
    # Top up with extra sessions if the planned ones fell short.
    while len(raw) < model.n_jobs:
        start = float(rng.uniform(0.0, duration))
        profile = profiles[int(rng.choice(len(profiles), p=weights))]
        for sj in profile.generate_session(rng):
            raw.append((float(start + sj.offset), profile, sj))
    raw.sort(key=lambda item: item[0])
    raw = raw[: model.n_jobs]

    max_requested = model.max_requested_hours * 3600.0
    span = max(raw[-1][0] - raw[0][0], _DAY) if raw else _DAY
    wanted_area = model.offered_load * m_eff * span

    def realised(scale: float) -> list[tuple[float, float]]:
        """(requested, runtime) per job at the given runtime rescale."""
        out: list[tuple[float, float]] = []
        for _submit, profile, sj in raw:
            runtime = max(10.0, sj.runtime * scale)
            # The user's belief (and hence the request) follows the session
            # scale, not the exact runtime: this is what makes requested
            # times structurally inaccurate, as in production logs.  A
            # FIXED user's habitual request shifts with the same rescale.
            believed = max(10.0, sj.believed * scale)
            # Re-apply the wide-job walltime policy after rescaling.
            cap = wide_job_runtime_cap(sj.processors, profile.max_width, max_requested)
            runtime = min(runtime, cap)
            believed = min(believed, cap)
            fixed_request = pick_fixed_request(
                typical_runtime=profile.base_runtime * scale,
                margin=profile.margin * 1.5,
                ceiling=cap,
            )
            out.append(
                requested_time_for(
                    profile.style,
                    runtime=runtime,
                    believed_runtime=believed,
                    margin=profile.margin,
                    fixed_request=fixed_request,
                    ceiling=cap,
                    floor=min(profile.min_request, cap),
                )
            )
        return out

    # Fixed-point search for the runtime rescale that realises the target
    # load.  Clamping at requested times makes the response sub-linear, so
    # iterate a few times instead of solving in one shot.
    scale = 1.0
    pairs = realised(scale)
    for _ in range(10):
        achieved = sum(rt * sj.processors for (_, rt), (_, _, sj) in zip(pairs, raw, strict=True))
        correction = wanted_area / max(achieved, 1.0)
        if 0.97 <= correction <= 1.03:
            break
        scale = float(np.clip(scale * correction, 0.01, 200.0))
        pairs = realised(scale)

    # Arrival smoothing: production arrival streams are self-regulating
    # (users back off when the system clogs), which open-loop synthesis
    # lacks.  Delay submissions so the *cumulative* offered load never
    # exceeds ``overload_cap`` times capacity -- transient bursts survive,
    # unbounded backlog build-up does not.
    overload_cap = 1.12
    t0 = raw[0][0] if raw else 0.0
    cumulative_area = 0.0
    last_submit = t0
    jobs: list[Job] = []
    for idx, ((submit, profile, sj), (requested, runtime)) in enumerate(
        zip(raw, pairs, strict=True), start=1
    ):
        earliest = t0 + cumulative_area / (m_eff * overload_cap)
        shaped_submit = max(submit, earliest, last_submit)
        last_submit = shaped_submit
        cumulative_area += runtime * sj.processors
        jobs.append(
            Job(
                job_id=idx,
                submit_time=float(shaped_submit),
                runtime=float(runtime),
                processors=int(sj.processors),
                requested_time=float(requested),
                user=profile.user_id,
                group=profile.user_id % 10,
                executable=sj.executable,
                status=0 if sj.failed else 1,
            )
        )
    return Trace(jobs, processors=m_eff, name=model.name).rebase_time()
