"""Metadata for the six workload logs of the paper (Table 4).

The paper evaluates on six production logs.  Five come from the Parallel
Workloads Archive and one (Metacentrum) from Dalibor Klusacek's site.
Those logs cannot be redistributed here and there is no network access,
so each entry couples the *published* metadata (reported verbatim in
Table 4 reproductions) with a calibrated synthetic workload model that
preserves the behaviours the paper's pipeline depends on (see DESIGN.md,
"Substitutions").  The models are tuned so a simulation-sized subset
reproduces the paper's qualitative regime: clairvoyant EASY beats
standard EASY (Table 1), and the Curie-class log is the most sensitive
to prediction quality.

Real logs are still supported: set the environment variable
``REPRO_SWF_DIR`` to a directory containing ``<key>.swf`` files (e.g.
``KTH-SP2.swf``) and :func:`get_trace` will parse them instead of
synthesising.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .synthetic import WorkloadModel, synthesize
from .trace import Trace

__all__ = ["LogSpec", "ARCHIVE", "LOG_NAMES", "get_trace", "stable_seed", "table4_rows"]


@dataclass(frozen=True)
class LogSpec:
    """Published metadata of a workload log plus its synthetic stand-in."""

    name: str
    year: int
    cpus: int
    jobs: int
    duration_months: int
    source: str
    model: WorkloadModel

    def row(self) -> tuple[str, int, int, str, str]:
        """Row of the paper's Table 4."""
        jobs_k = f"{self.jobs // 1000}k"
        return (self.name, self.year, self.cpus, jobs_k, f"{self.duration_months} Months")


def _kth_sp2() -> LogSpec:
    # Small SP2 at KTH; modest tempo, classic academic diurnal mix,
    # moderately bad estimates.
    return LogSpec(
        name="KTH-SP2",
        year=1996,
        cpus=100,
        jobs=28_000,
        duration_months=11,
        source="Parallel Workloads Archive",
        model=WorkloadModel(
            name="KTH-SP2",
            processors=100,
            n_jobs=28_000,
            n_users=95,
            offered_load=0.82,
            runtime_log_mu=7.6,
            runtime_log_sigma=1.5,
            width_mix=(0.62, 0.28, 0.10),
            width_max_frac=1.0,
            session_jobs_mean=4.0,
            session_gap_minutes=9.0,
            day_amplitude=0.75,
            week_amplitude=0.55,
            estimate_styles=(0.20, 0.50, 0.30),
            estimate_margin_range=(1.3, 4.0),
            max_requested_hours=60.0,
            failure_prob=0.015,
            burstiness=1.0,
            throughput_jobs_per_day=85.0,
            sim_processors=100,
        ),
    )


def _ctc_sp2() -> LogSpec:
    # Larger SP2 at Cornell; faster tempo, shorter jobs, many users,
    # comparatively disciplined estimates.
    return LogSpec(
        name="CTC-SP2",
        year=1996,
        cpus=338,
        jobs=77_000,
        duration_months=11,
        source="Parallel Workloads Archive",
        model=WorkloadModel(
            name="CTC-SP2",
            processors=338,
            n_jobs=77_000,
            n_users=220,
            offered_load=0.86,
            runtime_log_mu=7.1,
            runtime_log_sigma=1.4,
            width_mix=(0.70, 0.24, 0.06),
            width_max_frac=0.95,
            session_jobs_mean=4.5,
            session_gap_minutes=7.0,
            day_amplitude=0.7,
            week_amplitude=0.5,
            estimate_styles=(0.25, 0.50, 0.25),
            estimate_margin_range=(1.2, 4.0),
            max_requested_hours=36.0,
            failure_prob=0.03,
            burstiness=1.0,
            throughput_jobs_per_day=233.0,
            sim_processors=128,
        ),
    )


def _sdsc_sp2() -> LogSpec:
    # Heavily loaded SP2 at SDSC; long jobs and notoriously poor
    # estimates -- the hardest log for backfilling in the paper's set.
    return LogSpec(
        name="SDSC-SP2",
        year=2000,
        cpus=128,
        jobs=59_000,
        duration_months=24,
        source="Parallel Workloads Archive",
        model=WorkloadModel(
            name="SDSC-SP2",
            processors=128,
            n_jobs=59_000,
            n_users=140,
            offered_load=0.87,
            runtime_log_mu=8.2,
            runtime_log_sigma=1.5,
            width_mix=(0.58, 0.30, 0.12),
            width_max_frac=1.0,
            session_jobs_mean=3.5,
            session_gap_minutes=12.0,
            day_amplitude=0.65,
            week_amplitude=0.45,
            estimate_styles=(0.20, 0.45, 0.35),
            estimate_margin_range=(1.5, 6.0),
            max_requested_hours=72.0,
            failure_prob=0.018,
            burstiness=1.0,
            throughput_jobs_per_day=81.0,
            sim_processors=128,
        ),
    )


def _sdsc_blue() -> LogSpec:
    # Blue Horizon: big machine, wide power-of-two jobs, good throughput.
    return LogSpec(
        name="SDSC-BLUE",
        year=2003,
        cpus=1_152,
        jobs=243_000,
        duration_months=32,
        source="Parallel Workloads Archive",
        model=WorkloadModel(
            name="SDSC-BLUE",
            processors=1_152,
            n_jobs=243_000,
            n_users=300,
            offered_load=0.80,
            runtime_log_mu=7.4,
            runtime_log_sigma=1.4,
            width_mix=(0.48, 0.36, 0.16),
            width_max_frac=1.0,
            session_jobs_mean=5.0,
            session_gap_minutes=8.0,
            day_amplitude=0.6,
            week_amplitude=0.4,
            estimate_styles=(0.30, 0.45, 0.25),
            estimate_margin_range=(1.3, 5.0),
            max_requested_hours=36.0,
            failure_prob=0.015,
            burstiness=1.0,
            throughput_jobs_per_day=253.0,
            sim_processors=256,
        ),
    )


def _curie() -> LogSpec:
    # Curie: petascale machine with a torrent of short narrow jobs and
    # terrible estimates (many queue-maximum requests) -- the log where
    # the paper gains most from prediction (86% vs EASY).
    return LogSpec(
        name="Curie",
        year=2012,
        cpus=80_640,
        jobs=312_000,
        duration_months=3,
        source="Parallel Workloads Archive (CEA)",
        model=WorkloadModel(
            name="Curie",
            processors=4_096,  # scaled for tractable simulation, see DESIGN.md
            n_jobs=312_000,
            n_users=380,
            offered_load=0.90,
            runtime_log_mu=6.3,
            runtime_log_sigma=1.7,
            width_mix=(0.72, 0.18, 0.10),
            width_max_frac=0.8,
            session_jobs_mean=7.0,
            session_gap_minutes=4.0,
            day_amplitude=0.5,
            week_amplitude=0.3,
            estimate_styles=(0.15, 0.30, 0.55),
            estimate_margin_range=(2.0, 10.0),
            max_requested_hours=24.0,
            failure_prob=0.04,
            burstiness=1.2,
            throughput_jobs_per_day=1000.0,
            sim_processors=512,
        ),
    )


def _metacentrum() -> LogSpec:
    # Czech national grid: many users, mostly narrow jobs, fast tempo.
    return LogSpec(
        name="Metacentrum",
        year=2013,
        cpus=3_356,
        jobs=495_000,
        duration_months=6,
        source="Klusacek (fi.muni.cz)",
        model=WorkloadModel(
            name="Metacentrum",
            processors=3_356,
            n_jobs=495_000,
            n_users=450,
            offered_load=0.85,
            runtime_log_mu=7.0,
            runtime_log_sigma=1.5,
            width_mix=(0.55, 0.30, 0.15),
            width_max_frac=0.8,
            session_jobs_mean=6.0,
            session_gap_minutes=5.0,
            day_amplitude=0.6,
            week_amplitude=0.45,
            estimate_styles=(0.15, 0.50, 0.35),
            estimate_margin_range=(2.0, 8.0),
            max_requested_hours=48.0,
            min_request_choices=(1800.0, 3600.0, 7200.0, 14400.0),
            failure_prob=0.015,
            burstiness=1.1,
            throughput_jobs_per_day=400.0,
            sim_processors=128,
        ),
    )


ARCHIVE: dict[str, LogSpec] = {
    spec.name: spec
    for spec in (
        _kth_sp2(),
        _ctc_sp2(),
        _sdsc_sp2(),
        _sdsc_blue(),
        _curie(),
        _metacentrum(),
    )
}

#: Log names in the paper's presentation order.
LOG_NAMES: tuple[str, ...] = tuple(ARCHIVE)


def table4_rows() -> list[tuple[str, int, int, str, str]]:
    """The rows of the paper's Table 4 (published metadata, verbatim)."""
    return [spec.row() for spec in ARCHIVE.values()]


def get_trace(
    name: str,
    n_jobs: int | None = None,
    seed: int | None = None,
    swf_dir: str | None = None,
) -> Trace:
    """Return the evaluation trace for log ``name``.

    If ``swf_dir`` (or the ``REPRO_SWF_DIR`` environment variable) points
    to a directory containing ``<name>.swf``, the real log is parsed and
    truncated to ``n_jobs``.  Otherwise a calibrated synthetic trace is
    generated with ``n_jobs`` jobs (default: a simulation-sized subset).

    ``seed`` controls synthesis only; it defaults to a stable hash of the
    log name so repeated calls agree.
    """
    if name not in ARCHIVE:
        raise KeyError(f"unknown log {name!r}; known: {', '.join(LOG_NAMES)}")
    spec = ARCHIVE[name]
    directory = swf_dir or os.environ.get("REPRO_SWF_DIR", "")
    if directory:
        path = os.path.join(directory, f"{name}.swf")
        if os.path.exists(path):
            from .swf import load_swf

            trace, _report = load_swf(path)
            trace = trace.rebase_time(name=name)
            if n_jobs is not None:
                trace = trace.head(n_jobs, name=name)
            return trace
    model = spec.model
    if n_jobs is not None:
        model = model.resized(n_jobs)
    else:
        model = model.resized(min(model.n_jobs, 2500))
    if seed is None:
        seed = stable_seed(name)
    return synthesize(model, seed=seed)


def stable_seed(name: str) -> int:
    """Deterministic, platform-stable 32-bit seed from a log name."""
    h = 2166136261
    for ch in name.encode("utf-8"):
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h
