"""Standard Workload Format reader and writer.

Parses the 18-field SWF used by the Parallel Workloads Archive into a
:class:`~repro.workload.trace.Trace` and writes traces back out, so
synthetic workloads can be inspected with standard PWA tooling and real
archive logs can be fed to the simulator when available.

SWF conventions honoured here:

* lines starting with ``;`` are header comments; ``; Key: Value`` pairs
  are collected into the returned header dictionary;
* missing numeric values are encoded as ``-1``;
* the requested-time field may be missing (``-1``), in which case we fall
  back to the actual runtime (the job is then "perfectly estimated" --
  the same convention pyss uses);
* jobs with non-positive runtime or processor count are skipped (they
  represent cancelled-before-start entries) and counted in the parse
  report.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field
from typing import TextIO

from .fields import SwfField
from .job import Job
from .trace import Trace

__all__ = ["ParseReport", "load_swf", "loads_swf", "save_swf", "dumps_swf"]


@dataclass
class ParseReport:
    """Outcome of parsing an SWF stream."""

    n_lines: int = 0
    n_jobs: int = 0
    n_skipped: int = 0
    n_clamped_runtime: int = 0
    header: dict[str, str] = field(default_factory=dict)
    skipped_reasons: dict[str, int] = field(default_factory=dict)

    def note_skip(self, reason: str) -> None:
        self.n_skipped += 1
        self.skipped_reasons[reason] = self.skipped_reasons.get(reason, 0) + 1


def _parse_header_line(line: str, report: ParseReport) -> None:
    body = line.lstrip(";").strip()
    if ":" in body:
        key, _, value = body.partition(":")
        key = key.strip()
        value = value.strip()
        if key and key not in report.header:
            report.header[key] = value


def _job_from_fields(fields: list[float], report: ParseReport) -> Job | None:
    job_id = int(fields[SwfField.JOB_ID])
    runtime = float(fields[SwfField.RUN_TIME])
    procs = int(fields[SwfField.ALLOCATED_PROCESSORS])
    if procs <= 0:
        procs = int(fields[SwfField.REQUESTED_PROCESSORS])
    if runtime <= 0:
        report.note_skip("nonpositive runtime")
        return None
    if procs <= 0:
        report.note_skip("nonpositive processors")
        return None
    requested = float(fields[SwfField.REQUESTED_TIME])
    if requested <= 0:
        requested = runtime
    if runtime > requested:
        # SWF logs occasionally record runtimes slightly above the request
        # (grace periods at kill time).  Clamp to keep the model invariant.
        runtime = requested
        report.n_clamped_runtime += 1
    return Job(
        job_id=job_id,
        submit_time=float(fields[SwfField.SUBMIT_TIME]),
        runtime=runtime,
        processors=procs,
        requested_time=requested,
        user=int(fields[SwfField.USER_ID]),
        group=int(fields[SwfField.GROUP_ID]),
        executable=int(fields[SwfField.EXECUTABLE]),
        queue=int(fields[SwfField.QUEUE]),
        partition=int(fields[SwfField.PARTITION]),
        status=int(fields[SwfField.STATUS]),
        cpu_time=float(fields[SwfField.AVERAGE_CPU_TIME]),
        memory=float(fields[SwfField.USED_MEMORY]),
        requested_processors=int(fields[SwfField.REQUESTED_PROCESSORS]),
        requested_memory=float(fields[SwfField.REQUESTED_MEMORY]),
        preceding_job=int(fields[SwfField.PRECEDING_JOB]),
        think_time=float(fields[SwfField.THINK_TIME]),
    )


def _parse_stream(stream: TextIO, name: str, processors: int | None) -> tuple[Trace, ParseReport]:
    report = ParseReport()
    jobs: list[Job] = []
    seen_ids: set[int] = set()
    next_fresh_id = 0
    for line in stream:
        report.n_lines += 1
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(";"):
            _parse_header_line(stripped, report)
            continue
        parts = stripped.split()
        if len(parts) < 18:
            report.note_skip("short line")
            continue
        try:
            values = [float(p) for p in parts[:18]]
        except ValueError:
            report.note_skip("non-numeric field")
            continue
        job = _job_from_fields(values, report)
        if job is None:
            continue
        if job.job_id in seen_ids:
            # PWA logs are 1-indexed and occasionally repeat ids across
            # partitions; remap duplicates to fresh negative-free ids.
            next_fresh_id = max(max(seen_ids) + 1, next_fresh_id)
            job = job.with_updates(job_id=next_fresh_id)
            next_fresh_id += 1
        seen_ids.add(job.job_id)
        jobs.append(job)
        report.n_jobs += 1

    if processors is None:
        for key in ("MaxProcs", "MaxNodes"):
            if key in report.header:
                try:
                    processors = int(report.header[key])
                    break
                except ValueError:
                    continue
    if processors is None or processors <= 0:
        processors = max((j.processors for j in jobs), default=1)
    unix_start = 0
    if "UnixStartTime" in report.header:
        try:
            unix_start = int(report.header["UnixStartTime"])
        except ValueError:
            unix_start = 0
    trace = Trace(jobs, processors=processors, name=name, unix_start_time=unix_start)
    return trace, report


def load_swf(path: str | os.PathLike, processors: int | None = None) -> tuple[Trace, ParseReport]:
    """Parse an SWF file into a trace.

    ``processors`` overrides the machine size; when omitted it is taken
    from the ``MaxProcs``/``MaxNodes`` header or, failing that, the widest
    job in the log.
    Returns ``(trace, report)``.
    """
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    with open(path, encoding="utf-8", errors="replace") as fh:
        return _parse_stream(fh, name=name, processors=processors)


def loads_swf(text: str, name: str = "swf", processors: int | None = None) -> tuple[Trace, ParseReport]:
    """Parse SWF content from a string. Returns ``(trace, report)``."""
    return _parse_stream(io.StringIO(text), name=name, processors=processors)


def _format_job(job: Job) -> str:
    fields = [
        job.job_id,
        int(round(job.submit_time)),
        -1,  # wait time: simulation output, unknown in an input trace
        int(round(job.runtime)),
        job.processors,
        int(job.cpu_time) if job.cpu_time >= 0 else -1,
        int(job.memory) if job.memory >= 0 else -1,
        job.requested_processors if job.requested_processors > 0 else job.processors,
        int(round(job.requested_time)),
        int(job.requested_memory) if job.requested_memory >= 0 else -1,
        job.status,
        job.user,
        job.group,
        job.executable,
        job.queue,
        job.partition,
        job.preceding_job,
        int(job.think_time) if job.think_time >= 0 else -1,
    ]
    return " ".join(str(v) for v in fields)


def dumps_swf(trace: Trace) -> str:
    """Serialise a trace to SWF text (header + 18-field records)."""
    lines = [
        "; Version: 2.2",
        f"; Computer: {trace.name}",
        "; Conversion: repro.workload.swf",
        f"; MaxJobs: {len(trace)}",
        f"; MaxRecords: {len(trace)}",
        f"; UnixStartTime: {trace.unix_start_time}",
        f"; MaxProcs: {trace.processors}",
    ]
    lines.extend(_format_job(job) for job in trace)
    return "\n".join(lines) + "\n"


def save_swf(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace to ``path`` in SWF format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_swf(trace))
