"""Workload substrate: job model, SWF I/O, archive metadata, synthesis."""

from .archive import ARCHIVE, LOG_NAMES, LogSpec, get_trace, stable_seed, table4_rows
from .estimates import ROUND_VALUES, EstimateStyle, round_up_to_round_value
from .filters import (
    clamp_requested,
    drop_flurries,
    drop_oversized,
    drop_status,
    restrict_interval,
    standard_clean,
)
from .job import Job, validate_job
from .swf import ParseReport, dumps_swf, load_swf, loads_swf, save_swf
from .synthetic import WorkloadModel, arrival_intensity, synthesize
from .trace import Trace, TraceStats

__all__ = [
    "ARCHIVE",
    "LOG_NAMES",
    "LogSpec",
    "get_trace",
    "stable_seed",
    "table4_rows",
    "ROUND_VALUES",
    "EstimateStyle",
    "round_up_to_round_value",
    "clamp_requested",
    "drop_flurries",
    "drop_oversized",
    "drop_status",
    "restrict_interval",
    "standard_clean",
    "Job",
    "validate_job",
    "ParseReport",
    "dumps_swf",
    "load_swf",
    "loads_swf",
    "save_swf",
    "WorkloadModel",
    "arrival_intensity",
    "synthesize",
    "Trace",
    "TraceStats",
]
