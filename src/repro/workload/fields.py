"""Standard Workload Format (SWF) field definitions.

The SWF is the de-facto standard of the Parallel Workloads Archive
(Feitelson, Tsafrir & Krakov 2014).  Each non-comment line holds 18
whitespace-separated fields; header comments start with ``;``.

This module centralises field indices and header keys so the parser and
writer stay in sync.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["SwfField", "SWF_FIELD_COUNT", "HEADER_KEYS", "STATUS_MEANINGS"]


class SwfField(IntEnum):
    """Column indices of the 18 SWF fields (0-based)."""

    JOB_ID = 0
    SUBMIT_TIME = 1
    WAIT_TIME = 2
    RUN_TIME = 3
    ALLOCATED_PROCESSORS = 4
    AVERAGE_CPU_TIME = 5
    USED_MEMORY = 6
    REQUESTED_PROCESSORS = 7
    REQUESTED_TIME = 8
    REQUESTED_MEMORY = 9
    STATUS = 10
    USER_ID = 11
    GROUP_ID = 12
    EXECUTABLE = 13
    QUEUE = 14
    PARTITION = 15
    PRECEDING_JOB = 16
    THINK_TIME = 17


SWF_FIELD_COUNT = 18

#: Recognised SWF header directive keys (subset relevant to simulation).
HEADER_KEYS = (
    "Version",
    "Computer",
    "Installation",
    "Conversion",
    "MaxJobs",
    "MaxRecords",
    "UnixStartTime",
    "TimeZoneString",
    "StartTime",
    "EndTime",
    "MaxNodes",
    "MaxProcs",
    "MaxRuntime",
    "MaxMemory",
    "AllowOveruse",
    "MaxQueues",
    "Queues",
    "Queue",
    "MaxPartitions",
    "Partitions",
    "Partition",
    "Note",
)

#: SWF status field semantics.
STATUS_MEANINGS = {
    0: "failed",
    1: "completed",
    2: "partial-to-be-continued",
    3: "partial-last",
    4: "partial-failed",
    5: "cancelled",
    -1: "unknown",
}
