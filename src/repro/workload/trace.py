"""Trace container: an ordered collection of jobs plus platform metadata.

A :class:`Trace` is the unit fed to the simulator.  It knows the machine
size ``m`` (total identical processors) and exposes summary statistics
used for calibration checks and reporting (Table 4 of the paper).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from .job import Job

__all__ = ["Trace", "TraceStats"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (all times in seconds)."""

    n_jobs: int
    processors: int
    duration: float
    total_area: float
    offered_load: float
    mean_runtime: float
    median_runtime: float
    mean_processors: float
    mean_overestimation: float
    n_users: int

    def describe(self) -> str:
        """Human-readable one-paragraph description."""
        days = self.duration / 86400.0
        return (
            f"{self.n_jobs} jobs over {days:.1f} days on {self.processors} "
            f"processors; offered load {self.offered_load:.2f}; mean runtime "
            f"{self.mean_runtime:.0f}s (median {self.median_runtime:.0f}s); "
            f"mean width {self.mean_processors:.1f} procs; mean requested/actual "
            f"ratio {self.mean_overestimation:.1f}; {self.n_users} users"
        )


class Trace:
    """An ordered, validated sequence of jobs on a machine of ``m`` processors.

    Jobs are kept sorted by submit time (ties broken by job id), which is
    the order the simulator consumes them in.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        processors: int,
        name: str = "trace",
        unix_start_time: int = 0,
    ) -> None:
        if processors <= 0:
            raise ValueError(f"trace machine size must be > 0, got {processors}")
        self._jobs: list[Job] = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self.processors = int(processors)
        self.name = name
        self.unix_start_time = int(unix_start_time)
        for job in self._jobs:
            if job.processors > self.processors:
                raise ValueError(
                    f"job {job.job_id} requests {job.processors} processors but "
                    f"the machine only has {self.processors}"
                )
        ids = [j.job_id for j in self._jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in trace")

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index):
        return self._jobs[index]

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, n_jobs={len(self)}, m={self.processors})"

    @property
    def jobs(self) -> Sequence[Job]:
        """The jobs in submit order (read-only view)."""
        return tuple(self._jobs)

    # -- derived quantities --------------------------------------------------
    @property
    def duration(self) -> float:
        """Time span from first submission to last completion bound."""
        if not self._jobs:
            return 0.0
        start = self._jobs[0].submit_time
        end = max(j.submit_time + j.runtime for j in self._jobs)
        return end - start

    def digest(self) -> str:
        """Stable 16-hex-char content digest of the trace.

        Hashes every simulation-relevant job field plus the machine size,
        so any change to the workload generator (or a differently seeded
        draw) yields a different digest.  Used to key campaign result
        caches: a cache cell is only reused for the *exact* trace it was
        computed on.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"m={self.processors}".encode())
        for j in self._jobs:
            h.update(
                f"|{j.job_id},{j.submit_time!r},{j.runtime!r},"
                f"{j.processors},{j.requested_time!r},{j.user}".encode()
            )
        return h.hexdigest()[:16]

    def stats(self) -> TraceStats:
        """Compute summary statistics for calibration and reporting."""
        if not self._jobs:
            return TraceStats(0, self.processors, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
        runtimes = np.array([j.runtime for j in self._jobs])
        procs = np.array([j.processors for j in self._jobs])
        over = np.array([j.overestimation_factor for j in self._jobs])
        area = float(np.sum(runtimes * procs))
        duration = self.duration
        load = area / (self.processors * duration) if duration > 0 else math.inf
        return TraceStats(
            n_jobs=len(self._jobs),
            processors=self.processors,
            duration=duration,
            total_area=area,
            offered_load=load,
            mean_runtime=float(runtimes.mean()),
            median_runtime=float(np.median(runtimes)),
            mean_processors=float(procs.mean()),
            mean_overestimation=float(over.mean()),
            n_users=len({j.user for j in self._jobs}),
        )

    # -- transformations -----------------------------------------------------
    def filter(self, predicate: Callable[[Job], bool], name: str | None = None) -> Trace:
        """Return a new trace containing only jobs satisfying ``predicate``."""
        return Trace(
            (j for j in self._jobs if predicate(j)),
            processors=self.processors,
            name=name or self.name,
            unix_start_time=self.unix_start_time,
        )

    def head(self, n: int, name: str | None = None) -> Trace:
        """Return a new trace with only the first ``n`` jobs (submit order)."""
        return Trace(
            self._jobs[: max(0, n)],
            processors=self.processors,
            name=name or f"{self.name}[:{n}]",
            unix_start_time=self.unix_start_time,
        )

    def rebase_time(self, name: str | None = None) -> Trace:
        """Shift submit times so the first job is released at t=0."""
        if not self._jobs:
            return self
        t0 = self._jobs[0].submit_time
        return Trace(
            (j.with_updates(submit_time=j.submit_time - t0) for j in self._jobs),
            processors=self.processors,
            name=name or self.name,
            unix_start_time=self.unix_start_time + int(t0),
        )
