"""Trace cleaning filters.

The Parallel Workloads Archive usage notes (Feitelson, Tsafrir & Krakov
2014) recommend cleaning logs before simulation; the paper follows that
practice implicitly by simulating cleaned logs.  These filters implement
the standard cleanings so real SWF files can be prepared the same way,
and so synthetic traces can be sanity-checked.
"""

from __future__ import annotations

from .job import Job
from .trace import Trace

__all__ = [
    "drop_oversized",
    "drop_status",
    "clamp_requested",
    "restrict_interval",
    "drop_flurries",
    "standard_clean",
]


def drop_oversized(trace: Trace) -> Trace:
    """Drop jobs requesting more processors than the machine has."""
    return trace.filter(lambda j: j.processors <= trace.processors)


def drop_status(trace: Trace, statuses: tuple[int, ...] = (5,)) -> Trace:
    """Drop jobs whose SWF status is in ``statuses`` (default: cancelled)."""
    return trace.filter(lambda j: j.status not in statuses)


def clamp_requested(trace: Trace, max_seconds: float) -> Trace:
    """Clamp requested times to ``max_seconds`` (queue-limit normalisation).

    Runtimes above the new cap are clamped with it, preserving the model
    invariant ``runtime <= requested_time``.
    """
    if max_seconds <= 0:
        raise ValueError("max_seconds must be positive")

    def fix(job: Job) -> Job:
        if job.requested_time <= max_seconds:
            return job
        return job.with_updates(
            requested_time=max_seconds, runtime=min(job.runtime, max_seconds)
        )

    return Trace(
        (fix(j) for j in trace),
        processors=trace.processors,
        name=trace.name,
        unix_start_time=trace.unix_start_time,
    )


def restrict_interval(trace: Trace, start: float, end: float) -> Trace:
    """Keep only jobs submitted in ``[start, end)`` and rebase time."""
    if end <= start:
        raise ValueError("end must be greater than start")
    return trace.filter(lambda j: start <= j.submit_time < end).rebase_time()


def drop_flurries(trace: Trace, user_jobs_per_hour: float = 120.0) -> Trace:
    """Remove per-user submission flurries (PWA cleaning heuristic).

    A *flurry* is an abnormal burst of submissions by one user (e.g. a
    runaway script) which distorts scheduling metrics.  Jobs are dropped
    while their user's submission rate over the trailing hour exceeds
    ``user_jobs_per_hour``.
    """
    if user_jobs_per_hour <= 0:
        raise ValueError("user_jobs_per_hour must be positive")
    window = 3600.0
    recent: dict[int, list[float]] = {}
    keep_ids: set[int] = set()
    for job in trace:
        times = recent.setdefault(job.user, [])
        while times and times[0] < job.submit_time - window:
            times.pop(0)
        if len(times) < user_jobs_per_hour:
            keep_ids.add(job.job_id)
        times.append(job.submit_time)
    return trace.filter(lambda j: j.job_id in keep_ids)


def standard_clean(trace: Trace, max_requested_seconds: float | None = None) -> Trace:
    """Apply the standard cleaning pipeline used before simulation."""
    cleaned = drop_oversized(trace)
    cleaned = drop_status(cleaned, statuses=(5,))
    if max_requested_seconds is not None:
        cleaned = clamp_requested(cleaned, max_requested_seconds)
    cleaned = drop_flurries(cleaned)
    return cleaned.rebase_time()
