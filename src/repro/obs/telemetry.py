"""The instrumentation core: counters, gauges, histograms, timed spans.

Design constraints, in priority order:

1. **Near-zero overhead when off.**  Every instrumented hot path is
   written as ``if tele.enabled: ...`` against either a real
   :class:`Telemetry` or the module-level :data:`NOOP` singleton, so the
   disabled cost is one attribute load and a branch.  The engine bench
   gate (``benchmarks/bench_engine.py``) measures exactly this path.
2. **Mergeable.**  Campaign cells run in pool worker *processes*;
   their metrics come home as plain-dict snapshots and are folded into
   the coordinator's registry with :meth:`Telemetry.merge_snapshot`.
   Histograms therefore use power-of-two buckets keyed by exponent --
   two histograms merge by summing bucket counts, with no bucket-edge
   negotiation.
3. **Dependency-free.**  ``repro.obs`` imports nothing from the rest of
   the package, so any layer (sim, dist, serve, cli) may import it
   without cycles.

A :class:`Telemetry` is also the in-memory aggregator used by tests:
``counter_value``/``histogram``/``snapshot`` expose everything recorded.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .sinks import JsonlTraceSink

__all__ = ["Histogram", "Telemetry", "NOOP"]

#: bucket index for values <= 0 (log buckets cannot hold them).
_ZERO_BUCKET = -1075  # below the exponent of the smallest positive float


def bucket_index(value: float) -> int:
    """The log2 bucket holding ``value``: smallest e with value <= 2**e."""
    if value <= 0.0:
        return _ZERO_BUCKET
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    # frexp keeps 0.5 <= mantissa < 1, so 2**exponent >= value always;
    # exact powers of two (mantissa == 0.5) belong one bucket down
    return exponent - 1 if mantissa == 0.5 else exponent


def bucket_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (0.0 for the zero bucket)."""
    if index <= _ZERO_BUCKET:
        return 0.0
    return math.ldexp(1.0, index)


class Histogram:
    """A mergeable log2-bucketed histogram with count/sum/min/max.

    Bucket ``e`` holds values in ``(2**(e-1), 2**e]``; values <= 0 land
    in a dedicated zero bucket.  Buckets are created on first touch, so
    an idle histogram costs one small dict.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(bucket_bound(index), self.max)
        return self.max

    def to_obj(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            # JSON object keys must be strings
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def merge_obj(self, obj: dict) -> None:
        """Fold a :meth:`to_obj` snapshot (same bucketing) into this one."""
        self.count += int(obj.get("count", 0))
        self.total += float(obj.get("sum", 0.0))
        lo, hi = obj.get("min"), obj.get("max")
        if lo is not None and lo < self.min:
            self.min = float(lo)
        if hi is not None and hi > self.max:
            self.max = float(hi)
        for key, n in obj.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(n)

    @classmethod
    def from_obj(cls, obj: dict) -> Histogram:
        hist = cls()
        hist.merge_obj(obj)
        return hist


class _Span:
    """Context manager timing one operation; emitted as a histogram
    observation (``<name>.seconds``) plus an optional trace event."""

    __slots__ = ("_telemetry", "name", "fields", "seconds", "_t0")

    def __init__(self, telemetry: Telemetry, name: str, fields: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.fields = fields
        self.seconds = 0.0
        self._t0 = 0.0

    def __enter__(self) -> _Span:
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.seconds = time.perf_counter() - self._t0
        tele = self._telemetry
        tele.observe(f"{self.name}.seconds", self.seconds)
        tele.event(
            "span",
            name=self.name,
            seconds=round(self.seconds, 6),
            ok=exc_type is None,
            **self.fields,
        )


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()
    name = ""
    fields: dict = {}
    seconds = 0.0

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """A named registry of counters, gauges and histograms.

    Thread-safe (serve and the worker heartbeat record from multiple
    threads); cheap enough for per-event counters when enabled, and free
    (one ``enabled`` check) when not.  ``trace`` is an optional
    :class:`repro.obs.sinks.JsonlTraceSink` receiving span/``event``
    records as they happen.
    """

    def __init__(
        self,
        component: str = "repro",
        enabled: bool = True,
        trace: JsonlTraceSink | None = None,
    ) -> None:
        self.component = component
        self.enabled = enabled
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._trace = trace
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            if value > self._gauges.get(name, -math.inf):
                self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def span(self, name: str, **fields: object) -> _Span | _NoopSpan:
        """Time a block: ``with tele.span("campaign.dispatch"): ...``."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, fields)

    def event(self, kind: str, **fields) -> None:
        """Append one record to the trace sink (no-op without a sink)."""
        if not self.enabled or self._trace is None:
            return
        record = {"kind": kind, "component": self.component}
        record.update(fields)
        self._trace.write(record)

    # -- reading (tests, renderers) ----------------------------------------
    def counter_value(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict, JSON-serialisable copy of everything recorded."""
        with self._lock:
            return {
                "component": self.component,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_obj()
                    for name, hist in self._histograms.items()
                },
            }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add; gauges keep the max (the only
        cross-process reduction that is order-independent).  This is how
        per-cell metrics travel home from pool worker processes.
        """
        if not self.enabled or not snap:
            return
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snap.get("gauges", {}).items():
                if value > self._gauges.get(name, -math.inf):
                    self._gauges[name] = float(value)
            for name, obj in snap.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge_obj(obj)

    # -- output ------------------------------------------------------------
    def prom_text(self) -> str:
        """Prometheus text exposition of the current state."""
        from .sinks import prom_text

        return prom_text(self.snapshot())

    def write(self, directory: str) -> str:
        """Write ``metrics-<component>.json`` + ``.prom`` under ``directory``."""
        from .sinks import write_snapshot

        return write_snapshot(self.snapshot(), directory)

    def close(self) -> None:
        if self._trace is not None:
            self._trace.close()


#: The shared disabled registry: every method returns immediately after
#: one ``enabled`` check, so hot paths can hold it unconditionally.
NOOP = Telemetry(component="noop", enabled=False)
