"""Human-readable rendering for ``repro metrics``: snapshots and diffs."""

from __future__ import annotations

__all__ = ["format_snapshots", "diff_snapshots"]


def _fmt(value: float) -> str:
    if value != value:  # NaN guard for torn snapshots
        return "nan"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _rows(snapshot: dict) -> list[tuple[str, str, str]]:
    rows: list[tuple[str, str, str]] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append((name, "counter", _fmt(value)))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append((name, "gauge", _fmt(value)))
    for name, obj in sorted(snapshot.get("histograms", {}).items()):
        count = obj.get("count", 0)
        total = obj.get("sum", 0.0)
        mean = total / count if count else 0.0
        detail = (
            f"count={count} mean={mean:.6g} "
            f"min={_fmt(obj.get('min') or 0)} max={_fmt(obj.get('max') or 0)}"
        )
        rows.append((name, "histogram", detail))
    return rows


def format_snapshots(snapshots: list[dict]) -> str:
    """Render loaded snapshots, grouped per component."""
    if not snapshots:
        return "no metrics snapshots found"
    blocks: list[str] = []
    for snap in snapshots:
        rows = _rows(snap)
        lines = [f"== {snap.get('component', 'repro')} =="]
        if not rows:
            lines.append("  (empty)")
        else:
            width = max(len(name) for name, _kind, _detail in rows)
            for name, kind, detail in rows:
                lines.append(f"  {name:<{width}}  {kind:<9}  {detail}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _scalar_map(snapshot: dict) -> dict[str, float]:
    """Counters plus histogram count/sum flattened to diffable scalars."""
    flat: dict[str, float] = dict(snapshot.get("counters", {}))
    for name, obj in snapshot.get("histograms", {}).items():
        flat[f"{name}:count"] = obj.get("count", 0)
        flat[f"{name}:sum"] = obj.get("sum", 0.0)
    return flat


def diff_snapshots(baseline: list[dict], current: list[dict]) -> str:
    """Per-component deltas of every cumulative metric (current - baseline).

    Gauges are point-in-time and excluded; counters and histogram
    count/sum are cumulative, so the delta is the activity between the
    two snapshots.
    """
    base = {s.get("component", "repro"): _scalar_map(s) for s in baseline}
    cur = {s.get("component", "repro"): _scalar_map(s) for s in current}
    components = sorted(set(base) | set(cur))
    blocks: list[str] = []
    for component in components:
        before = base.get(component, {})
        after = cur.get(component, {})
        deltas = [
            (name, after.get(name, 0.0) - before.get(name, 0.0))
            for name in sorted(set(before) | set(after))
        ]
        deltas = [(name, delta) for name, delta in deltas if delta != 0.0]
        lines = [f"== {component} (delta) =="]
        if not deltas:
            lines.append("  (no change)")
        else:
            width = max(len(name) for name, _delta in deltas)
            for name, delta in deltas:
                sign = "+" if delta > 0 else ""
                lines.append(f"  {name:<{width}}  {sign}{_fmt(delta)}")
        blocks.append("\n".join(lines))
    if not blocks:
        return "no metrics snapshots found"
    return "\n\n".join(blocks)
