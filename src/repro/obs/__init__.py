"""Unified telemetry: tracing spans, counters/histograms, introspection.

The package has three parts:

* :mod:`repro.obs.telemetry` -- the instrumentation core.  A
  :class:`Telemetry` registry records counters, gauges, power-of-two
  bucketed histograms and timed spans; the module-level :data:`NOOP`
  singleton makes the disabled path cost one attribute check, which is
  what every hot loop in the engine holds by default.
* :mod:`repro.obs.sinks` -- where recordings go: an append-only JSONL
  trace sink for spans/events, Prometheus text exposition, and the
  snapshot-directory layout (``metrics-<component>.json``/``.prom``)
  that ``repro metrics`` renders and diffs.
* :mod:`repro.obs.log` -- the shared stdlib-logging setup
  (``REPRO_LOG`` / ``--verbose``) every long-running component adopts.

Nothing here imports the rest of ``repro``, so any layer can depend on
it without cycles.
"""

from .log import get_logger, resolve_level, setup_logging
from .render import diff_snapshots, format_snapshots
from .sinks import JsonlTraceSink, load_snapshots, prom_text, write_snapshot
from .telemetry import NOOP, Histogram, Telemetry

__all__ = [
    "Telemetry",
    "Histogram",
    "NOOP",
    "JsonlTraceSink",
    "prom_text",
    "write_snapshot",
    "load_snapshots",
    "format_snapshots",
    "diff_snapshots",
    "get_logger",
    "setup_logging",
    "resolve_level",
]
