"""Telemetry sinks: JSONL traces, Prometheus text, snapshot directories.

A telemetry *directory* (the ``--telemetry DIR`` target) holds, per
component, up to three files:

``metrics-<component>.json``
    the registry snapshot (:meth:`repro.obs.telemetry.Telemetry.snapshot`),
    the machine-readable form ``repro metrics`` loads and diffs;
``metrics-<component>.prom``
    the same state in Prometheus text exposition, scrape-ready;
``trace-<component>.jsonl``
    an append-only stream of span/event records written live.

Components never share files, so concurrent writers (a coordinator and
several workers on one shared directory) cannot corrupt each other.
"""

from __future__ import annotations

import json
import os
import re
from typing import IO

from .telemetry import bucket_bound

__all__ = [
    "JsonlTraceSink",
    "prom_text",
    "write_snapshot",
    "load_snapshots",
    "snapshot_paths",
]

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


class JsonlTraceSink:
    """Append-only JSONL trace file; one JSON object per line.

    Opened lazily on the first write so constructing a sink for a run
    that emits nothing leaves no file behind.  Each line is flushed:
    trace records are rare (spans, lifecycle events -- not per-event
    counters), and a crash must not swallow the records explaining it.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = None

    def write(self, record: dict) -> None:
        if self._fh is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def prom_text(snapshot: dict) -> str:
    """Render one registry snapshot as Prometheus text exposition.

    Counters become ``repro_<name>_total``, gauges plain gauges, and
    histograms cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count`` -- the standard histogram triplet, with bucket edges at
    the registry's power-of-two bounds.
    """
    component = snapshot.get("component", "repro")
    label = f'{{component="{component}"}}'
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label} {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label} {value:g}")
    for name, obj in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for key in sorted(obj.get("buckets", {}), key=int):
            cumulative += obj["buckets"][key]
            bound = bucket_bound(int(key))
            lines.append(
                f'{metric}_bucket{{component="{component}",le="{bound:g}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{component="{component}",le="+Inf"}} '
            f"{obj.get('count', 0)}"
        )
        lines.append(f"{metric}_sum{label} {obj.get('sum', 0.0):g}")
        lines.append(f"{metric}_count{label} {obj.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_paths(directory: str, component: str) -> tuple[str, str]:
    """(json path, prom path) for one component under ``directory``."""
    return (
        os.path.join(directory, f"metrics-{component}.json"),
        os.path.join(directory, f"metrics-{component}.prom"),
    )


def write_snapshot(snapshot: dict, directory: str) -> str:
    """Write a snapshot's .json + .prom files; returns the json path."""
    os.makedirs(directory, exist_ok=True)
    json_path, prom_path = snapshot_paths(
        directory, snapshot.get("component", "repro")
    )
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(prom_path, "w", encoding="utf-8") as fh:
        fh.write(prom_text(snapshot))
    return json_path


def load_snapshots(directory: str) -> list[dict]:
    """Load every ``metrics-*.json`` snapshot under ``directory``.

    Sorted by component name; unreadable or non-object files are
    skipped (a crashed writer must not take the renderer down).
    """
    snapshots: list[dict] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return snapshots
    for name in names:
        if not (name.startswith("metrics-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as fh:
                snap = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(snap, dict):
            snap.setdefault("component", name[len("metrics-") : -len(".json")])
            snapshots.append(snap)
    return snapshots
