"""Shared logging setup for every repro component.

All repro loggers live under the ``"repro"`` namespace.  The level is
resolved, in priority order, from an explicit ``level`` argument, the
``REPRO_LOG`` environment variable (a name like ``debug`` or a number),
and finally ``WARNING``.  ``setup_logging`` is idempotent: repeated
calls (CLI entry + library users) reconfigure the level but attach one
handler only.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO

__all__ = ["get_logger", "setup_logging", "resolve_level"]

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_HANDLER_FLAG = "_repro_obs_handler"


def resolve_level(level: int | str | None = None, verbosity: int = 0) -> int:
    """Pick the effective level from arg > verbosity > REPRO_LOG > WARNING."""
    if level is None and verbosity > 0:
        level = logging.DEBUG if verbosity > 1 else logging.INFO
    if level is None:
        level = os.environ.get("REPRO_LOG") or logging.WARNING
    if isinstance(level, str):
        name = level.strip().upper()
        if name.isdigit():
            return int(name)
        resolved = logging.getLevelName(name)
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        return resolved
    return int(level)


def setup_logging(
    level: int | str | None = None,
    *,
    verbosity: int = 0,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger; returns it.

    ``verbosity`` maps the CLI's ``-v`` count (1 -> INFO, 2+ -> DEBUG);
    an explicit ``level`` or ``REPRO_LOG`` wins per :func:`resolve_level`.
    """
    root = logging.getLogger("repro")
    root.setLevel(resolve_level(level, verbosity))
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
        # stderr output is repro's to manage; don't double-log through
        # whatever handlers the application root may have
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
