"""Experiment spec files: declarative grids that expand to CellSpecs.

A spec file (TOML or JSON, same schema) declares campaign-level workload
defaults and one or more ``[[grid]]`` blocks whose component axes are
expanded as a cross product::

    [campaign]
    name = "paper"
    logs = ["KTH-SP2", "CTC-SP2"]     # workload axis
    n_jobs = 2000
    replicas = 3                       # seeds = stable_seed(log) + 0..r-1
    # seeds = [7, 8]                   # ...or pin them explicitly
    # processors = 256                 # machine-size override
    # filters = [{name = "max-width", params = {processors = 256}}]
    min_prediction = 60.0
    tau = 10.0

    [[grid]]
    predictor = ["requested"]          # string | inline table | "ml:*"
    corrector = ["none"]
    scheduler = ["easy", "easy-sjbf"]
    # any campaign-level key may be overridden per block

Axis entries are anything :meth:`ComponentSpec.from_obj` accepts, plus
the ``"ml:*"`` wildcard which expands to the paper's 20 machine-learned
loss configurations in their canonical order.

Scalar knobs sweep too: ``n_jobs``, ``min_prediction``, ``tau`` and
``processors`` accept a list anywhere a scalar is accepted, and the list
becomes a grid axis (``tau = [5, 10, 20]`` runs every cell at three
thresholds).  Inside an inline component table, a list-valued *param*
sweeps the same way::

    predictor = [{name = "ml", params = {over = "sq", under = "lin",
                  weight = "large-area", eta = [0.3, 0.5]}}]

Expansion order is grid-block, then predictor, corrector, scheduler
(matching :func:`repro.core.triples.campaign_triples`, with component
param sweeps expanding in declaration order at the entry's position),
then the knob axes (n_jobs, min_prediction, tau, processors), then log,
then seed; cells that expand identically (same digest) are emitted once.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping
from itertools import product
from typing import Any

from ._toml import TomlError, load_toml_text
from .cellspec import CellSpec, WorkloadSpec

__all__ = [
    "SpecFileError",
    "load_spec_file",
    "expand_spec_file",
    "expand_spec_obj",
    "validate_spec_file",
    "triple_keys_of",
]

_CAMPAIGN_KEYS = {
    "name", "description", "logs", "n_jobs", "replicas", "seeds",
    "processors", "filters", "min_prediction", "tau",
}
_AXIS_KEYS = {"predictor", "corrector", "scheduler"}


class SpecFileError(ValueError):
    """A spec file that cannot be parsed or expanded."""


def load_spec_file(path: str) -> dict:
    """Parse a ``.toml`` / ``.json`` spec file into its raw document."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SpecFileError(f"{path}: {exc}") from None
    if path.endswith(".json"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecFileError(f"{path}: invalid JSON: {exc}") from None
    else:
        try:
            doc = load_toml_text(text)
        except TomlError as exc:
            raise SpecFileError(f"{path}: invalid TOML: {exc}") from None
    if not isinstance(doc, dict):
        raise SpecFileError(f"{path}: spec document must be a table/object")
    return doc


def expand_spec_file(path: str) -> list[CellSpec]:
    return expand_spec_obj(load_spec_file(path), source=path)


def validate_spec_file(path: str) -> tuple[str, list[CellSpec]]:
    """Expand + fully normalize; returns ``(campaign name, cells)``.

    Expansion already routes every component through its registry, so a
    clean return means every cell is buildable and digestable.
    """
    doc = load_spec_file(path)
    cells = expand_spec_obj(doc, source=path)
    name = str(doc.get("campaign", {}).get("name", os.path.basename(path)))
    return name, cells


def expand_spec_obj(doc: Mapping[str, Any], source: str = "<spec>") -> list[CellSpec]:
    campaign = doc.get("campaign", {})
    if not isinstance(campaign, Mapping):
        raise SpecFileError(f"{source}: [campaign] must be a table")
    unknown = set(campaign) - _CAMPAIGN_KEYS
    if unknown:
        raise SpecFileError(
            f"{source}: unknown [campaign] key(s) {sorted(unknown)}; "
            f"known: {sorted(_CAMPAIGN_KEYS)}"
        )
    grids = doc.get("grid", [])
    extra_tables = set(doc) - {"campaign", "grid"}
    if extra_tables:
        raise SpecFileError(f"{source}: unknown table(s) {sorted(extra_tables)}")
    if isinstance(grids, Mapping):
        grids = [grids]
    if not isinstance(grids, list) or not grids:
        raise SpecFileError(f"{source}: need at least one [[grid]] block")

    cells: list[CellSpec] = []
    seen: set[str] = set()
    for index, grid in enumerate(grids):
        if not isinstance(grid, Mapping):
            raise SpecFileError(f"{source}: [[grid]] #{index} must be a table")
        where = f"{source} [[grid]] #{index}"
        unknown = set(grid) - _AXIS_KEYS - _CAMPAIGN_KEYS
        if unknown:
            raise SpecFileError(f"{where}: unknown key(s) {sorted(unknown)}")
        for cell in _expand_block(campaign, grid, where):
            if cell.digest() not in seen:
                seen.add(cell.digest())
                cells.append(cell)
    return cells


def _seed_plan(
    campaign: Mapping[str, Any], grid: Mapping[str, Any], where: str
) -> tuple[Any, Any]:
    """Resolve the (seeds, replicas) axis: one of the two per table, and
    a grid-level setting of either overrides both campaign-level ones."""
    for name, table in (("[[grid]]", grid), ("[campaign]", campaign)):
        if "seeds" in table and "replicas" in table:
            raise SpecFileError(
                f"{where}: {name} gives both seeds and replicas; pick one"
            )
        if "seeds" in table:
            return table["seeds"], None
        if "replicas" in table:
            return None, table["replicas"]
    return None, 1


def _expand_block(
    campaign: Mapping[str, Any], grid: Mapping[str, Any], where: str
) -> Iterable[CellSpec]:
    from ..workload.archive import LOG_NAMES, stable_seed

    block = {**campaign, **grid}
    predictors = _component_axis(block, "predictor", where)
    correctors = _component_axis(block, "corrector", where, default=("none",))
    schedulers = _component_axis(block, "scheduler", where)
    logs = _as_list(block.get("logs"), where, "logs")
    if not logs:
        raise SpecFileError(f"{where}: no logs (set [campaign] logs or per-grid logs)")
    unknown_logs = [log for log in logs if log not in LOG_NAMES]
    if unknown_logs:
        raise SpecFileError(
            f"{where}: unknown log(s) {unknown_logs}; known: {', '.join(LOG_NAMES)}"
        )
    n_jobs_axis = _knob_axis(block.get("n_jobs", 2000), where, "n_jobs")
    mp_axis = _knob_axis(block.get("min_prediction", 60.0), where, "min_prediction")
    tau_axis = _knob_axis(block.get("tau", 10.0), where, "tau")
    proc_axis = _knob_axis(block.get("processors"), where, "processors", optional=True)
    filters = tuple(block.get("filters", ()) or ())
    seeds, replicas = _seed_plan(campaign, grid, where)

    try:
        for predictor in predictors:
            for corrector in correctors:
                for scheduler in schedulers:
                    for n_jobs, min_prediction, tau, processors in product(
                        n_jobs_axis, mp_axis, tau_axis, proc_axis
                    ):
                        for log in logs:
                            if seeds is not None:
                                log_seeds = [
                                    int(s) for s in _as_list(seeds, where, "seeds")
                                ]
                            else:
                                base = stable_seed(str(log))
                                log_seeds = [base + r for r in range(int(replicas))]
                            for seed in log_seeds:
                                yield CellSpec.make(
                                    workload=WorkloadSpec.make(
                                        log=log,
                                        n_jobs=n_jobs,
                                        seed=seed,
                                        processors=processors,
                                        filters=filters,
                                    ),
                                    predictor=predictor,
                                    corrector=corrector,
                                    scheduler=scheduler,
                                    min_prediction=min_prediction,
                                    tau=tau,
                                )
    except (KeyError, ValueError, TypeError) as exc:
        raise SpecFileError(f"{where}: {exc}") from exc


def _knob_axis(
    value: Any, where: str, what: str, optional: bool = False
) -> list:
    """A scalar engine/workload knob, or a list of them (a sweep axis)."""
    if value is None:
        if optional:
            return [None]
        raise SpecFileError(f"{where}: {what} must not be null")
    if isinstance(value, (list, tuple)):
        if not value:
            raise SpecFileError(f"{where}: empty {what} sweep")
        for entry in value:
            if isinstance(entry, bool) or not isinstance(entry, (int, float)):
                raise SpecFileError(
                    f"{where}: {what} sweep entries must be numbers, "
                    f"got {entry!r}"
                )
        return list(value)
    return [value]


def _component_axis(
    block: Mapping[str, Any],
    axis: str,
    where: str,
    default: tuple | None = None,
) -> list:
    raw = block.get(axis, default)
    if raw is None:
        raise SpecFileError(f"{where}: missing {axis!r} axis")
    entries = _as_list(raw, where, axis)
    if not entries:
        raise SpecFileError(f"{where}: empty {axis!r} axis")
    out: list[Any] = []
    for entry in entries:
        if entry == "ml:*":
            if axis != "predictor":
                raise SpecFileError(f"{where}: 'ml:*' only expands on the predictor axis")
            from ..predict.loss import all_loss_specs

            out.extend(f"ml:{spec.key}" for spec in all_loss_specs())
        else:
            out.extend(_expand_param_sweeps(entry, where, axis))
    return out


def _expand_param_sweeps(entry: Any, where: str, axis: str) -> list:
    """Expand list-valued params of an inline component table.

    ``{name = "ml", params = {eta = [0.3, 0.5], ...}}`` becomes two
    entries, cross-producting when several params are lists (declaration
    order).  Non-mapping entries and scalar-only params pass through.
    """
    if not isinstance(entry, Mapping):
        return [entry]
    params = entry.get("params")
    if not isinstance(params, Mapping):
        return [entry]
    swept = [key for key, value in params.items() if isinstance(value, (list, tuple))]
    if not swept:
        return [entry]
    for key in swept:
        if not params[key]:
            raise SpecFileError(
                f"{where}: empty sweep for {axis} param {key!r}"
            )
    out = []
    for combo in product(*(params[key] for key in swept)):
        expanded = dict(params)
        expanded.update(zip(swept, combo, strict=True))
        out.append({**entry, "params": expanded})
    return out


def _as_list(value: Any, where: str, what: str) -> list:
    if value is None:
        return []
    if isinstance(value, (str, Mapping)):
        return [value]
    if isinstance(value, (list, tuple)):
        return list(value)
    raise SpecFileError(f"{where}: {what} must be a value or a list")


def triple_keys_of(cells: Iterable[CellSpec]) -> list[str]:
    """Unique legacy triple keys, in first-appearance order (``None``
    entries -- cells with no legacy spelling -- are skipped)."""
    seen: set[str] = set()
    keys: list[str] = []
    for cell in cells:
        key = cell.triple_key
        if key is not None and key not in seen:
            seen.add(key)
            keys.append(key)
    return keys
