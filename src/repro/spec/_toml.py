"""TOML loading for experiment spec files.

CPython >= 3.11 ships :mod:`tomllib`; on 3.10 (still in our support
matrix, and nothing may be pip-installed at runtime) we fall back to a
deliberately small parser covering exactly the subset experiment files
use: ``[table]`` / ``[[array-of-tables]]`` headers, ``key = value``
pairs with strings, integers, floats, booleans, (possibly multiline)
arrays, and inline tables.  No dotted keys, no datetimes, no multiline
strings -- spec files needing those should be written as JSON instead.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

try:  # pragma: no cover - trivially version-dependent
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    _tomllib = None

__all__ = ["load_toml_text", "TomlError"]


class TomlError(ValueError):
    """Malformed TOML (either stdlib-reported or subset-parser-reported)."""


def load_toml_text(text: str) -> dict:
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TomlError(str(exc)) from None
    return _parse_subset(text)


# -- the 3.10 fallback ---------------------------------------------------------


def _parse_subset(text: str) -> dict:
    root: dict[str, Any] = {}
    current = root
    lines = _logical_lines(text)
    for lineno, line in lines:
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TomlError(f"line {lineno}: malformed table-array header {line!r}")
            name = line[2:-2].strip()
            _check_key(name, lineno)
            current = {}
            root.setdefault(name, [])
            if not isinstance(root[name], list):
                raise TomlError(f"line {lineno}: {name!r} is not an array of tables")
            root[name].append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise TomlError(f"line {lineno}: malformed table header {line!r}")
            name = line[1:-1].strip()
            _check_key(name, lineno)
            if name in root and not isinstance(root[name], dict):
                raise TomlError(f"line {lineno}: {name!r} redefined")
            current = root.setdefault(name, {})
        else:
            key, _, rest = line.partition("=")
            if not _:
                raise TomlError(f"line {lineno}: expected 'key = value', got {line!r}")
            key = key.strip().strip('"')
            _check_key(key, lineno)
            if key in current:
                raise TomlError(f"line {lineno}: duplicate key {key!r}")
            value, pos = _parse_value(rest.strip(), lineno)
            if rest.strip()[pos:].strip():
                raise TomlError(f"line {lineno}: trailing garbage after value")
            current[key] = value
    return root


def _logical_lines(text: str) -> Iterator[tuple[int, str]]:
    """Physical lines joined until brackets balance outside strings."""
    buffer = ""
    start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line and not buffer:
            continue
        if not buffer:
            start = lineno
        buffer = f"{buffer} {line}".strip() if buffer else line
        if _balanced(buffer):
            if buffer:
                yield start, buffer
            buffer = ""
    if buffer:
        raise TomlError(f"line {start}: unterminated value")


def _strip_comment(line: str) -> str:
    out = []
    in_string: str | None = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out)


def _balanced(line: str) -> bool:
    depth = 0
    in_string: str | None = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
    return depth <= 0 and in_string is None


def _check_key(key: str, lineno: int) -> None:
    if not key or any(ch in key for ch in "[]{}=,"):
        raise TomlError(f"line {lineno}: bad key {key!r}")


def _parse_value(text: str, lineno: int, pos: int = 0) -> tuple[Any, int]:
    """Parse one value starting at ``pos``; returns (value, end_pos)."""
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        raise TomlError(f"line {lineno}: missing value")
    ch = text[pos]
    if ch in ("'", '"'):
        end = text.find(ch, pos + 1)
        if end < 0:
            raise TomlError(f"line {lineno}: unterminated string")
        return text[pos + 1:end], end + 1
    if ch == "[":
        items: list[Any] = []
        pos += 1
        while True:
            while pos < len(text) and text[pos] in " \t,":
                pos += 1
            if pos >= len(text):
                raise TomlError(f"line {lineno}: unterminated array")
            if text[pos] == "]":
                return items, pos + 1
            value, pos = _parse_value(text, lineno, pos)
            items.append(value)
    if ch == "{":
        table: dict[str, Any] = {}
        pos += 1
        while True:
            while pos < len(text) and text[pos] in " \t,":
                pos += 1
            if pos >= len(text):
                raise TomlError(f"line {lineno}: unterminated inline table")
            if text[pos] == "}":
                return table, pos + 1
            eq = text.find("=", pos)
            if eq < 0:
                raise TomlError(f"line {lineno}: inline table needs key = value")
            key = text[pos:eq].strip().strip('"')
            _check_key(key, lineno)
            value, pos = _parse_value(text, lineno, eq + 1)
            table[key] = value
    # bare scalar: read to the next delimiter
    end = pos
    while end < len(text) and text[end] not in ",]}":
        end += 1
    word = text[pos:end].strip()
    if word == "true":
        return True, end
    if word == "false":
        return False, end
    try:
        if any(c in word for c in ".eE") and not word.lstrip("+-").isdigit():
            return float(word), end
        return int(word), end
    except ValueError:
        raise TomlError(f"line {lineno}: cannot parse value {word!r}") from None
