"""Parameterized component specs and the unified component registry.

Every pluggable piece of a simulation -- predictor, corrector,
scheduler, workload filter -- is addressed the same way: a
:class:`ComponentSpec`, i.e. a registry ``name`` plus a flat ``params``
mapping.  The registries replace the old bare-string factories
(``make_predictor("ave2")`` etc.); strings remain accepted everywhere as
*legacy shorthand* and are lowered to fully-explicit specs, so

* ``"easy-sjbf"``            -> ``easy(order="sjbf")``
* ``"ave2"``                 -> ``ave(k=2)``
* ``"ml:sq-lin-large-area"`` -> ``ml(over="sq", under="lin", weight="large-area")``
* ``{"name": "ml", "params": {"over": "sq", "under": "lin",
  "weight": "large-area", "eta": 0.3}}`` -- a parameterization the old
  string keys could not express at all.

Normalization is canonical: every registered parameter appears in the
normalized spec with its default filled in, so two spellings of the same
configuration always produce the same canonical JSON and therefore the
same :class:`~repro.spec.cellspec.CellSpec` digest.  Conversely
:meth:`ComponentRegistry.legacy_name` lowers a spec back to the old
string key when (and only when) the configuration is expressible there,
which is what keeps pre-redesign cache rows and the paper's triple keys
round-trippable.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ComponentSpec",
    "ComponentRegistry",
    "predictor_registry",
    "corrector_registry",
    "scheduler_registry",
    "filter_registry",
    "registry_for",
]

#: Parameter values must stay scalar so specs serialize canonically.
Scalar = (bool, int, float, str)


@dataclass(frozen=True)
class ComponentSpec:
    """A component reference: registry name + flat scalar params.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    the spec is hashable and order-insensitive; use :attr:`param_dict`
    for mapping access.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, params: Mapping[str, Any] | None = None) -> ComponentSpec:
        items = dict(params or {})
        for key, value in items.items():
            if not isinstance(key, str):
                raise TypeError(f"param names must be strings, got {key!r}")
            if not isinstance(value, Scalar):
                raise TypeError(
                    f"param {key!r} of component {name!r} must be a scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
        return cls(name=str(name), params=tuple(sorted(items.items())))

    @classmethod
    def from_obj(cls, obj: ComponentSpec | str | Mapping[str, Any]) -> ComponentSpec:
        """Accept a ready spec, a legacy string name, or a JSON-ish dict."""
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, str):
            return cls.make(obj)
        if isinstance(obj, Mapping):
            extra = set(obj) - {"name", "params"}
            if "name" not in obj or extra:
                raise ValueError(
                    f"component object needs exactly 'name' (+ optional "
                    f"'params'), got keys {sorted(obj)}"
                )
            return cls.make(obj["name"], obj.get("params"))
        raise TypeError(f"cannot build a ComponentSpec from {type(obj).__name__}")

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def to_obj(self) -> dict:
        """JSON-able form (canonical when the spec is normalized)."""
        return {"name": self.name, "params": self.param_dict}

    def __str__(self) -> str:
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({inner})"


@dataclass
class _Registration:
    factory: Callable[..., Any]
    defaults: dict[str, Any]
    required: dict[str, type]


class ComponentRegistry:
    """Named, parameterized factories for one component kind.

    ``parse`` (optional) lowers legacy string shorthand that is not a
    plain registered name (e.g. ``"ave2"``); ``unparse`` (optional) maps
    a normalized spec back to that shorthand where representable.
    """

    def __init__(
        self,
        kind: str,
        parse: Callable[[str], ComponentSpec | None] | None = None,
        unparse: Callable[[ComponentSpec], str | None] | None = None,
    ) -> None:
        self.kind = kind
        self._parse = parse
        self._unparse = unparse
        self._entries: dict[str, _Registration] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        defaults: Mapping[str, Any] | None = None,
        required: Mapping[str, type] | None = None,
    ) -> None:
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} registered twice")
        self._entries[name] = _Registration(
            factory=factory,
            defaults=dict(defaults or {}),
            required=dict(required or {}),
        )

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- normalization --------------------------------------------------------
    def normalize(self, obj: ComponentSpec | str | Mapping[str, Any]) -> ComponentSpec:
        """Canonical spec: legacy strings lowered, every param explicit.

        Unknown names and unknown/ill-typed params are rejected here --
        validation and canonicalization are the same pass, so nothing
        un-buildable ever gets a digest.
        """
        spec = ComponentSpec.from_obj(obj)
        if spec.name not in self._entries and self._parse is not None:
            lowered = self._parse(spec.name)
            if lowered is not None:
                if spec.params:
                    raise ValueError(
                        f"legacy {self.kind} shorthand {spec.name!r} cannot "
                        f"take explicit params; use name "
                        f"{lowered.name!r} instead"
                    )
                spec = lowered
        entry = self._entries.get(spec.name)
        if entry is None:
            raise KeyError(
                f"unknown {self.kind} {spec.name!r}; known: "
                f"{', '.join(self.names())}"
            )
        given = spec.param_dict
        known = set(entry.defaults) | set(entry.required)
        unknown = set(given) - known
        if unknown:
            raise ValueError(
                f"{self.kind} {spec.name!r} got unknown param(s) "
                f"{sorted(unknown)}; accepts {sorted(known) or 'none'}"
            )
        missing = set(entry.required) - set(given)
        if missing:
            raise ValueError(
                f"{self.kind} {spec.name!r} missing required param(s) "
                f"{sorted(missing)}"
            )
        params: dict[str, Any] = {}
        for key, default in entry.defaults.items():
            params[key] = self._coerce(spec.name, key, given.get(key, default), type(default))
        for key, typ in entry.required.items():
            params[key] = self._coerce(spec.name, key, given[key], typ)
        return ComponentSpec.make(spec.name, params)

    def _coerce(self, name: str, key: str, value: Any, typ: type) -> Any:
        """Pin each param to its declared type so numerically-equal
        spellings (``2`` vs ``2.0``) cannot split the canonical digest."""
        if typ is bool:
            if not isinstance(value, bool):
                raise TypeError(f"{self.kind} {name!r} param {key!r} must be a bool")
            return value
        if typ is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"{self.kind} {name!r} param {key!r} must be a number")
            return float(value)
        if typ is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{self.kind} {name!r} param {key!r} must be an integer")
            return int(value)
        if not isinstance(value, str):
            raise TypeError(f"{self.kind} {name!r} param {key!r} must be a string")
        return value

    # -- construction ---------------------------------------------------------
    def build(self, obj: ComponentSpec | str | Mapping[str, Any]) -> Any:
        """Instantiate a component from any accepted spelling."""
        spec = self.normalize(obj)
        entry = self._entries[spec.name]
        return entry.factory(**spec.param_dict)

    def describe(self, obj: ComponentSpec | str | Mapping[str, Any]) -> str:
        """Compact human label: the name plus only the params that differ
        from their registered defaults (required params always shown)."""
        spec = self.normalize(obj)
        entry = self._entries[spec.name]
        shown = {
            key: value
            for key, value in spec.param_dict.items()
            if key in entry.required or entry.defaults.get(key) != value
        }
        if not shown:
            return spec.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(shown.items()))
        return f"{spec.name}({inner})"

    # -- legacy lowering ------------------------------------------------------
    def legacy_name(self, obj: ComponentSpec | str | Mapping[str, Any]) -> str | None:
        """The old string key for this configuration, or ``None`` when the
        parameterization has no legacy spelling (then only spec-keyed
        paths can address it)."""
        spec = self.normalize(obj)
        if self._unparse is not None:
            name = self._unparse(spec)
            if name is not None:
                return name
        entry = self._entries[spec.name]
        if spec.param_dict == {**entry.defaults}:
            return spec.name
        return None


# -- predictor registry --------------------------------------------------------

_ML_KEY = re.compile(r"^ml:(sq|lin)-(sq|lin)-([a-z-]+)$")


def _parse_predictor(name: str) -> ComponentSpec | None:
    if re.fullmatch(r"ave\d+", name):
        return ComponentSpec.make("ave", {"k": int(name[3:])})
    if re.fullmatch(r"quantile[0-9.]+", name):
        return ComponentSpec.make("quantile", {"quantile": float(name[8:])})
    match = _ML_KEY.match(name)
    if match:
        return ComponentSpec.make(
            "ml",
            {"over": match.group(1), "under": match.group(2), "weight": match.group(3)},
        )
    return None


def _unparse_predictor(spec: ComponentSpec) -> str | None:
    params = spec.param_dict
    if spec.name == "ave":
        return f"ave{params['k']}"
    if spec.name == "ml":
        extras = {
            k: v for k, v in params.items() if k not in ("over", "under", "weight")
        }
        if extras != {"eta": 0.5, "l2": 1e-6, "target_scale": 3600.0, "forgetting": 1.0}:
            return None  # tuned hyperparameters have no legacy spelling
        return f"ml:{params['over']}-{params['under']}-{params['weight']}"
    if spec.name == "quantile" and params.get("eta") == 0.2:
        return f"quantile{params['quantile']:g}"
    return None


def _build_predictor_registry() -> ComponentRegistry:
    from ..predict.baselines import (
        ClairvoyantPredictor,
        RecentAveragePredictor,
        RequestedTimePredictor,
    )
    from ..predict.loss import LossSpec
    from ..predict.ml import MLPredictor
    from ..predict.quantile import QuantilePredictor

    registry = ComponentRegistry(
        "predictor", parse=_parse_predictor, unparse=_unparse_predictor
    )
    registry.register("requested", RequestedTimePredictor)
    registry.register("clairvoyant", ClairvoyantPredictor)
    registry.register("ave", RecentAveragePredictor, defaults={"k": 2})
    registry.register(
        "quantile", QuantilePredictor, defaults={"quantile": 0.25, "eta": 0.2}
    )

    long = {"sq": "squared", "lin": "linear"}

    def make_ml(over: str, under: str, weight: str, eta: float, l2: float,
                target_scale: float, forgetting: float) -> MLPredictor:
        if over not in long or under not in long:
            raise ValueError(
                f"ml branches must be 'sq' or 'lin', got over={over!r} under={under!r}"
            )
        return MLPredictor(
            LossSpec(over=long[over], under=long[under], weight=weight),
            eta=eta,
            l2=l2,
            target_scale=target_scale,
            forgetting=forgetting,
        )

    registry.register(
        "ml",
        make_ml,
        required={"over": str, "under": str, "weight": str},
        defaults={"eta": 0.5, "l2": 1e-6, "target_scale": 3600.0, "forgetting": 1.0},
    )
    return registry


# -- corrector registry --------------------------------------------------------


def _build_corrector_registry() -> ComponentRegistry:
    from ..correct.mechanisms import (
        IncrementalCorrector,
        RecursiveDoublingCorrector,
        RequestedTimeCorrector,
    )

    registry = ComponentRegistry("corrector")
    registry.register("requested", RequestedTimeCorrector)
    registry.register("incremental", IncrementalCorrector)
    registry.register("doubling", RecursiveDoublingCorrector)
    return registry


# -- scheduler registry --------------------------------------------------------

#: legacy "<base>-<order>" scheduler spellings (base name carries fcfs).
_SCHED_ORDERS = ("sjbf", "saf", "narrow")


def _parse_scheduler(name: str) -> ComponentSpec | None:
    for base in ("easy", "conservative", "multifactor", "legacy-easy", "legacy-conservative"):
        if name == base:
            return ComponentSpec.make(base)
        for order in _SCHED_ORDERS:
            if name == f"{base}-{order}":
                return ComponentSpec.make(base, {"order": order})
    return None


def _unparse_scheduler(spec: ComponentSpec) -> str | None:
    order = spec.param_dict.get("order")
    if order is None:
        return None
    if order == "fcfs":
        return spec.name
    return f"{spec.name}-{order}"


def _build_scheduler_registry() -> ComponentRegistry:
    from ..sched.base import Scheduler
    from ..sched.conservative import ConservativeScheduler
    from ..sched.easy import EasyScheduler
    from ..sched.fcfs import FcfsScheduler
    from ..sched.legacy import LegacyConservativeScheduler, LegacyEasyScheduler
    from ..sched.priority import MultifactorScheduler

    registry = ComponentRegistry(
        "scheduler", parse=_parse_scheduler, unparse=_unparse_scheduler
    )
    registry.register("fcfs", FcfsScheduler)
    registry.register(
        "easy", lambda order: EasyScheduler(order), defaults={"order": "fcfs"}
    )
    registry.register(
        "conservative",
        lambda order: ConservativeScheduler(order),
        defaults={"order": "fcfs"},
    )
    registry.register(
        "multifactor",
        lambda order: MultifactorScheduler(backfill_order=order),
        defaults={"order": "fcfs"},
    )
    def make_rl_backfill(policy: str, store: str) -> Scheduler:
        # lazy: only building a learned cell pays the repro.learn import
        # (and the checkpoint load); normalizing/digesting specs does not
        from ..learn import build_rl_scheduler

        return build_rl_scheduler(policy, store)

    registry.register(
        "rl-backfill",
        make_rl_backfill,
        required={"policy": str},
        defaults={"store": ""},
    )
    registry.register(
        "legacy-easy",
        lambda order: LegacyEasyScheduler(order),
        defaults={"order": "fcfs"},
    )
    registry.register(
        "legacy-conservative",
        lambda order: LegacyConservativeScheduler(order),
        defaults={"order": "fcfs"},
    )
    return registry


# -- workload filter registry --------------------------------------------------


def _build_filter_registry() -> ComponentRegistry:
    from ..workload import filters as wf

    registry = ComponentRegistry("filter")
    registry.register("drop-oversized", lambda: wf.drop_oversized)
    registry.register(
        "max-width",
        lambda processors: (
            lambda trace: trace.filter(
                lambda job: job.processors <= processors,
                name=f"{trace.name}/maxw{processors}",
            )
        ),
        required={"processors": int},
    )
    registry.register(
        "clamp-requested",
        lambda max_seconds: (lambda trace: wf.clamp_requested(trace, max_seconds)),
        required={"max_seconds": float},
    )
    registry.register(
        "drop-flurries",
        lambda user_jobs_per_hour: (
            lambda trace: wf.drop_flurries(trace, user_jobs_per_hour)
        ),
        defaults={"user_jobs_per_hour": 120.0},
    )
    return registry


# -- singletons ----------------------------------------------------------------

_REGISTRIES: dict[str, ComponentRegistry] = {}

_BUILDERS = {
    "predictor": _build_predictor_registry,
    "corrector": _build_corrector_registry,
    "scheduler": _build_scheduler_registry,
    "filter": _build_filter_registry,
}


def registry_for(kind: str) -> ComponentRegistry:
    """The process-wide registry of one component kind (lazily built, so
    importing :mod:`repro.spec` never drags in every component module)."""
    registry = _REGISTRIES.get(kind)
    if registry is None:
        try:
            builder = _BUILDERS[kind]
        except KeyError:
            raise KeyError(
                f"unknown component kind {kind!r}; known: {', '.join(_BUILDERS)}"
            ) from None
        registry = builder()
        _REGISTRIES[kind] = registry
    return registry


def predictor_registry() -> ComponentRegistry:
    return registry_for("predictor")


def corrector_registry() -> ComponentRegistry:
    return registry_for("corrector")


def scheduler_registry() -> ComponentRegistry:
    return registry_for("scheduler")


def filter_registry() -> ComponentRegistry:
    return registry_for("filter")
