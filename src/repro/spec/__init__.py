"""Declarative experiment specification API (the scenario-spec layer).

``repro.spec`` is the single source of truth for *what an experiment
cell is*: a versioned, canonically-serializable :class:`CellSpec` whose
content digest keys the campaign cache and identifies cells on the
distributed queue, backed by a unified parameterized component registry
(predictors, correctors, schedulers, workload filters) and a grid
expander that turns TOML/JSON experiment files into cell lists.
"""

from .cellspec import SPEC_VERSION, CellSpec, WorkloadSpec, canonical_json
from .components import (
    ComponentRegistry,
    ComponentSpec,
    corrector_registry,
    filter_registry,
    predictor_registry,
    registry_for,
    scheduler_registry,
)
from .grid import (
    SpecFileError,
    expand_spec_file,
    expand_spec_obj,
    load_spec_file,
    triple_keys_of,
    validate_spec_file,
)

__all__ = [
    "SPEC_VERSION",
    "CellSpec",
    "WorkloadSpec",
    "canonical_json",
    "ComponentRegistry",
    "ComponentSpec",
    "predictor_registry",
    "corrector_registry",
    "scheduler_registry",
    "filter_registry",
    "registry_for",
    "SpecFileError",
    "load_spec_file",
    "expand_spec_file",
    "expand_spec_obj",
    "validate_spec_file",
    "triple_keys_of",
]
