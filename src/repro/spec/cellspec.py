"""Versioned, canonically-serializable experiment cell specifications.

A :class:`CellSpec` is the complete, declarative description of one
simulation: the workload (log, size, seed, machine override, filters),
the three heuristic components as parameterized
:class:`~repro.spec.components.ComponentSpec` entries, and the engine
knobs (``min_prediction``, ``tau``).  It is the **single source of
truth** threaded through the whole stack: its content digest is the
campaign cache key and the distributed shard cell identity, and its
canonical JSON form is what shard manifests and experiment files carry.

Canonical encoding rules (``SPEC_VERSION`` 1):

* the JSON object is rendered with sorted keys and compact separators;
* component specs are *normalized* -- legacy string shorthands lowered,
  every registered parameter explicit with defaults filled in -- so two
  spellings of one configuration digest identically;
* floats keep Python's shortest-repr JSON form (stable across CPython
  3.1+ and architectures), and numeric params are pinned to their
  declared type so ``2`` vs ``2.0`` cannot split a digest;
* the workload seed is always resolved to a concrete integer
  (:func:`repro.workload.archive.stable_seed` when omitted).

Bump :data:`SPEC_VERSION` whenever the canonical form itself changes
meaning; digests embed it, so old digests can never collide with new
ones.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import Any

from .components import (
    ComponentSpec,
    corrector_registry,
    filter_registry,
    predictor_registry,
    scheduler_registry,
)

__all__ = ["SPEC_VERSION", "WorkloadSpec", "CellSpec", "canonical_json"]

#: Version of the canonical encoding itself (not of any component).
SPEC_VERSION = 1

_DEFAULT_MIN_PREDICTION = 60.0
_DEFAULT_TAU = 10.0


def canonical_json(obj: Any) -> str:
    """The one JSON rendering digests are computed over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WorkloadSpec:
    """What trace a cell runs on.

    ``processors`` overrides the synthetic machine size (jobs wider than
    the override are an error -- pair it with the ``max-width`` filter to
    shrink a workload onto a smaller machine).  ``filters`` are applied
    in order, before any ``processors`` override.
    """

    log: str
    n_jobs: int = 2000
    seed: int | None = None
    processors: int | None = None
    filters: tuple[ComponentSpec, ...] = ()

    @classmethod
    def make(
        cls,
        log: str,
        n_jobs: int = 2000,
        seed: int | None = None,
        processors: int | None = None,
        filters: tuple | list = (),
    ) -> WorkloadSpec:
        from ..workload.archive import stable_seed

        if int(n_jobs) <= 0:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        if processors is not None and int(processors) <= 0:
            raise ValueError(f"processors override must be positive, got {processors}")
        registry = filter_registry()
        return cls(
            log=str(log),
            n_jobs=int(n_jobs),
            seed=int(seed) if seed is not None else stable_seed(str(log)),
            processors=int(processors) if processors is not None else None,
            filters=tuple(registry.normalize(f) for f in filters),
        )

    def to_obj(self) -> dict:
        return {
            "log": self.log,
            "n_jobs": self.n_jobs,
            "seed": self.seed,
            "processors": self.processors,
            "filters": [f.to_obj() for f in self.filters],
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> WorkloadSpec:
        extra = set(obj) - {"log", "n_jobs", "seed", "processors", "filters"}
        if extra:
            raise ValueError(f"unknown workload field(s) {sorted(extra)}")
        if "log" not in obj:
            raise ValueError("workload needs a 'log'")
        return cls.make(
            log=obj["log"],
            n_jobs=obj.get("n_jobs", 2000),
            seed=obj.get("seed"),
            processors=obj.get("processors"),
            filters=tuple(obj.get("filters", ()) or ()),
        )

    @property
    def is_plain(self) -> bool:
        """True when the trace is exactly ``get_trace(log, n_jobs, seed)``."""
        return self.processors is None and not self.filters


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified simulation cell.  Construct via :meth:`make`
    (or :meth:`from_obj` / :meth:`from_triple`) so every field arrives
    normalized; the raw constructor performs no validation."""

    workload: WorkloadSpec
    predictor: ComponentSpec
    corrector: ComponentSpec | None
    scheduler: ComponentSpec
    min_prediction: float = _DEFAULT_MIN_PREDICTION
    tau: float = _DEFAULT_TAU

    # -- construction ---------------------------------------------------------
    @classmethod
    def make(
        cls,
        workload: WorkloadSpec | Mapping[str, Any],
        predictor: ComponentSpec | str | Mapping[str, Any],
        corrector: ComponentSpec | str | Mapping[str, Any] | None,
        scheduler: ComponentSpec | str | Mapping[str, Any],
        min_prediction: float = _DEFAULT_MIN_PREDICTION,
        tau: float = _DEFAULT_TAU,
    ) -> CellSpec:
        if isinstance(workload, WorkloadSpec):
            # re-normalize even ready specs: a raw-constructed WorkloadSpec
            # may carry an unresolved seed or unnormalized filter entries,
            # and an unnormalized filter would silently split the digest
            workload = WorkloadSpec.make(
                log=workload.log,
                n_jobs=workload.n_jobs,
                seed=workload.seed,
                processors=workload.processors,
                filters=workload.filters,
            )
        else:
            workload = WorkloadSpec.from_obj(workload)
        if corrector in (None, "none"):
            corrector_spec = None
        else:
            corrector_spec = corrector_registry().normalize(corrector)
        if float(min_prediction) <= 0:
            raise ValueError("min_prediction must be positive")
        if float(tau) <= 0:
            raise ValueError("tau must be positive")
        return cls(
            workload=workload,
            predictor=predictor_registry().normalize(predictor),
            corrector=corrector_spec,
            scheduler=scheduler_registry().normalize(scheduler),
            min_prediction=float(min_prediction),
            tau=float(tau),
        )

    @classmethod
    def from_triple(
        cls,
        log: str,
        triple: str | Any,
        n_jobs: int = 2000,
        seed: int | None = None,
        min_prediction: float = _DEFAULT_MIN_PREDICTION,
        tau: float = _DEFAULT_TAU,
    ) -> CellSpec:
        """Lower a legacy ``(log, triple, n_jobs, seed, ...)`` tuple -- the
        old positional API threaded through six call sites -- to a spec."""
        from ..core.triples import HeuristicTriple

        if isinstance(triple, str):
            triple = HeuristicTriple.from_key(triple)
        return cls.make(
            workload=WorkloadSpec.make(log, n_jobs=n_jobs, seed=seed),
            predictor=triple.predictor,
            corrector=triple.corrector,
            scheduler=triple.scheduler,
            min_prediction=min_prediction,
            tau=tau,
        )

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> CellSpec:
        """Inverse of :meth:`to_obj`; tolerant of missing engine block."""
        extra = set(obj) - {
            "spec_version", "workload", "predictor", "corrector", "scheduler", "engine",
        }
        if extra:
            raise ValueError(f"unknown cell field(s) {sorted(extra)}")
        version = obj.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"cell spec has spec_version {version!r} but this code "
                f"speaks {SPEC_VERSION}"
            )
        for required in ("workload", "predictor", "scheduler"):
            if required not in obj:
                raise ValueError(f"cell spec needs {required!r}")
        engine = dict(obj.get("engine", {}))
        unknown_engine = set(engine) - {"min_prediction", "tau"}
        if unknown_engine:
            raise ValueError(f"unknown engine knob(s) {sorted(unknown_engine)}")
        return cls.make(
            workload=obj["workload"],
            predictor=obj["predictor"],
            corrector=obj.get("corrector"),
            scheduler=obj["scheduler"],
            min_prediction=engine.get("min_prediction", _DEFAULT_MIN_PREDICTION),
            tau=engine.get("tau", _DEFAULT_TAU),
        )

    # -- canonical form -------------------------------------------------------
    def to_obj(self) -> dict:
        return {
            "spec_version": SPEC_VERSION,
            "workload": self.workload.to_obj(),
            "predictor": self.predictor.to_obj(),
            "corrector": self.corrector.to_obj() if self.corrector else None,
            "scheduler": self.scheduler.to_obj(),
            "engine": {"min_prediction": self.min_prediction, "tau": self.tau},
        }

    def canonical(self) -> str:
        return canonical_json(self.to_obj())

    def digest(self) -> str:
        """16-hex content digest; the cache-key / shard-identity core.

        Memoised per instance (frozen dataclass, so the canonical form
        cannot change under the cache).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_digest", cached)
        return cached

    # -- component access -----------------------------------------------------
    def build_components(self) -> tuple:
        """Fresh ``(scheduler, predictor, corrector)`` instances."""
        scheduler = scheduler_registry().build(self.scheduler)
        predictor = predictor_registry().build(self.predictor)
        corrector = (
            corrector_registry().build(self.corrector) if self.corrector else None
        )
        return scheduler, predictor, corrector

    @property
    def triple_key(self) -> str | None:
        """The legacy ``pred|corr|sched`` key, or ``None`` when any
        component's parameterization has no legacy string spelling."""
        pred = predictor_registry().legacy_name(self.predictor)
        sched = scheduler_registry().legacy_name(self.scheduler)
        if pred is None or sched is None:
            return None
        if self.corrector is None:
            corr: str | None = "none"
        else:
            corr = corrector_registry().legacy_name(self.corrector)
            if corr is None:
                return None
        return f"{pred}|{corr}|{sched}"

    @property
    def label(self) -> str:
        """Human-facing identity: the legacy triple key when one exists,
        otherwise a compact component summary (non-default params only)."""
        key = self.triple_key
        if key is not None:
            return key
        pred = predictor_registry().describe(self.predictor)
        corr = (
            corrector_registry().describe(self.corrector) if self.corrector else "none"
        )
        sched = scheduler_registry().describe(self.scheduler)
        return f"{pred}|{corr}|{sched}"

    def with_workload(self, **changes: Any) -> CellSpec:
        """A copy with workload fields replaced (re-normalized)."""
        return replace(
            self, workload=WorkloadSpec.from_obj({**self.workload.to_obj(), **changes})
        )
