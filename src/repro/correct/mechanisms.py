"""The paper's three correction mechanisms (Section 5.2).

* **Requested Time** -- jump straight to the user's requested time, the
  largest admissible prediction;
* **Incremental** -- Tsafrir et al.'s scheme: on the k-th correction add
  the k-th value of a fixed ladder (1min, 5min, 15min, 30min, 1h, 2h,
  5h, 10h, 20h, 50h, 100h) to the current prediction;
* **Recursive Doubling** -- double the elapsed running time.

All returned values exceed the elapsed time; the engine caps them at the
requested time.
"""

from __future__ import annotations

from ..sim.results import JobRecord
from .base import Corrector

__all__ = [
    "RequestedTimeCorrector",
    "IncrementalCorrector",
    "RecursiveDoublingCorrector",
    "INCREMENTS",
]

#: Tsafrir et al.'s correction ladder, in seconds.
INCREMENTS: tuple[float, ...] = (
    60.0,  # 1 min
    300.0,  # 5 min
    900.0,  # 15 min
    1800.0,  # 30 min
    3600.0,  # 1 h
    7200.0,  # 2 h
    18000.0,  # 5 h
    36000.0,  # 10 h
    72000.0,  # 20 h
    180000.0,  # 50 h
    360000.0,  # 100 h
)


class RequestedTimeCorrector(Corrector):
    """Fall back to the requested time, the safest upper bound."""

    name = "requested"

    def correct(self, record: JobRecord, now: float) -> float:
        return record.requested_time


class IncrementalCorrector(Corrector):
    """Add progressively larger fixed amounts (Tsafrir et al. 2007)."""

    name = "incremental"

    def correct(self, record: JobRecord, now: float) -> float:
        step = INCREMENTS[min(record.corrections, len(INCREMENTS) - 1)]
        elapsed = now - record.start_time
        # The increment extends the *expired* prediction; ensure progress
        # past the elapsed time even if predictions drifted.
        return max(record.predicted_runtime, elapsed) + step


class RecursiveDoublingCorrector(Corrector):
    """Double the elapsed running time."""

    name = "doubling"

    def correct(self, record: JobRecord, now: float) -> float:
        elapsed = now - record.start_time
        return 2.0 * max(elapsed, record.predicted_runtime, 1.0)
