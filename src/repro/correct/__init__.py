"""Correction mechanisms for under-predicted running times."""

from .base import Corrector
from .mechanisms import (
    INCREMENTS,
    IncrementalCorrector,
    RecursiveDoublingCorrector,
    RequestedTimeCorrector,
)

__all__ = [
    "Corrector",
    "INCREMENTS",
    "IncrementalCorrector",
    "RecursiveDoublingCorrector",
    "RequestedTimeCorrector",
    "make_corrector",
]


def make_corrector(spec) -> Corrector:
    """Construct a corrector from the unified component registry.

    Accepts a name string (``requested``, ``incremental``,
    ``doubling``), a ``{"name": ..., "params": {...}}`` dict, or a ready
    :class:`repro.spec.ComponentSpec`.
    """
    from ..spec.components import corrector_registry

    return corrector_registry().build(spec)
