"""Correction mechanisms for under-predicted running times."""

from .base import Corrector
from .mechanisms import (
    INCREMENTS,
    IncrementalCorrector,
    RecursiveDoublingCorrector,
    RequestedTimeCorrector,
)

__all__ = [
    "Corrector",
    "INCREMENTS",
    "IncrementalCorrector",
    "RecursiveDoublingCorrector",
    "RequestedTimeCorrector",
    "make_corrector",
]


def make_corrector(name: str) -> Corrector:
    """Construct a corrector from its registry name."""
    registry = {
        "requested": RequestedTimeCorrector,
        "incremental": IncrementalCorrector,
        "doubling": RecursiveDoublingCorrector,
    }
    try:
        return registry[name]()
    except KeyError:
        raise KeyError(
            f"unknown corrector {name!r}; known: {', '.join(registry)}"
        ) from None
