"""Correction-mechanism interface (paper Section 5.2).

When a running job reaches its predicted end without finishing (an
*under-prediction*), the scheduler's view must be repaired: the corrector
produces a new predicted total running time.  The paper deliberately uses
simple rules rather than re-querying the learner, "which gave a wrong
value".

Contract: the returned prediction must be strictly greater than the
elapsed running time (otherwise the expiry would fire again immediately)
and is capped by the engine at the requested time, which upper-bounds any
feasible runtime.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..sim.results import JobRecord

__all__ = ["Corrector"]


class Corrector(ABC):
    """Produces new running-time predictions for under-predicted jobs."""

    #: short identifier used in reports and triple names.
    name: str = "base"

    @abstractmethod
    def correct(self, record: JobRecord, now: float) -> float:
        """New predicted *total* running time for a job whose prediction
        just expired.

        ``record.corrections`` tells how many corrections already
        happened (0 on the first call); ``now - record.start_time`` is
        the elapsed running time.
        """
