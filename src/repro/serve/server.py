"""The ``repro serve`` line protocol: JSONL requests over a live session.

Every request is one JSON object per line with a ``cmd`` field; every
response is one JSON object per line with ``ok`` (bool) and the echoed
``cmd``.  Malformed requests produce ``{"ok": false, "error": ...}``
without killing the connection.  Commands:

``submit``
    ``{"cmd": "submit", "job": {...}}`` -- feed a job.  Job fields:
    ``job_id``, ``submit_time``, ``processors``, ``requested_time``
    required; ``runtime`` optional (defaults to the requested time --
    the serving analogue of "unknown until observed"; report the truth
    later with ``complete``); ``user`` and other SWF metadata optional.
``advance``
    ``{"cmd": "advance", "time": T}`` -- process everything up to and
    including T and move the clock there.
``step``
    process the next pending timestamp, if any.
``drain``
    process every pending event (run the simulation dry).
``query``
    ``{"cmd": "query", "job_id": N}`` or ``{"cmd": "query", "job":
    {...}}`` (hypothetical probe).  Responds with the estimated start,
    wait, state, and the server-side ``elapsed_us`` spent answering.
``complete``
    ``{"cmd": "complete", "job_id": N, "time": T}`` -- a running job
    really finished at T (external truth overriding the simulated
    runtime); the predictor learns from the observation.
``observe``
    ``{"cmd": "observe", "job": {...}, "runtime": R}`` -- predictor-only
    online update from a completion the session never scheduled (history
    warm-up).
``machine``
    ``{"cmd": "machine", "kind": "drain"|"restore", "processors": K,
    "time": T?}`` -- capacity event (T defaults to now).
``snapshot``
    queue/machine/counter state.
``result``
    per-finished-job ``[job_id, start_time, end_time]`` rows (sorted),
    for diffing against a batch run.
``stats`` / ``ping`` / ``quit``
    engine counters / no-op round-trip / end the loop.
"""

from __future__ import annotations

import json
import math
import time as _time
from dataclasses import dataclass, fields
from typing import IO, Any

from ..obs import get_logger
from ..obs.telemetry import NOOP, Telemetry
from ..sim.session import MachineEvent, MonotonicityError, SimSession
from ..workload.job import Job

_log = get_logger("serve")

__all__ = ["SessionServer", "ServeStats", "build_serve_session", "serve_loop"]

#: Job fields accepted from the wire (everything the dataclass carries).
_JOB_FIELDS = frozenset(f.name for f in fields(Job))
_REQUIRED_JOB_FIELDS = ("job_id", "submit_time", "processors", "requested_time")


@dataclass
class ServeStats:
    """Connection-level counters, reported when the loop ends."""

    n_requests: int = 0
    n_errors: int = 0
    n_submitted: int = 0
    n_queries: int = 0


def build_serve_session(
    processors: int,
    scheduler: str = "easy-sjbf",
    predictor: str = "ave2",
    corrector: str | None = "incremental",
    min_prediction: float = 60.0,
    name: str = "serve",
    telemetry: Telemetry | None = None,
) -> SimSession:
    """Wire a live session from component registry names.

    Passing ``telemetry`` shares one registry between the engine and the
    serving layer, so a served session's snapshot carries engine event
    counters next to the request-latency histograms.
    """
    from ..correct import make_corrector
    from ..predict import make_predictor
    from ..sched import make_scheduler

    built_corrector = None
    if corrector and corrector != "none":
        built_corrector = make_corrector(corrector)
    return SimSession(
        processors,
        make_scheduler(scheduler),
        make_predictor(predictor),
        built_corrector,
        min_prediction=min_prediction,
        trace_name=name,
        telemetry=telemetry,
    )


def _parse_job(payload: Any) -> Job:
    if not isinstance(payload, dict):
        raise ValueError("job must be an object of SWF-style fields")
    unknown = set(payload) - _JOB_FIELDS
    if unknown:
        raise ValueError(f"unknown job field(s): {', '.join(sorted(unknown))}")
    missing = [f for f in _REQUIRED_JOB_FIELDS if f not in payload]
    if missing:
        raise ValueError(f"job is missing required field(s): {', '.join(missing)}")
    data = dict(payload)
    # serving analogue of "runtime unknown until observed": schedule as if
    # the job runs to its requested bound, correct via `complete` later
    data.setdefault("runtime", data["requested_time"])
    return Job(**data)


class SessionServer:
    """Dispatches parsed protocol commands onto one live session.

    ``telemetry`` (optional) records per-request latency histograms,
    per-command counters and the warm-vs-cold split of query answers
    (warm = served from the session's memoised start estimates).
    """

    def __init__(
        self, session: SimSession, telemetry: Telemetry | None = None
    ) -> None:
        self.session = session
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.stats = ServeStats()
        self.closed = False

    # -- entry points --------------------------------------------------------
    def handle_line(self, line: str) -> dict | None:
        """One protocol round: JSON line in, response object out.

        Blank lines are ignored (returns None).  Any error -- parse,
        validation, or session -- becomes an ``ok: false`` response.
        """
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            self.stats.n_errors += 1
            self.telemetry.inc("serve.errors")
            return {"ok": False, "error": f"bad JSON: {exc}"}
        return self.handle(request)

    def handle(self, request: Any) -> dict:
        self.stats.n_requests += 1
        tele = self.telemetry
        if tele.enabled:
            tele.inc("serve.requests.total")
        if not isinstance(request, dict) or "cmd" not in request:
            self.stats.n_errors += 1
            tele.inc("serve.errors")
            return {"ok": False, "error": "request must be an object with a 'cmd'"}
        cmd = request["cmd"]
        handler = getattr(self, f"_cmd_{cmd}", None)
        if handler is None:
            self.stats.n_errors += 1
            tele.inc("serve.errors")
            return {"ok": False, "cmd": cmd, "error": f"unknown command {cmd!r}"}
        t0 = _time.perf_counter() if tele.enabled else 0.0
        try:
            response = handler(request)
        except (ValueError, KeyError, TypeError, MonotonicityError) as exc:
            self.stats.n_errors += 1
            if tele.enabled:
                tele.inc("serve.errors")
                tele.inc(f"serve.requests.{cmd}")
            _log.debug("request %r failed: %s", cmd, exc)
            return {"ok": False, "cmd": cmd, "error": str(exc)}
        except Exception as exc:
            # a malformed or adversarial request must never tear down the
            # session: answer with a structured error and keep serving
            self.stats.n_errors += 1
            if tele.enabled:
                tele.inc("serve.errors")
                tele.inc(f"serve.requests.{cmd}")
            _log.exception("request %r raised unexpectedly", cmd)
            return {
                "ok": False,
                "cmd": str(cmd),
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
        if tele.enabled:
            tele.inc(f"serve.requests.{cmd}")
            tele.observe("serve.request.seconds", _time.perf_counter() - t0)
        response.setdefault("ok", True)
        response.setdefault("cmd", cmd)
        response.setdefault("now", self.session.now)
        return response

    # -- commands ------------------------------------------------------------
    def _cmd_submit(self, request: dict) -> dict:
        job = _parse_job(request.get("job"))
        self.session.feed(job)
        self.stats.n_submitted += 1
        if request.get("advance"):
            self.session.advance_to(job.submit_time)
        return {"job_id": job.job_id, "queued_at": job.submit_time}

    def _cmd_advance(self, request: dict) -> dict:
        if "time" not in request:
            raise ValueError("advance needs a 'time'")
        steps = self.session.advance_to(float(request["time"]))
        return {"steps": steps}

    def _cmd_step(self, request: dict) -> dict:
        processed = self.session.step()
        return {"processed": processed}

    def _cmd_drain(self, request: dict) -> dict:
        steps = self.session.drain()
        return {"steps": steps}

    def _cmd_query(self, request: dict) -> dict:
        tele = self.telemetry
        t0 = _time.perf_counter()
        if "job_id" in request:
            if tele.enabled:
                # warm = the memoised waiting-start table survives from a
                # previous query at this state; cold pays a profile sweep
                tele.inc(
                    "serve.query.warm"
                    if self.session.query_cache_warm
                    else "serve.query.cold"
                )
            answer = self.session.query(job_id=int(request["job_id"]))
        elif "job" in request:
            tele.inc("serve.query.probe")
            answer = self.session.query(_parse_job(request["job"]))
        else:
            raise ValueError("query needs a 'job_id' or a 'job'")
        elapsed_us = (_time.perf_counter() - t0) * 1e6
        self.stats.n_queries += 1
        if tele.enabled:
            tele.observe("serve.query.seconds", elapsed_us / 1e6)
        # a held job (wider than the undrained capacity) estimates inf,
        # which strict JSON cannot carry: send null instead
        finite = math.isfinite(answer.start_time)
        return {
            "job_id": answer.job_id,
            "state": answer.state,
            "start": answer.start_time if finite else None,
            "wait": answer.wait if finite else None,
            "predicted_runtime": answer.predicted_runtime,
            "elapsed_us": round(elapsed_us, 2),
        }

    def _cmd_complete(self, request: dict) -> dict:
        if "job_id" not in request:
            raise ValueError("complete needs a 'job_id'")
        when = request.get("time")
        record = self.session.complete(
            int(request["job_id"]), None if when is None else float(when)
        )
        return {
            "job_id": record.job_id,
            "start": record.start_time,
            "end": record.end_time,
            "runtime": record.runtime,
        }

    def _cmd_observe(self, request: dict) -> dict:
        if "runtime" not in request:
            raise ValueError("observe needs a 'runtime'")
        job = _parse_job(request.get("job"))
        self.session.observe_completion(job, float(request["runtime"]))
        return {"job_id": job.job_id}

    def _cmd_machine(self, request: dict) -> dict:
        event = MachineEvent(
            time=float(request.get("time", self.session.now)),
            kind=request.get("kind", ""),
            processors=int(request.get("processors", 0)),
        )
        self.session.feed_machine_event(event)
        return {"kind": event.kind, "processors": event.processors, "at": event.time}

    def _cmd_snapshot(self, request: dict) -> dict:
        snap = self.session.snapshot()
        return {
            "processors": snap.processors,
            "free": snap.free,
            "drained": snap.drained,
            "n_waiting": len(snap.waiting),
            "n_running": len(snap.running),
            "n_finished": snap.n_finished,
            "n_pending_events": snap.n_pending_events,
            "waiting": [list(w) for w in snap.waiting],
            "running": [list(r) for r in snap.running],
            "scheduler": snap.scheduler,
            "predictor": snap.predictor,
            "corrector": snap.corrector,
        }

    def _cmd_result(self, request: dict) -> dict:
        result = self.session.result(partial=True)
        rows = sorted((r.job_id, r.start_time, r.end_time) for r in result)
        return {"jobs": [list(row) for row in rows]}

    def _cmd_stats(self, request: dict) -> dict:
        stats = self.session.stats
        return {
            "n_events": stats.n_events,
            "n_scheduling_passes": stats.n_scheduling_passes,
            "n_corrections": stats.n_corrections,
            "max_queue_length": stats.max_queue_length,
            "n_jobs": self.session.n_jobs,
        }

    def _cmd_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _cmd_quit(self, request: dict) -> dict:
        self.closed = True
        return {"bye": True}


def serve_loop(
    session: SimSession,
    in_stream: IO[str],
    out_stream: IO[str],
    telemetry: Telemetry | None = None,
) -> ServeStats:
    """Run the JSONL request/response loop until quit or EOF.

    One response line is written (and flushed) per non-blank request
    line, so pipe-driven clients can operate in lockstep.
    """
    server = SessionServer(session, telemetry=telemetry)
    _log.info("serve loop started (session %r)", session.trace_name)
    for line in in_stream:
        response = server.handle_line(line)
        if response is None:
            continue
        try:
            encoded = json.dumps(response)
        except (TypeError, ValueError):
            # a response that cannot serialise (e.g. a request smuggled a
            # non-JSON value into the echo fields) still gets a structured
            # answer instead of tearing down the loop
            server.stats.n_errors += 1
            server.telemetry.inc("serve.errors")
            _log.exception("response for %r not serialisable", line.strip()[:200])
            encoded = json.dumps(
                {"ok": False, "error": "internal error: unserialisable response"}
            )
        out_stream.write(encoded + "\n")
        out_stream.flush()
        if server.closed:
            break
    _log.info(
        "serve loop ended: %d request(s), %d error(s)",
        server.stats.n_requests, server.stats.n_errors,
    )
    return server.stats
