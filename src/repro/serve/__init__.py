"""Simulation-as-a-service: a long-running front end over a SimSession.

``repro serve`` keeps one live :class:`repro.sim.session.SimSession`
open and speaks a JSON-lines protocol on stdin/stdout -- one request
object per line in, one response object per line out.  Per-user
predictor state stays hot across the whole connection (online updates on
every completion, including externally-observed ones), so "when will
this job start?" queries are answered from warm state in microseconds.

See :mod:`repro.serve.server` for the command reference.
"""

from .server import SessionServer, ServeStats, build_serve_session, serve_loop

__all__ = ["SessionServer", "ServeStats", "build_serve_session", "serve_loop"]
