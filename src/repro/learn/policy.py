"""Linear softmax backfill policy + the ``rl-backfill`` scheduler.

The policy scores each *eligible* backfill candidate with a linear
function of hand-rolled features and a softmax turns the scores (plus a
constant-score synthetic **stop** action) into an action distribution.
Greedy argmax is the deployment mode; sampled actions drive the
REINFORCE trainer (:mod:`repro.learn.train`).

The scheduler rides :class:`repro.sched.easy.EasyScheduler` wholesale --
head starts, shadow/extra reservation and the release-table upkeep are
untouched -- and only replaces the phase-3 backfill pick
(:meth:`EasyScheduler._backfill`).  Every action the policy can take
respects EASY's reservation invariant (candidates are filtered for
eligibility *before* scoring), so a learned policy can reorder
backfilling but can never delay the head's reservation: the worst a bad
policy can do is backfill too little.

Initialization matters: :meth:`LinearSoftmaxPolicy.sjbf_init` weights
only the predicted-runtime feature (negatively) with the stop score far
below any reachable candidate score, which makes the greedy policy
reproduce EASY-SJBF's backfill choice exactly -- training starts from
the paper's best heuristic instead of noise.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..sched.easy import EasyScheduler
from ..sim.results import JobRecord
from .checkpoint import CheckpointError, PolicyCheckpoint

__all__ = [
    "FEATURE_NAMES",
    "POLICY_FAMILY",
    "LinearSoftmaxPolicy",
    "RLBackfillScheduler",
    "candidate_features",
]

POLICY_FAMILY = "linear-softmax"

#: Observation columns, in order.  Appending a feature is a
#: CHECKPOINT_VERSION bump (old weight vectors would silently misalign).
FEATURE_NAMES: tuple[str, ...] = (
    "log_predicted",       # log1p(predicted runtime)
    "log_requested",       # log1p(requested time)
    "log_width",           # log1p(processors)
    "log_wait",            # log1p(now - submit)
    "fits_before_shadow",  # 1.0 if predicted end <= shadow
    "frac_free",           # width / free processors
    "log_shadow_gap",      # log1p(shadow - now)
    "log_extra",           # log1p(extra processors)
    "log_n_waiting",       # log1p(queue length)
    "log_releases",        # log1p(release-table length)
)

#: Stop score of the SJBF-equivalent init: far below -log1p of any
#: realistic predicted runtime (weeks ~ -14.3), so greedy never stops
#: while an eligible candidate remains -- exactly the heuristic scan.
_SJBF_STOP_BIAS = -40.0


def candidate_features(
    record: JobRecord,
    now: float,
    free: int,
    shadow: float,
    extra: int,
    n_waiting: int,
    n_releases: int,
) -> np.ndarray:
    """Feature vector of one eligible candidate (order = FEATURE_NAMES)."""
    return np.array(
        [
            np.log1p(max(record.predicted_runtime, 0.0)),
            np.log1p(max(record.requested_time, 0.0)),
            np.log1p(float(record.processors)),
            np.log1p(max(now - record.submit_time, 0.0)),
            1.0 if now + record.predicted_runtime <= shadow else 0.0,
            float(record.processors) / float(max(free, 1)),
            np.log1p(max(shadow - now, 0.0)),
            np.log1p(float(max(extra, 0))),
            np.log1p(float(n_waiting)),
            np.log1p(float(n_releases)),
        ],
        dtype=np.float64,
    )


class LinearSoftmaxPolicy:
    """Numpy-only linear softmax over candidates + a stop action.

    ``weights`` has one entry per :data:`FEATURE_NAMES` column;
    ``stop_bias`` is the stop action's constant score.  The *parameter
    vector* the trainer updates is the concatenation ``[weights,
    stop_bias]`` (dimension F+1).
    """

    def __init__(self, weights: np.ndarray, stop_bias: float) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(FEATURE_NAMES),):
            raise ValueError(
                f"policy needs {len(FEATURE_NAMES)} weights, got shape "
                f"{weights.shape}"
            )
        self.weights = weights
        self.stop_bias = float(stop_bias)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def sjbf_init(cls) -> LinearSoftmaxPolicy:
        """The EASY-SJBF-equivalent starting point (see module docstring)."""
        weights = np.zeros(len(FEATURE_NAMES))
        weights[FEATURE_NAMES.index("log_predicted")] = -1.0
        return cls(weights, _SJBF_STOP_BIAS)

    @classmethod
    def from_checkpoint(cls, ckpt: PolicyCheckpoint) -> LinearSoftmaxPolicy:
        if ckpt.family != POLICY_FAMILY:
            raise CheckpointError(
                f"checkpoint family {ckpt.family!r} is not {POLICY_FAMILY!r}"
            )
        if ckpt.features != FEATURE_NAMES:
            raise CheckpointError(
                f"checkpoint features {list(ckpt.features)} do not match this "
                f"build's {list(FEATURE_NAMES)} (stale CHECKPOINT_VERSION?)"
            )
        return cls(np.array(ckpt.weights), ckpt.stop_bias)

    def checkpoint(self, meta: dict | None = None) -> PolicyCheckpoint:
        return PolicyCheckpoint(
            family=POLICY_FAMILY,
            features=FEATURE_NAMES,
            weights=tuple(float(w) for w in self.weights),
            stop_bias=self.stop_bias,
            meta=dict(meta or {}),
        )

    # -- the parameter vector view (trainer-facing) ---------------------------
    @property
    def theta(self) -> np.ndarray:
        """Flat parameter vector ``[weights..., stop_bias]`` (a copy)."""
        return np.append(self.weights, self.stop_bias)

    def step(self, delta: np.ndarray) -> LinearSoftmaxPolicy:
        """A new policy moved by ``delta`` in parameter space."""
        theta = self.theta + np.asarray(delta, dtype=np.float64)
        return LinearSoftmaxPolicy(theta[:-1], float(theta[-1]))

    # -- action selection ------------------------------------------------------
    def action_scores(self, features: np.ndarray) -> np.ndarray:
        """Scores of [candidate 0..n-1, stop] for an (n, F) feature matrix."""
        return np.append(features @ self.weights, self.stop_bias)

    def distribution(self, features: np.ndarray, temperature: float = 1.0) -> np.ndarray:
        """Softmax action probabilities (last entry = stop)."""
        scores = self.action_scores(features) / max(temperature, 1e-9)
        scores -= scores.max()  # shift-invariant, overflow-safe
        exp = np.exp(scores)
        return exp / exp.sum()

    def act_greedy(self, features: np.ndarray) -> int:
        """Argmax action; ties break on the first (queue-order) index."""
        return int(np.argmax(self.action_scores(features)))

    def act_sample(
        self, features: np.ndarray, rng: np.random.Generator, temperature: float = 1.0
    ) -> tuple[int, np.ndarray]:
        """Sample an action; returns ``(action, probabilities)``."""
        probs = self.distribution(features, temperature)
        action = int(rng.choice(len(probs), p=probs))
        return action, probs


class RLBackfillScheduler(EasyScheduler):
    """EASY backfilling whose phase-3 pick is a learned policy.

    Deployment instances (built by the component registry) run greedy
    and deterministic.  The trainer passes ``rng``/``temperature`` to
    sample actions and a ``recorder`` to stream per-decision
    ``(aug_features, action, probs)`` tuples out for the REINFORCE
    gradient -- recording never changes which action was taken.

    Candidate order within a decision is queue (FCFS) order, which makes
    greedy ties deterministic and, with the SJBF init, byte-identical to
    EASY-SJBF's ``(predicted, submit, job_id)`` tie-breaking.
    """

    def __init__(
        self,
        policy: LinearSoftmaxPolicy,
        rng: np.random.Generator | None = None,
        temperature: float = 1.0,
        recorder: Callable[[np.ndarray, int, np.ndarray], None] | None = None,
    ) -> None:
        super().__init__(backfill_order="fcfs")
        self.name = "rl-backfill"
        self.policy = policy
        self.rng = rng
        self.temperature = temperature
        self.recorder = recorder

    def _backfill(
        self, now: float, free: int, shadow: float, extra: int
    ) -> list[JobRecord]:
        picked: list[JobRecord] = []
        picked_ids: set[int] = set()
        while True:
            eligible: list[JobRecord] = []
            feats: list[np.ndarray] = []
            n_waiting = len(self._queue) - len(picked_ids)
            n_releases = len(self._releases)
            for record in self._queue[1:]:
                if record.job_id in picked_ids or record.processors > free:
                    continue
                finishes_before_shadow = now + record.predicted_runtime <= shadow
                if not finishes_before_shadow and record.processors > extra:
                    continue
                eligible.append(record)
                feats.append(
                    candidate_features(
                        record, now, free, shadow, extra, n_waiting, n_releases
                    )
                )
            if not eligible:
                break
            features = np.vstack(feats)
            if self.rng is not None:
                action, probs = self.policy.act_sample(
                    features, self.rng, self.temperature
                )
            else:
                action = self.policy.act_greedy(features)
                probs = None
            if self.recorder is not None:
                if probs is None:
                    probs = self.policy.distribution(features, self.temperature)
                # augment with the stop one-hot so the gradient vector is
                # the full parameter dimension F+1
                aug = np.zeros((len(eligible) + 1, len(FEATURE_NAMES) + 1))
                aug[:-1, :-1] = features
                aug[-1, -1] = 1.0
                self.recorder(aug, action, probs)
            if action == len(eligible):  # stop
                break
            record = eligible[action]
            free -= record.processors
            if now + record.predicted_runtime > shadow:
                extra -= record.processors
            picked.append(record)
            picked_ids.add(record.job_id)
        if picked_ids:
            self._queue = [r for r in self._queue if r.job_id not in picked_ids]
            self._order_cache = None
        return picked
