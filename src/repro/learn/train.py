"""Seeded REINFORCE training for the backfill policy.

Plain episodic policy gradient with a mean baseline: per epoch, roll
``episodes`` sampled episodes over the training seeds (each with its own
deterministically-derived action-noise seed), form

    grad = mean_i  (R_i - mean(R)) * g_i

where ``g_i`` is episode *i*'s accumulated score-function gradient, clip
it, and ascend.  After every update the *greedy* policy is scored on the
training seeds; the returned checkpoint is the best greedy policy seen
across all epochs **including the SJBF-equivalent init** -- so a short
or unlucky run can never ship something worse than the heuristic it
started from (this is what lets CI enforce "matches or beats EASY" with
a tiny budget).

Everything is derived from ``TrainConfig.seed``: same config in, byte
identical checkpoint digest out, regardless of worker count (rollout
order is seed-indexed, never completion-ordered).

Telemetry (when a registry is passed): per-episode return/entropy
histograms (``learn.return``, ``learn.entropy``), per-epoch grad-norm
and score counters, and one ``epoch`` event per epoch -- all through the
standard :mod:`repro.obs` channel, so ``repro metrics`` renders training
curves like any other run.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..obs.telemetry import NOOP, Telemetry
from ..workload.archive import stable_seed
from .checkpoint import PolicyCheckpoint
from .env import EnvConfig, Episode
from .policy import LinearSoftmaxPolicy
from .rollout import collect_episodes

__all__ = ["TrainConfig", "TrainResult", "train", "evaluate_policy"]


@dataclass(frozen=True)
class TrainConfig:
    """Everything that determines a training run (and its digest)."""

    log: str
    n_jobs: int = 500
    #: number of training trace seeds (stable_seed(log) + 0..replicas-1)
    #: unless ``train_seeds`` pins them explicitly.
    replicas: int = 2
    train_seeds: tuple[int, ...] | None = None
    epochs: int = 4
    #: sampled episodes per epoch (cycled over the training seeds).
    episodes: int = 8
    lr: float = 0.05
    temperature: float = 1.0
    grad_clip: float = 5.0
    #: master seed for action noise (trace seeds are the train seeds).
    seed: int = 0
    predictor: str = "ave2"
    corrector: str = "incremental"
    min_prediction: float = 60.0
    tau: float = 10.0

    def resolved_train_seeds(self) -> tuple[int, ...]:
        if self.train_seeds is not None:
            return tuple(int(s) for s in self.train_seeds)
        base = stable_seed(self.log)
        return tuple(base + r for r in range(self.replicas))

    def env_config(self) -> EnvConfig:
        return EnvConfig(
            log=self.log,
            n_jobs=self.n_jobs,
            predictor=self.predictor,
            corrector=self.corrector,
            min_prediction=self.min_prediction,
            tau=self.tau,
        )


@dataclass
class TrainResult:
    """A finished run: the best checkpoint plus the training history."""

    checkpoint: PolicyCheckpoint
    #: greedy mean AVEbsld of the shipped policy on the train seeds.
    train_avebsld: float
    #: same metric for the SJBF-equivalent init (the heuristic floor).
    init_avebsld: float
    #: epoch index the shipped policy came from (-1 = the init).
    best_epoch: int
    #: one dict per epoch: returns, entropy, grad_norm, greedy_avebsld.
    history: list[dict] = field(default_factory=list)

    @property
    def digest(self) -> str:
        return self.checkpoint.digest()


def _episode_seed(master: int, epoch: int, index: int) -> int:
    """Deterministic, collision-resistant action-noise seed."""
    return (master * 1_000_003 + epoch * 10_007 + index * 101 + 1) % (2**31 - 1)


def _greedy_score(
    broker, env: EnvConfig, policy: LinearSoftmaxPolicy, seeds: Sequence[int]
) -> float:
    episodes = collect_episodes(broker, env, policy, seeds, sample=False)
    return float(np.mean([ep.avebsld for ep in episodes]))


def train(
    config: TrainConfig,
    broker=None,
    telemetry: Telemetry | None = None,
) -> TrainResult:
    """Run the full REINFORCE loop; deterministic in ``config``.

    ``broker`` fans episodes out (default: a serial
    :class:`~repro.dist.broker.LocalBroker` with one worker -- pass one
    with more workers to parallelize; results are identical either way).
    """
    from ..dist.broker import LocalBroker

    if broker is None:
        broker = LocalBroker(workers=1)
    tele = telemetry if telemetry is not None else NOOP
    env = config.env_config()
    train_seeds = config.resolved_train_seeds()
    if not train_seeds:
        raise ValueError("training needs at least one train seed")

    policy = LinearSoftmaxPolicy.sjbf_init()
    init_score = _greedy_score(broker, env, policy, train_seeds)
    tele.inc("learn.evals")
    # (score, epoch, policy); ties keep the earliest -- and the init wins
    # an exact tie against any epoch, so "no improvement" ships the
    # heuristic-equivalent weights unchanged.
    best: tuple[float, int, LinearSoftmaxPolicy] = (init_score, -1, policy)
    history: list[dict] = []

    for epoch in range(config.epochs):
        trace_seeds = [
            train_seeds[i % len(train_seeds)] for i in range(config.episodes)
        ]
        rng_seeds = [
            _episode_seed(config.seed, epoch, i) for i in range(config.episodes)
        ]
        episodes: list[Episode] = collect_episodes(
            broker,
            env,
            policy,
            trace_seeds,
            sample=True,
            temperature=config.temperature,
            rng_seeds=rng_seeds,
        )
        returns = np.array([ep.return_ for ep in episodes])
        baseline = float(returns.mean())
        advantages = returns - baseline
        grad = np.zeros(len(policy.theta))
        for episode, advantage in zip(episodes, advantages, strict=True):
            grad += advantage * episode.grad
        grad /= max(len(episodes), 1)
        norm = float(np.linalg.norm(grad))
        if norm > config.grad_clip > 0:
            grad *= config.grad_clip / norm
        policy = policy.step(config.lr * grad)

        greedy = _greedy_score(broker, env, policy, train_seeds)
        if greedy < best[0]:
            best = (greedy, epoch, policy)
        entropy = float(np.mean([ep.entropy for ep in episodes]))
        history.append(
            {
                "epoch": epoch,
                "mean_return": baseline,
                "best_return": float(returns.max()),
                "entropy": entropy,
                "grad_norm": norm,
                "greedy_avebsld": greedy,
            }
        )
        if tele.enabled:
            for episode in episodes:
                tele.observe("learn.return", episode.return_)
                tele.observe("learn.entropy", episode.entropy)
            tele.observe("learn.grad_norm", norm)
            tele.inc("learn.epochs")
            tele.inc("learn.episodes", len(episodes))
            tele.inc("learn.decisions", sum(ep.decisions for ep in episodes))
            tele.event(
                "epoch",
                epoch=epoch,
                mean_return=round(baseline, 4),
                entropy=round(entropy, 4),
                grad_norm=round(norm, 4),
                greedy_avebsld=round(greedy, 4),
            )

    score, best_epoch, best_policy = best
    checkpoint = best_policy.checkpoint(
        meta={
            "trained_on": {
                "log": config.log,
                "n_jobs": config.n_jobs,
                "train_seeds": list(train_seeds),
                "predictor": config.predictor,
                "corrector": config.corrector,
                "min_prediction": config.min_prediction,
                "tau": config.tau,
            },
            "trainer": {
                "algo": "reinforce",
                "epochs": config.epochs,
                "episodes": config.episodes,
                "lr": config.lr,
                "temperature": config.temperature,
                "grad_clip": config.grad_clip,
                "seed": config.seed,
            },
            "best_epoch": best_epoch,
            "train_avebsld": score,
            "init_avebsld": init_score,
        }
    )
    tele.event(
        "trained",
        digest=checkpoint.digest(),
        best_epoch=best_epoch,
        train_avebsld=round(score, 4),
        init_avebsld=round(init_score, 4),
    )
    return TrainResult(
        checkpoint=checkpoint,
        train_avebsld=score,
        init_avebsld=init_score,
        best_epoch=best_epoch,
        history=history,
    )


def evaluate_policy(
    digest: str,
    log: str,
    seeds: Sequence[int],
    n_jobs: int = 500,
    predictor: str = "ave2",
    corrector: str = "incremental",
    min_prediction: float = 60.0,
    tau: float = 10.0,
    baselines: Sequence[str] = ("easy", "easy-sjbf"),
    cache_path: str | None = None,
    workers: int | None = None,
    backend="local",
    queue_dir: str | None = None,
    telemetry: Telemetry | None = None,
):
    """Score a trained policy against heuristic baselines as a campaign.

    Builds one cell per (scheduler, seed) -- the learned
    ``rl-backfill(policy=digest)`` plus each baseline scheduler, sharing
    predictor/corrector/workload -- and runs them through
    :func:`repro.core.campaign.run_cells`, so results cache under spec
    digests (the learned cells' digests embed the checkpoint digest) and
    any dispatch backend works.  The checkpoint itself is resolved from
    ``$REPRO_CHECKPOINT_DIR`` at build time: the store *location* stays
    out of the cache key.

    Returns the :class:`~repro.core.campaign.SpecCampaignResult`; rank
    with ``.leaderboard()``.
    """
    from ..core.campaign import run_cells
    from ..spec import CellSpec, WorkloadSpec

    schedulers: list = [
        {"name": "rl-backfill", "params": {"policy": digest}},
        *baselines,
    ]
    cells = [
        CellSpec.make(
            workload=WorkloadSpec.make(log, n_jobs=n_jobs, seed=int(seed)),
            predictor=predictor,
            corrector=corrector,
            scheduler=scheduler,
            min_prediction=min_prediction,
            tau=tau,
        )
        for scheduler in schedulers
        for seed in seeds
    ]
    return run_cells(
        cells,
        cache_path=cache_path,
        workers=workers,
        backend=backend,
        queue_dir=queue_dir,
        telemetry=telemetry,
    )
