"""Episodic RL environment over the streaming simulation engine.

One *episode* = one full simulation of a seeded synthetic trace under a
policy-driven :class:`~repro.learn.policy.RLBackfillScheduler`; the
return is ``-AVEbsld`` (maximizing return minimizes the paper's bounded
slowdown).  Observations ride the structures the engine already
maintains -- queue depth, the release table, the head's shadow/extra
reservation, per-job width/requested/wait -- so the environment adds no
bookkeeping to the hot loop.

The environment is deliberately *not* a step-API gym: the engine drives
time and asks the policy for decisions (the scheduler callback IS the
policy query), so a rollout is a single ``session.drain()`` with a
recorder attached.  The per-decision score-function terms are
accumulated incrementally into one episode gradient
(``sum_t  e(a_t) - sum_i pi_i e(i)`` in augmented F+1 space), which is
all REINFORCE needs -- no trajectory buffer, O(params) memory per
episode regardless of trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..metrics.slowdown import average_bounded_slowdown
from ..sim.session import SimSession
from ..spec import corrector_registry, predictor_registry
from ..workload.archive import get_trace
from ..workload.trace import Trace
from .policy import FEATURE_NAMES, LinearSoftmaxPolicy, RLBackfillScheduler

__all__ = ["EnvConfig", "Episode", "BackfillEnv"]


@dataclass(frozen=True)
class EnvConfig:
    """What one episode simulates (everything but the seed and policy).

    ``predictor``/``corrector`` accept the same spellings as CellSpec
    axes (legacy strings or ``{"name":..., "params":...}`` dicts);
    ``corrector=None`` disables corrections.  Plain data end to end so
    the config pickles to rollout workers unchanged.
    """

    log: str
    n_jobs: int = 500
    predictor: Any = "ave2"
    corrector: Any = "incremental"
    min_prediction: float = 60.0
    tau: float = 10.0

    def to_obj(self) -> dict:
        return {
            "log": self.log,
            "n_jobs": self.n_jobs,
            "predictor": self.predictor,
            "corrector": self.corrector,
            "min_prediction": self.min_prediction,
            "tau": self.tau,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> EnvConfig:
        return cls(**obj)


@dataclass
class Episode:
    """Outcome of one rollout."""

    seed: int
    avebsld: float
    #: episode return (``-avebsld``); what REINFORCE maximizes.
    return_: float
    #: accumulated score-function gradient, shape (F+1,): d log pi / d theta
    #: summed over every decision (zeros for greedy/no-recorder rollouts).
    grad: np.ndarray = field(
        default_factory=lambda: np.zeros(len(FEATURE_NAMES) + 1)
    )
    #: mean per-decision action entropy (nats); 0.0 when no decisions fired.
    entropy: float = 0.0
    #: number of policy decisions (including stops).
    decisions: int = 0
    #: how many of those decisions were explicit stops.
    stops: int = 0

    def to_obj(self) -> dict:
        """Picklable/JSON-able form for cross-process rollout returns."""
        return {
            "seed": self.seed,
            "avebsld": self.avebsld,
            "return_": self.return_,
            "grad": [float(g) for g in self.grad],
            "entropy": self.entropy,
            "decisions": self.decisions,
            "stops": self.stops,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> Episode:
        return cls(
            seed=int(obj["seed"]),
            avebsld=float(obj["avebsld"]),
            return_=float(obj["return_"]),
            grad=np.array(obj["grad"], dtype=np.float64),
            entropy=float(obj["entropy"]),
            decisions=int(obj["decisions"]),
            stops=int(obj["stops"]),
        )


class _GradRecorder:
    """Accumulates the episode score-function gradient decision by decision."""

    def __init__(self) -> None:
        self.grad = np.zeros(len(FEATURE_NAMES) + 1)
        self.entropy_sum = 0.0
        self.decisions = 0
        self.stops = 0

    def __call__(self, aug: np.ndarray, action: int, probs: np.ndarray) -> None:
        # d log pi(a) / d theta = e(a) - E_pi[e]  for linear softmax
        self.grad += aug[action] - probs @ aug
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(probs > 0, np.log(probs), 0.0)
        self.entropy_sum += float(-(probs * logp).sum())
        self.decisions += 1
        if action == len(probs) - 1:
            self.stops += 1


class BackfillEnv:
    """Rollout harness for one (workload, predictor, corrector) setup.

    Traces are memoised per seed, so an epoch of rollouts over the same
    seeds regenerates nothing.
    """

    def __init__(self, config: EnvConfig) -> None:
        self.config = config
        self._traces: dict[int, Trace] = {}

    def trace(self, seed: int) -> Trace:
        trace = self._traces.get(seed)
        if trace is None:
            trace = get_trace(self.config.log, n_jobs=self.config.n_jobs, seed=seed)
            self._traces[seed] = trace
        return trace

    def rollout(
        self,
        policy: LinearSoftmaxPolicy,
        seed: int,
        sample: bool = False,
        temperature: float = 1.0,
        record_grad: bool = True,
        rng_seed: int | None = None,
    ) -> Episode:
        """One full episode; deterministic in (policy, seeds, flags).

        ``seed`` picks the synthetic trace; ``rng_seed`` (default: the
        trace seed) seeds the action sampler separately, so a training
        epoch can re-roll the same trace under fresh action noise.
        ``sample=True`` draws actions from the softmax (training);
        ``sample=False`` runs the greedy deployment policy (evaluation).
        The gradient recorder is only attached when both sampling and
        ``record_grad`` are on -- greedy evaluation pays no recording
        overhead.
        """
        cfg = self.config
        rng = (
            np.random.default_rng(seed if rng_seed is None else rng_seed)
            if sample
            else None
        )
        recorder = _GradRecorder() if (sample and record_grad) else None
        scheduler = RLBackfillScheduler(
            policy,
            rng=rng,
            temperature=temperature,
            recorder=recorder,
        )
        predictor = predictor_registry().build(cfg.predictor)
        corrector = (
            corrector_registry().build(cfg.corrector)
            if cfg.corrector not in (None, "none")
            else None
        )
        trace = self.trace(seed)
        session = SimSession(
            trace.processors,
            scheduler,
            predictor,
            corrector,
            min_prediction=cfg.min_prediction,
            trace_name=trace.name,
        )
        session.feed(trace)
        session.drain()
        avebsld = average_bounded_slowdown(session.result(), cfg.tau)
        episode = Episode(seed=seed, avebsld=avebsld, return_=-avebsld)
        if recorder is not None:
            episode.grad = recorder.grad
            episode.decisions = recorder.decisions
            episode.stops = recorder.stops
            if recorder.decisions:
                episode.entropy = recorder.entropy_sum / recorder.decisions
        return episode
