"""Parallel episode collection through the campaign dispatch layer.

Rollouts scale exactly like campaigns: the trainer hands a batch of
``(policy, seed)`` payloads to :meth:`repro.dist.Broker.map_tasks` and
gets episodes back in order, so serial, process-pool and any future
pool-backed broker produce *identical* training trajectories (each
episode's randomness is derived from its own seed, never from worker
identity or completion order).

The task function is module-level and its payloads are plain dicts --
the picklability contract of every executor in the stack.  Worker
processes memoise one :class:`~repro.learn.env.BackfillEnv` per distinct
environment config, so an epoch's episodes re-parse no traces.

The filesystem-queue broker inherits the serial ``map_tasks`` fallback
(its transport speaks shard manifests, not arbitrary payloads); truly
distributed *training* would need an episode manifest format on the
queue, which is future work -- distributed *evaluation* of a trained
policy already works today, because a checkpointed policy is an
ordinary campaign component (see :func:`repro.learn.train.evaluate_policy`).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .checkpoint import PolicyCheckpoint
from .env import BackfillEnv, EnvConfig, Episode
from .policy import LinearSoftmaxPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.broker import Broker

__all__ = ["rollout_task", "collect_episodes"]

#: per-process env memo: canonical config json -> live BackfillEnv.
_ENV_MEMO: dict[str, BackfillEnv] = {}


def _env_for(config_obj: dict) -> BackfillEnv:
    from ..spec.cellspec import canonical_json

    key = canonical_json(config_obj)
    env = _ENV_MEMO.get(key)
    if env is None:
        env = BackfillEnv(EnvConfig.from_obj(config_obj))
        _ENV_MEMO[key] = env
    return env


def rollout_task(payload: dict) -> dict:
    """One episode, from plain data to plain data (pool-map friendly).

    ``payload``: ``{"env": EnvConfig.to_obj(), "policy":
    PolicyCheckpoint.to_obj(), "seed": int, "sample": bool,
    "temperature": float, "rng_seed": int | None}``.
    """
    env = _env_for(payload["env"])
    policy = LinearSoftmaxPolicy.from_checkpoint(
        PolicyCheckpoint.from_obj(payload["policy"])
    )
    episode = env.rollout(
        policy,
        seed=int(payload["seed"]),
        sample=bool(payload["sample"]),
        temperature=float(payload.get("temperature", 1.0)),
        rng_seed=payload.get("rng_seed"),
    )
    return episode.to_obj()


def collect_episodes(
    broker: Broker,
    config: EnvConfig,
    policy: LinearSoftmaxPolicy,
    seeds: Sequence[int],
    sample: bool,
    temperature: float = 1.0,
    rng_seeds: Sequence[int] | None = None,
) -> list[Episode]:
    """Roll one episode per seed, fanned out through ``broker``.

    ``seeds[i]`` picks episode *i*'s trace; ``rng_seeds[i]`` (optional,
    aligned) its action noise.  Order-preserving: ``episodes[i]``
    corresponds to ``seeds[i]``.
    """
    if rng_seeds is not None and len(rng_seeds) != len(seeds):
        raise ValueError(
            f"rng_seeds ({len(rng_seeds)}) must align with seeds ({len(seeds)})"
        )
    ckpt_obj = policy.checkpoint().to_obj()
    env_obj = config.to_obj()
    payloads = [
        {
            "env": env_obj,
            "policy": ckpt_obj,
            "seed": int(seed),
            "sample": sample,
            "temperature": temperature,
            "rng_seed": None if rng_seeds is None else int(rng_seeds[i]),
        }
        for i, seed in enumerate(seeds)
    ]
    return [Episode.from_obj(obj) for obj in broker.map_tasks(rollout_task, payloads)]
