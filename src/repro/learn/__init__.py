"""Trainable backfilling policies.

``repro.learn`` layers a small reinforcement-learning stack on the
existing engine: :mod:`~repro.learn.env` wraps :class:`repro.sim.session.SimSession`
as an episodic environment, :mod:`~repro.learn.policy` provides a
numpy-only linear softmax policy (registered as the ``rl-backfill``
scheduler family), :mod:`~repro.learn.checkpoint` gives policies
canonical content digests, :mod:`~repro.learn.train` is a seeded
REINFORCE trainer, and :mod:`~repro.learn.rollout` fans episodes out
through the campaign :class:`~repro.dist.broker.Broker` layer.

A trained policy is just a component parameterization --
``{"name": "rl-backfill", "params": {"policy": "<digest>"}}`` -- so it
flows through CellSpec digests, cache tokens, grid files and dist
shards like any heuristic, with its own version fence
(:data:`~repro.learn.checkpoint.CHECKPOINT_VERSION`) instead of an
``ENGINE_VERSION`` bump.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_VERSION,
    DEFAULT_STORE_ENV,
    CheckpointError,
    PolicyCheckpoint,
    resolve_store,
)
from .env import BackfillEnv, EnvConfig, Episode
from .policy import (
    FEATURE_NAMES,
    LinearSoftmaxPolicy,
    RLBackfillScheduler,
)
from .rollout import collect_episodes, rollout_task
from .train import TrainConfig, TrainResult, evaluate_policy, train

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_STORE_ENV",
    "CheckpointError",
    "PolicyCheckpoint",
    "resolve_store",
    "BackfillEnv",
    "EnvConfig",
    "Episode",
    "FEATURE_NAMES",
    "LinearSoftmaxPolicy",
    "RLBackfillScheduler",
    "collect_episodes",
    "rollout_task",
    "TrainConfig",
    "TrainResult",
    "train",
    "evaluate_policy",
    "build_rl_scheduler",
]


def build_rl_scheduler(policy: str, store: str = "") -> RLBackfillScheduler:
    """Registry factory for ``rl-backfill``: digest -> greedy scheduler.

    ``policy`` is a checkpoint digest resolved against ``store`` (or
    ``$REPRO_CHECKPOINT_DIR`` / ``./checkpoints`` when empty -- leaving
    ``store`` at its default keeps the store *location* out of the spec
    digest, so cache identity follows the checkpoint content alone).
    """
    ckpt = PolicyCheckpoint.load_by_digest(policy, store=store or None)
    return RLBackfillScheduler(LinearSoftmaxPolicy.from_checkpoint(ckpt))
