"""Versioned, canonically-digested policy checkpoints.

A trained policy is addressed exactly like everything else in the spec
layer: by the 16-hex sha256 digest of a canonical JSON core.  The core
carries only what changes scheduling behavior (version fence, policy
family, feature list, parameters); training provenance lives in a
side-car ``meta`` block that is *excluded* from the digest, so re-running
an identical training job on another day produces a byte-identical
digest even though wall-clock metadata differs.

The digest is what flows into a :class:`~repro.spec.components.ComponentSpec`
(``rl-backfill(policy=<digest>)``) and therefore into CellSpec digests,
cache tokens and dist shard identities -- a retrained policy is a new
cache key by construction, with no ``ENGINE_VERSION`` bump.

``CHECKPOINT_VERSION`` fences the *semantics* of the core: loading a
checkpoint written under a different version is a hard, descriptive
error (never a silent reinterpretation), mirroring the SPEC_VERSION
discipline in :mod:`repro.spec.cellspec`.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..spec.cellspec import canonical_json

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "PolicyCheckpoint",
    "resolve_store",
    "DEFAULT_STORE_ENV",
    "DEFAULT_STORE",
]

#: Bump whenever the meaning of the checkpoint core changes (feature
#: semantics, parameter layout, action space).  Digests embed it.
CHECKPOINT_VERSION = 1

#: Environment variable consulted when a component spec leaves its
#: ``store`` param at the default ``""`` -- this keeps the store location
#: out of the spec digest, so the same trained policy hits the same
#: cache rows from any host that can see *a* copy of the checkpoint.
DEFAULT_STORE_ENV = "REPRO_CHECKPOINT_DIR"
DEFAULT_STORE = "checkpoints"


class CheckpointError(ValueError):
    """A checkpoint that cannot be loaded (missing, corrupt, or fenced)."""


def resolve_store(store: str | None = None) -> str:
    """The checkpoint directory a bare digest resolves against.

    Explicit ``store`` wins; otherwise ``$REPRO_CHECKPOINT_DIR``;
    otherwise ``./checkpoints``.
    """
    if store:
        return store
    return os.environ.get(DEFAULT_STORE_ENV) or DEFAULT_STORE


@dataclass(frozen=True)
class PolicyCheckpoint:
    """One saved policy: digested core + undigested provenance.

    ``features`` names the observation columns in order and ``weights``
    must match them one-for-one; ``stop_bias`` is the constant score of
    the stop action.  All numerics are plain Python floats so the
    canonical JSON form is identical across numpy versions.
    """

    family: str
    features: tuple[str, ...]
    weights: tuple[float, ...]
    stop_bias: float
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.features):
            raise CheckpointError(
                f"checkpoint has {len(self.weights)} weight(s) for "
                f"{len(self.features)} feature(s)"
            )

    # -- canonical form -------------------------------------------------------
    def core_obj(self) -> dict:
        """The digested payload: everything that changes behavior."""
        return {
            "checkpoint_version": CHECKPOINT_VERSION,
            "family": self.family,
            "features": list(self.features),
            "weights": [float(w) for w in self.weights],
            "stop_bias": float(self.stop_bias),
        }

    def digest(self) -> str:
        """16-hex content digest of the core (the component param value)."""
        core = canonical_json(self.core_obj())
        return hashlib.sha256(core.encode("utf-8")).hexdigest()[:16]

    def to_obj(self) -> dict:
        return {
            "checkpoint": self.core_obj(),
            "digest": self.digest(),
            "meta": dict(self.meta),
        }

    # -- persistence ----------------------------------------------------------
    def save(self, store: str | None = None) -> str:
        """Write ``<store>/<digest>.json``; returns the path.

        Idempotent: saving the same policy twice rewrites the same file
        with the same bytes (meta included), so concurrent trainers
        racing on a shared store cannot corrupt each other.
        """
        directory = resolve_store(store)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.digest()}.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_obj(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any], source: str = "<obj>") -> PolicyCheckpoint:
        core = obj.get("checkpoint")
        if not isinstance(core, Mapping):
            raise CheckpointError(f"{source}: no 'checkpoint' object")
        version = core.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{source}: checkpoint_version {version!r} is not supported "
                f"by this code (speaks {CHECKPOINT_VERSION}); re-train the "
                f"policy or use a matching repro version"
            )
        try:
            ckpt = cls(
                family=str(core["family"]),
                features=tuple(str(f) for f in core["features"]),
                weights=tuple(float(w) for w in core["weights"]),
                stop_bias=float(core["stop_bias"]),
                meta=dict(obj.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"{source}: malformed checkpoint core: {exc}") from exc
        claimed = obj.get("digest")
        if claimed is not None and claimed != ckpt.digest():
            raise CheckpointError(
                f"{source}: content digest {ckpt.digest()} does not match the "
                f"recorded digest {claimed!r} -- the file was edited or "
                f"corrupted; re-save or re-train"
            )
        return ckpt

    @classmethod
    def load(cls, path: str) -> PolicyCheckpoint:
        try:
            with open(path, encoding="utf-8") as fh:
                obj = json.load(fh)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from None
        if not isinstance(obj, Mapping):
            raise CheckpointError(f"checkpoint {path} must be a JSON object")
        return cls.from_obj(obj, source=path)

    @classmethod
    def load_by_digest(cls, digest: str, store: str | None = None) -> PolicyCheckpoint:
        """Resolve a bare digest against the store (see :func:`resolve_store`)."""
        directory = resolve_store(store)
        path = os.path.join(directory, f"{digest}.json")
        if not os.path.exists(path):
            raise CheckpointError(
                f"no checkpoint {digest!r} in store {directory!r} (looked for "
                f"{path}); train one with `repro train` or point "
                f"${DEFAULT_STORE_ENV} / the component's 'store' param at the "
                f"right directory"
            )
        ckpt = cls.load(path)
        if ckpt.digest() != digest:
            raise CheckpointError(
                f"checkpoint file {path} digests to {ckpt.digest()}, not the "
                f"{digest!r} its name claims -- store is corrupt"
            )
        return ckpt
