"""Command-line interface.

Subcommands::

    repro logs                       # list the archive logs (Table 4)
    repro synth --log Curie out.swf  # write a synthetic SWF file
    repro sim --log KTH-SP2 --predictor ml:sq-lin-large-area \\
              --corrector incremental --scheduler easy-sjbf
    repro campaign --n-jobs 1500 --replicas 2 --cache camp.json
    repro campaign --spec experiments/paper.toml --cache camp.json
    repro campaign --backend fsqueue --queue /shared/q --cache camp.json
    repro spec validate experiments/*.toml   # check experiment files
    repro spec expand experiments/paper.toml # list the expanded cells
    repro serve --processors 1024    # live JSONL session (README: Serving mode)
    repro worker --queue /shared/q   # drain shards from a queue dir
    repro merge --out merged.jsonl /shared/q/results
    repro table --which 1|6|7|8      # print a paper table reproduction

``python -m repro`` works as well as the installed ``repro`` script.
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    CampaignConfig,
    HeuristicTriple,
    analyze_predictions,
    average_reductions,
    leave_one_out,
    run_campaign,
    run_triple,
    selection_consensus,
    table8_rows,
)
from .core.reporting import format_percent, format_table
from .workload import LOG_NAMES, get_trace, save_swf, stable_seed, table4_rows

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Improving Backfilling by using Machine "
            "Learning to predict Running Times' (SC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("logs", help="list the archive logs (paper Table 4)")

    p_synth = sub.add_parser("synth", help="write a synthetic SWF trace")
    p_synth.add_argument("output", help="output .swf path")
    p_synth.add_argument("--log", required=True, choices=LOG_NAMES)
    p_synth.add_argument("--n-jobs", type=int, default=2000)
    p_synth.add_argument("--seed", type=int, default=None)

    p_sim = sub.add_parser("sim", help="run one heuristic triple on one log")
    p_sim.add_argument("--log", required=True, choices=LOG_NAMES)
    p_sim.add_argument("--n-jobs", type=int, default=2000)
    p_sim.add_argument("--seed", type=int, default=None)
    p_sim.add_argument("--predictor", default="requested")
    p_sim.add_argument("--corrector", default="none")
    p_sim.add_argument("--scheduler", default="easy")
    p_sim.add_argument("--tau", type=float, default=10.0)

    p_camp = sub.add_parser(
        "campaign",
        help="run the paper's 128-triple campaign, or any experiment spec file",
    )
    p_camp.add_argument(
        "--spec",
        default=None,
        help="run the cells expanded from this experiment spec file "
        "(TOML/JSON; overrides --logs/--n-jobs/--replicas)",
    )
    p_camp.add_argument("--logs", nargs="*", default=list(LOG_NAMES))
    p_camp.add_argument("--n-jobs", type=int, default=2000)
    p_camp.add_argument("--replicas", type=int, default=3)
    p_camp.add_argument("--cache", default=None, help="JSONL result-cache path")
    p_camp.add_argument("--workers", type=int, default=None)
    p_camp.add_argument(
        "--progress-log",
        default=None,
        help="stream JSONL progress events here (render with core.format_progress)",
    )
    p_camp.add_argument(
        "--backend",
        choices=["local", "fsqueue"],
        default="local",
        help="dispatch: this host's process pool, or coordinate "
        "`repro worker` processes over a shared queue directory",
    )
    p_camp.add_argument(
        "--queue", default=None, help="fsqueue: the shared queue directory"
    )
    p_camp.add_argument(
        "--shards", type=int, default=None,
        help="fsqueue: fixed shard count (default: ~16 cells per shard)",
    )
    p_camp.add_argument(
        "--lease-ttl", type=float, default=300.0,
        help="fsqueue: seconds without heartbeat before a shard is re-queued",
    )
    p_camp.add_argument(
        "--max-attempts", type=int, default=3,
        help="fsqueue: attempts per shard before the campaign fails",
    )
    p_camp.add_argument(
        "--dist-timeout", type=float, default=None,
        help="fsqueue: give up after this many seconds without completion",
    )

    p_serve = sub.add_parser(
        "serve",
        help="long-running simulation session speaking JSONL on stdin/stdout",
    )
    p_serve.add_argument(
        "--processors", type=int, required=True, help="machine size to serve"
    )
    p_serve.add_argument("--scheduler", default="easy-sjbf")
    p_serve.add_argument("--predictor", default="ave2")
    p_serve.add_argument("--corrector", default="incremental")
    p_serve.add_argument("--min-prediction", type=float, default=60.0)
    p_serve.add_argument("--name", default="serve", help="session/trace label")

    p_worker = sub.add_parser(
        "worker", help="claim and simulate shards from a campaign queue"
    )
    p_worker.add_argument("--queue", required=True, help="the shared queue directory")
    p_worker.add_argument("--worker-id", default=None, help="default: <host>-<pid>")
    p_worker.add_argument("--poll", type=float, default=0.5, help="claim poll seconds")
    p_worker.add_argument(
        "--max-idle", type=float, default=None,
        help="exit after this many idle seconds (default: wait for DONE/STOP)",
    )
    p_worker.add_argument(
        "--max-shards", type=int, default=None, help="exit after completing N shards"
    )

    p_merge = sub.add_parser(
        "merge", help="merge shard result caches into one canonical cache"
    )
    p_merge.add_argument(
        "inputs", nargs="+",
        help="shard cache files and/or directories of *.jsonl (e.g. QUEUE/results)",
    )
    p_merge.add_argument("--out", required=True, help="canonical merged cache path")
    p_merge.add_argument(
        "--no-version-check", action="store_true",
        help="accept cells from other CACHE_VERSION/ENGINE_VERSION codes (unsafe)",
    )
    p_merge.add_argument(
        "--upgrade-legacy", action="store_true",
        help="re-key pre-redesign (v4 tuple-keyed) rows to spec-digest "
        "tokens where the same-engine lowering exists",
    )

    p_spec = sub.add_parser(
        "spec", help="validate / expand declarative experiment spec files"
    )
    spec_sub = p_spec.add_subparsers(dest="spec_command", required=True)
    p_validate = spec_sub.add_parser(
        "validate", help="parse, expand and registry-check spec files"
    )
    p_validate.add_argument("files", nargs="+", help="experiment .toml/.json files")
    p_expand = spec_sub.add_parser(
        "expand", help="print the cells a spec file expands to"
    )
    p_expand.add_argument("file", help="experiment .toml/.json file")
    p_expand.add_argument(
        "--format", choices=["cells", "keys", "json"], default="cells",
        help="cells: one line per cell; keys: unique legacy triple keys; "
        "json: canonical cell objects",
    )
    p_expand.add_argument(
        "--limit", type=int, default=None, help="print at most N entries"
    )

    p_table = sub.add_parser("table", help="print a paper table reproduction")
    p_table.add_argument("--which", required=True, choices=["1", "4", "6", "7", "8"])
    p_table.add_argument("--n-jobs", type=int, default=2000)
    p_table.add_argument("--replicas", type=int, default=3)
    p_table.add_argument("--cache", default=None)
    p_table.add_argument("--workers", type=int, default=None)
    return parser


def _cmd_logs() -> int:
    rows = table4_rows()
    print(
        format_table(
            ["Name", "Year", "# CPUs", "# Jobs", "Duration"],
            rows,
            title="Workload logs (paper Table 4; published metadata)",
        )
    )
    return 0


def _resolve_seed(args: argparse.Namespace) -> tuple[int, bool]:
    """The run's seed and whether it was derived (``--seed`` omitted).

    Derived seeds use :func:`repro.workload.stable_seed`, the same
    default the campaign uses -- and are *printed*, so every CLI run is
    reproducible from its own output.
    """
    if args.seed is not None:
        return args.seed, False
    return stable_seed(args.log), True


def _cmd_synth(args: argparse.Namespace) -> int:
    seed, derived = _resolve_seed(args)
    trace = get_trace(args.log, n_jobs=args.n_jobs, seed=seed)
    save_swf(trace, args.output)
    stats = trace.stats()
    origin = "derived from log name; pass --seed to override" if derived else "from --seed"
    print(f"seed {seed} ({origin})")
    print(f"wrote {args.output}: {stats.describe()}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    corrector = None if args.corrector == "none" else args.corrector
    triple = HeuristicTriple(args.predictor, corrector, args.scheduler)
    seed, derived = _resolve_seed(args)
    outcome = run_triple(
        args.log, triple.key, n_jobs=args.n_jobs, seed=seed, tau=args.tau
    )
    origin = "derived from log name" if derived else "from --seed"
    print(f"log        : {outcome.log}")
    print(f"seed       : {outcome.seed} ({origin})")
    print(f"triple     : {triple.describe()}")
    print(f"AVEbsld    : {outcome.avebsld:.2f}")
    print(f"utilization: {outcome.utilization:.3f}")
    print(f"corrections: {outcome.corrections}")
    print(f"max queue  : {outcome.max_queue_length}")
    return 0


def _backend_from_args(args: argparse.Namespace):
    backend = getattr(args, "backend", "local")
    if backend == "fsqueue":
        from .dist import FsQueueBroker

        if not args.queue:
            raise SystemExit("campaign --backend fsqueue requires --queue DIR")
        backend = FsQueueBroker(
            args.queue,
            n_shards=args.shards,
            lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts,
            timeout=args.dist_timeout,
        )
    return backend


def _campaign_from_args(args: argparse.Namespace):
    config = CampaignConfig(
        logs=tuple(args.logs) if hasattr(args, "logs") else LOG_NAMES,
        n_jobs=args.n_jobs,
        replicas=args.replicas,
    )
    return run_campaign(
        config,
        cache_path=args.cache,
        workers=args.workers,
        progress=True,
        progress_path=getattr(args, "progress_log", None),
        backend=_backend_from_args(args),
    )


def _cmd_spec_campaign(args: argparse.Namespace) -> int:
    """``repro campaign --spec FILE``: the declarative campaign path."""
    from .core import run_cells
    from .spec import validate_spec_file

    name, cells = validate_spec_file(args.spec)
    print(f"spec {args.spec} ({name}): {len(cells)} cell(s)")
    result = run_cells(
        cells,
        cache_path=args.cache,
        workers=args.workers,
        progress=True,
        progress_path=getattr(args, "progress_log", None),
        backend=_backend_from_args(args),
    )
    campaign = result.to_campaign_result()
    if campaign is not None:
        try:
            _print_table6(campaign)
            return 0
        except KeyError:
            pass  # legacy-shaped but not the paper's matrix
    print(
        format_table(
            ["Components", "mean AVEbsld"],
            [(label, f"{score:.2f}") for label, score in result.leaderboard()],
            title=f"Scenario leaderboard ({name})",
        )
    )
    return 0


def _print_table6(result) -> None:
    rows = []
    for log, clair_fcfs, clair_sjbf, easy, easypp, rng_f, rng_s in result.table6_rows():
        rows.append(
            (
                log,
                clair_fcfs,
                clair_sjbf,
                easy,
                easypp,
                f"{rng_f[0]:.1f} - {rng_f[1]:.1f}",
                f"{rng_s[0]:.1f} - {rng_s[1]:.1f}",
            )
        )
    print(
        format_table(
            ["Trace", "Clairv FCFS", "Clairv SJBF", "EASY", "EASY++", "Learn FCFS", "Learn SJBF"],
            rows,
            title="Campaign overview (paper Table 6 layout)",
        )
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    if getattr(args, "spec", None):
        return _cmd_spec_campaign(args)
    result = _campaign_from_args(args)
    _print_table6(result)
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from .spec import triple_keys_of, validate_spec_file

    if args.spec_command == "validate":
        failures = 0
        for path in args.files:
            try:
                name, cells = validate_spec_file(path)
            except Exception as exc:  # noqa: BLE001 - report every bad file
                print(f"FAIL {path}: {exc}")
                failures += 1
                continue
            legacy = sum(1 for c in cells if c.triple_key is not None)
            print(
                f"ok   {path} ({name}): {len(cells)} cell(s), "
                f"{legacy} with a legacy triple spelling"
            )
        return 1 if failures else 0

    name, cells = validate_spec_file(args.file)
    if args.format == "keys":
        entries = triple_keys_of(cells)
    elif args.format == "json":
        entries = [cell.canonical() for cell in cells]
    else:
        entries = [
            f"{cell.workload.log} n={cell.workload.n_jobs} "
            f"s={cell.workload.seed} {cell.label} [{cell.digest()}]"
            for cell in cells
        ]
    shown = entries if args.limit is None else entries[: args.limit]
    for entry in shown:
        print(entry)
    if len(shown) < len(entries):
        print(f"... ({len(entries) - len(shown)} more)")
    print(f"# {name}: {len(cells)} cell(s), {len(triple_keys_of(cells))} unique triple key(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: JSONL protocol loop over one live SimSession."""
    from .serve import build_serve_session, serve_loop

    session = build_serve_session(
        processors=args.processors,
        scheduler=args.scheduler,
        predictor=args.predictor,
        corrector=args.corrector,
        min_prediction=args.min_prediction,
        name=args.name,
    )
    print(
        f"serving m={args.processors} scheduler={args.scheduler} "
        f"predictor={args.predictor} corrector={args.corrector}; "
        "one JSON request per line (see README 'Serving mode')",
        file=sys.stderr,
    )
    stats = serve_loop(session, sys.stdin, sys.stdout)
    print(
        f"serve session closed: {stats.n_requests} request(s), "
        f"{stats.n_submitted} submitted, {stats.n_queries} query(ies), "
        f"{stats.n_errors} error(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .dist import run_worker

    stats = run_worker(
        args.queue,
        worker_id=args.worker_id,
        poll_interval=args.poll,
        max_idle=args.max_idle,
        max_shards=args.max_shards,
        echo=True,
    )
    print(
        f"worker {stats.worker_id} exiting ({stats.reason}): "
        f"{stats.shards} shard(s), {stats.cells} simulated cell(s), "
        f"{stats.cached_cells} served from earlier attempts, "
        f"{stats.abandoned} abandoned lease(s)"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .dist import merge_caches

    _cells, report = merge_caches(
        args.inputs,
        out_path=args.out,
        check_versions=not args.no_version_check,
        upgrade_legacy=args.upgrade_legacy,
    )
    print(report.describe())
    print(f"wrote {args.out}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which == "4":
        return _cmd_logs()
    if args.which == "8":
        analysis, _result, procs = analyze_predictions(n_jobs=args.n_jobs)
        rows = [
            (name, round(mae), f"{eloss:.3g}")
            for name, mae, eloss in table8_rows(analysis, procs)
        ]
        print(
            format_table(
                ["Prediction Technique", "MAE (s)", "Mean E-Loss"],
                rows,
                title="Prediction error vs E-Loss (paper Table 8)",
            )
        )
        return 0

    args.logs = list(LOG_NAMES)
    result = _campaign_from_args(args)
    if args.which == "1":
        rows = [
            (log, easy, clair, format_percent(red))
            for log, easy, clair, red in result.table1_rows()
        ]
        print(
            format_table(
                ["Log", "EASY", "EASY-Clairvoyant", "decrease"],
                rows,
                title="EASY vs clairvoyant EASY (paper Table 1)",
            )
        )
    elif args.which == "6":
        return _cmd_campaign(args)
    elif args.which == "7":
        rows = leave_one_out(result)
        consensus, folds = selection_consensus(rows)
        table = [
            (
                row.log,
                f"{row.cv_score:.1f} {format_percent(row.reduction_vs_easy)}",
                f"{row.easy_score:.1f}",
                f"{row.easypp_score:.1f} {format_percent(row.reduction_vs_easypp)}",
            )
            for row in rows
        ]
        print(
            format_table(
                ["Log", "C-V Heuristic triple", "EASY", "EASY++"],
                table,
                title="Cross-validated triple selection (paper Table 7)",
            )
        )
        vs_easy, vs_easypp = average_reductions(rows)
        print(f"\nconsensus triple: {consensus.key} (selected in {folds}/6 folds)")
        print(f"average reduction vs EASY  : {vs_easy:.0f}% (paper: 28%)")
        print(f"average reduction vs EASY++: {vs_easypp:.0f}% (paper: 11%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "logs":
        return _cmd_logs()
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "sim":
        return _cmd_sim(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "spec":
        return _cmd_spec(args)
    if args.command == "table":
        return _cmd_table(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
