"""Command-line interface.

Subcommands::

    repro logs                       # list the archive logs (Table 4)
    repro synth --log Curie out.swf  # write a synthetic SWF file
    repro sim --log KTH-SP2 --predictor ml:sq-lin-large-area \\
              --corrector incremental --scheduler easy-sjbf
    repro campaign --n-jobs 1500 --replicas 2 --cache camp.json
    repro campaign --spec experiments/paper.toml --cache camp.json
    repro campaign --backend fsqueue --queue /shared/q --cache camp.json
    repro spec validate experiments/*.toml   # check experiment files
    repro spec expand experiments/paper.toml # list the expanded cells
    repro train --log KTH-SP2 --epochs 4     # train + checkpoint a policy
    repro eval --policy DIGEST --log KTH-SP2 # rank it vs heuristics
    repro serve --processors 1024    # live JSONL session (README: Serving mode)
    repro worker --queue /shared/q   # drain shards from a queue dir
    repro merge --out merged.jsonl /shared/q/results
    repro check [--json] [--rules ...]   # static invariant checker
    repro table --which 1|6|7|8      # print a paper table reproduction
    repro metrics RUN_DIR            # render telemetry snapshots
    repro metrics BEFORE_DIR AFTER_DIR   # counter deltas between two runs

``sim``, ``campaign``, ``worker`` and ``serve`` accept ``--telemetry
DIR``: counters/histograms land in ``DIR/metrics-<component>.json`` (+
Prometheus text) and spans in ``DIR/trace-<component>.jsonl``; render
with ``repro metrics DIR``.  ``-v``/``-vv`` (or ``REPRO_LOG=INFO``)
raises the log level.  ``python -m repro`` works as well as the
installed ``repro`` script.
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    CampaignConfig,
    HeuristicTriple,
    analyze_predictions,
    average_reductions,
    leave_one_out,
    run_campaign,
    run_triple,
    selection_consensus,
    table8_rows,
)
from .core.reporting import format_leaderboard, format_percent, format_table
from .workload import LOG_NAMES, get_trace, save_swf, stable_seed, table4_rows

__all__ = ["main", "build_parser"]

_TELEMETRY_HELP = (
    "write counters/histograms and a span trace into this directory "
    "(render with `repro metrics DIR`)"
)


def _version_string() -> str:
    from . import __version__
    from .core.campaign import CACHE_VERSION
    from .sim.engine import ENGINE_VERSION
    from .spec import SPEC_VERSION

    return (
        f"repro {__version__} (engine v{ENGINE_VERSION}, "
        f"cache v{CACHE_VERSION}, spec v{SPEC_VERSION})"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Improving Backfilling by using Machine "
            "Learning to predict Running Times' (SC 2015)"
        ),
    )
    parser.add_argument("--version", action="version", version=_version_string())
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log INFO (-v) or DEBUG (-vv); REPRO_LOG=LEVEL works too",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("logs", help="list the archive logs (paper Table 4)")

    p_synth = sub.add_parser("synth", help="write a synthetic SWF trace")
    p_synth.add_argument("output", help="output .swf path")
    p_synth.add_argument("--log", required=True, choices=LOG_NAMES)
    p_synth.add_argument("--n-jobs", type=int, default=2000)
    p_synth.add_argument("--seed", type=int, default=None)

    p_sim = sub.add_parser("sim", help="run one heuristic triple on one log")
    p_sim.add_argument("--log", required=True, choices=LOG_NAMES)
    p_sim.add_argument("--n-jobs", type=int, default=2000)
    p_sim.add_argument("--seed", type=int, default=None)
    p_sim.add_argument("--predictor", default="requested")
    p_sim.add_argument("--corrector", default="none")
    p_sim.add_argument("--scheduler", default="easy")
    p_sim.add_argument("--tau", type=float, default=10.0)
    p_sim.add_argument("--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP)

    p_camp = sub.add_parser(
        "campaign",
        help="run the paper's 128-triple campaign, or any experiment spec file",
    )
    p_camp.add_argument(
        "--spec",
        default=None,
        help="run the cells expanded from this experiment spec file "
        "(TOML/JSON; overrides --logs/--n-jobs/--replicas)",
    )
    p_camp.add_argument("--logs", nargs="*", default=list(LOG_NAMES))
    p_camp.add_argument("--n-jobs", type=int, default=2000)
    p_camp.add_argument("--replicas", type=int, default=3)
    p_camp.add_argument("--cache", default=None, help="JSONL result-cache path")
    p_camp.add_argument("--workers", type=int, default=None)
    p_camp.add_argument(
        "--progress-log",
        default=None,
        help="stream JSONL progress events here (render with core.format_progress)",
    )
    p_camp.add_argument(
        "--backend",
        choices=["local", "fsqueue"],
        default="local",
        help="dispatch: this host's process pool, or coordinate "
        "`repro worker` processes over a shared queue directory",
    )
    p_camp.add_argument(
        "--queue", default=None, help="fsqueue: the shared queue directory"
    )
    p_camp.add_argument(
        "--shards", type=int, default=None,
        help="fsqueue: fixed shard count (default: ~16 cells per shard)",
    )
    p_camp.add_argument(
        "--lease-ttl", type=float, default=300.0,
        help="fsqueue: seconds without heartbeat before a shard is re-queued",
    )
    p_camp.add_argument(
        "--max-attempts", type=int, default=3,
        help="fsqueue: attempts per shard before the campaign fails",
    )
    p_camp.add_argument(
        "--dist-timeout", type=float, default=None,
        help="fsqueue: give up after this many seconds without completion",
    )
    p_camp.add_argument("--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP)

    p_serve = sub.add_parser(
        "serve",
        help="long-running simulation session speaking JSONL on stdin/stdout",
    )
    p_serve.add_argument(
        "--processors", type=int, required=True, help="machine size to serve"
    )
    p_serve.add_argument("--scheduler", default="easy-sjbf")
    p_serve.add_argument("--predictor", default="ave2")
    p_serve.add_argument("--corrector", default="incremental")
    p_serve.add_argument("--min-prediction", type=float, default=60.0)
    p_serve.add_argument("--name", default="serve", help="session/trace label")
    p_serve.add_argument("--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP)

    p_worker = sub.add_parser(
        "worker", help="claim and simulate shards from a campaign queue"
    )
    p_worker.add_argument("--queue", required=True, help="the shared queue directory")
    p_worker.add_argument("--worker-id", default=None, help="default: <host>-<pid>")
    p_worker.add_argument("--poll", type=float, default=0.5, help="claim poll seconds")
    p_worker.add_argument(
        "--max-idle", type=float, default=None,
        help="exit after this many idle seconds (default: wait for DONE/STOP)",
    )
    p_worker.add_argument(
        "--max-shards", type=int, default=None, help="exit after completing N shards"
    )
    p_worker.add_argument(
        "--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP
    )

    p_merge = sub.add_parser(
        "merge", help="merge shard result caches into one canonical cache"
    )
    p_merge.add_argument(
        "inputs", nargs="+",
        help="shard cache files and/or directories of *.jsonl (e.g. QUEUE/results)",
    )
    p_merge.add_argument("--out", required=True, help="canonical merged cache path")
    p_merge.add_argument(
        "--no-version-check", action="store_true",
        help="accept cells from other CACHE_VERSION/ENGINE_VERSION codes (unsafe)",
    )
    p_merge.add_argument(
        "--upgrade-legacy", action="store_true",
        help="re-key pre-redesign (v4 tuple-keyed) rows to spec-digest "
        "tokens where the same-engine lowering exists",
    )

    p_spec = sub.add_parser(
        "spec", help="validate / expand declarative experiment spec files"
    )
    spec_sub = p_spec.add_subparsers(dest="spec_command", required=True)
    p_validate = spec_sub.add_parser(
        "validate", help="parse, expand and registry-check spec files"
    )
    p_validate.add_argument("files", nargs="+", help="experiment .toml/.json files")
    p_expand = spec_sub.add_parser(
        "expand", help="print the cells a spec file expands to"
    )
    p_expand.add_argument("file", help="experiment .toml/.json file")
    p_expand.add_argument(
        "--format", choices=["cells", "keys", "json"], default="cells",
        help="cells: one line per cell; keys: unique legacy triple keys; "
        "json: canonical cell objects",
    )
    p_expand.add_argument(
        "--limit", type=int, default=None, help="print at most N entries"
    )

    p_train = sub.add_parser(
        "train",
        help="train a backfilling policy (REINFORCE) and checkpoint it",
    )
    p_train.add_argument("--log", default="KTH-SP2", choices=LOG_NAMES)
    p_train.add_argument("--n-jobs", type=int, default=500)
    p_train.add_argument(
        "--replicas", type=int, default=2,
        help="training trace seeds: stable_seed(log) + 0..N-1",
    )
    p_train.add_argument(
        "--train-seeds", type=int, nargs="*", default=None,
        help="pin the training trace seeds explicitly (overrides --replicas)",
    )
    p_train.add_argument("--epochs", type=int, default=4)
    p_train.add_argument(
        "--episodes", type=int, default=8, help="sampled episodes per epoch"
    )
    p_train.add_argument("--lr", type=float, default=0.05)
    p_train.add_argument("--temperature", type=float, default=1.0)
    p_train.add_argument(
        "--seed", type=int, default=0, help="master seed for action noise"
    )
    p_train.add_argument("--predictor", default="ave2")
    p_train.add_argument("--corrector", default="incremental")
    p_train.add_argument("--min-prediction", type=float, default=60.0)
    p_train.add_argument("--tau", type=float, default=10.0)
    p_train.add_argument(
        "--store", default=None,
        help="checkpoint directory (default: $REPRO_CHECKPOINT_DIR or ./checkpoints)",
    )
    p_train.add_argument(
        "--workers", type=int, default=None, help="parallel rollout workers"
    )
    p_train.add_argument("--json", action="store_true", help="machine-readable summary")
    p_train.add_argument("--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP)

    p_eval = sub.add_parser(
        "eval",
        help="rank a trained policy against heuristic baselines (leaderboard)",
    )
    p_eval.add_argument("--policy", required=True, help="checkpoint digest to evaluate")
    p_eval.add_argument(
        "--store", default=None,
        help="checkpoint directory (default: $REPRO_CHECKPOINT_DIR or ./checkpoints)",
    )
    p_eval.add_argument("--log", default="KTH-SP2", choices=LOG_NAMES)
    p_eval.add_argument("--n-jobs", type=int, default=500)
    p_eval.add_argument(
        "--seeds", type=int, nargs="*", default=None,
        help="evaluation trace seeds (default: one held-out seed per --replicas)",
    )
    p_eval.add_argument(
        "--replicas", type=int, default=1,
        help="without --seeds: evaluate on stable_seed(log)+offset..+offset+N-1",
    )
    p_eval.add_argument(
        "--holdout-offset", type=int, default=2,
        help="without --seeds: first evaluation seed is stable_seed(log)+OFFSET "
        "(keep it >= the training replicas so evaluation is held out)",
    )
    p_eval.add_argument("--predictor", default="ave2")
    p_eval.add_argument("--corrector", default="incremental")
    p_eval.add_argument("--min-prediction", type=float, default=60.0)
    p_eval.add_argument("--tau", type=float, default=10.0)
    p_eval.add_argument(
        "--baselines", nargs="*", default=["easy", "easy-sjbf"],
        help="heuristic schedulers to rank against",
    )
    p_eval.add_argument("--cache", default=None, help="JSONL result-cache path")
    p_eval.add_argument("--workers", type=int, default=None)
    p_eval.add_argument("--json", action="store_true", help="machine-readable leaderboard")
    p_eval.add_argument("--telemetry", default=None, metavar="DIR", help=_TELEMETRY_HELP)

    p_metrics = sub.add_parser(
        "metrics", help="render telemetry snapshots written by --telemetry DIR"
    )
    p_metrics.add_argument(
        "dirs", nargs="+", metavar="DIR",
        help="one snapshot directory to render, or two to diff (before after)",
    )
    p_metrics.add_argument(
        "--format", choices=["text", "prom", "json"], default="text",
        help="single-directory rendering: human text, Prometheus "
        "exposition, or raw snapshot JSON",
    )

    p_check = sub.add_parser(
        "check",
        help="run the static invariant checker (determinism/durability/"
        "cache-identity rules; README: Static analysis & invariants)",
    )
    p_check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    p_check.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: the whole battery)",
    )
    p_check.add_argument(
        "--json", action="store_true",
        help="machine-readable report on stdout (schema: analysis.report)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule battery (id, scope, title) and exit",
    )
    p_check.add_argument(
        "--update-frozen", action="store_true",
        help="regenerate the FRZ001 digest file after a deliberate, "
        "oracle-proven semantics change (or an ENGINE_VERSION bump)",
    )

    p_table = sub.add_parser("table", help="print a paper table reproduction")
    p_table.add_argument("--which", required=True, choices=["1", "4", "6", "7", "8"])
    p_table.add_argument("--n-jobs", type=int, default=2000)
    p_table.add_argument("--replicas", type=int, default=3)
    p_table.add_argument("--cache", default=None)
    p_table.add_argument("--workers", type=int, default=None)
    return parser


def _cmd_logs() -> int:
    rows = table4_rows()
    print(
        format_table(
            ["Name", "Year", "# CPUs", "# Jobs", "Duration"],
            rows,
            title="Workload logs (paper Table 4; published metadata)",
        )
    )
    return 0


def _resolve_seed(args: argparse.Namespace) -> tuple[int, bool]:
    """The run's seed and whether it was derived (``--seed`` omitted).

    Derived seeds use :func:`repro.workload.stable_seed`, the same
    default the campaign uses -- and are *printed*, so every CLI run is
    reproducible from its own output.
    """
    if args.seed is not None:
        return args.seed, False
    return stable_seed(args.log), True


def _telemetry_from_args(args: argparse.Namespace, component: str):
    """``(telemetry, dir)`` from ``--telemetry DIR``, or ``(None, None)``.

    The registry traces into ``DIR/trace-<component>.jsonl`` as it runs;
    call :func:`_finish_telemetry` to land the counter snapshot.
    """
    directory = getattr(args, "telemetry", None)
    if not directory:
        return None, None
    import os

    from .obs import JsonlTraceSink, Telemetry

    os.makedirs(directory, exist_ok=True)
    trace = JsonlTraceSink(os.path.join(directory, f"trace-{component}.jsonl"))
    return Telemetry(component=component, trace=trace), directory


def _finish_telemetry(telemetry, directory: str | None) -> None:
    if telemetry is None or directory is None:
        return
    path = telemetry.write(directory)
    telemetry.close()
    print(f"telemetry written to {path}", file=sys.stderr)


def _cmd_synth(args: argparse.Namespace) -> int:
    seed, derived = _resolve_seed(args)
    trace = get_trace(args.log, n_jobs=args.n_jobs, seed=seed)
    save_swf(trace, args.output)
    stats = trace.stats()
    origin = "derived from log name; pass --seed to override" if derived else "from --seed"
    print(f"seed {seed} ({origin})")
    print(f"wrote {args.output}: {stats.describe()}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    corrector = None if args.corrector == "none" else args.corrector
    triple = HeuristicTriple(args.predictor, corrector, args.scheduler)
    seed, derived = _resolve_seed(args)
    telemetry, tele_dir = _telemetry_from_args(args, "sim")
    try:
        outcome = run_triple(
            args.log, triple.key, n_jobs=args.n_jobs, seed=seed, tau=args.tau,
            telemetry=telemetry,
        )
    finally:
        _finish_telemetry(telemetry, tele_dir)
    origin = "derived from log name" if derived else "from --seed"
    print(f"log        : {outcome.log}")
    print(f"seed       : {outcome.seed} ({origin})")
    print(f"triple     : {triple.describe()}")
    print(f"AVEbsld    : {outcome.avebsld:.2f}")
    print(f"utilization: {outcome.utilization:.3f}")
    print(f"corrections: {outcome.corrections}")
    print(f"max queue  : {outcome.max_queue_length}")
    return 0


def _backend_from_args(args: argparse.Namespace):
    backend = getattr(args, "backend", "local")
    if backend == "fsqueue":
        from .dist import FsQueueBroker

        if not args.queue:
            raise SystemExit("campaign --backend fsqueue requires --queue DIR")
        backend = FsQueueBroker(
            args.queue,
            n_shards=args.shards,
            lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts,
            timeout=args.dist_timeout,
        )
    return backend


def _campaign_from_args(args: argparse.Namespace, telemetry=None):
    config = CampaignConfig(
        logs=tuple(args.logs) if hasattr(args, "logs") else LOG_NAMES,
        n_jobs=args.n_jobs,
        replicas=args.replicas,
    )
    return run_campaign(
        config,
        cache_path=args.cache,
        workers=args.workers,
        progress=True,
        progress_path=getattr(args, "progress_log", None),
        backend=_backend_from_args(args),
        telemetry=telemetry,
    )


def _cmd_spec_campaign(args: argparse.Namespace) -> int:
    """``repro campaign --spec FILE``: the declarative campaign path."""
    from .core import run_cells
    from .spec import validate_spec_file

    name, cells = validate_spec_file(args.spec)
    print(f"spec {args.spec} ({name}): {len(cells)} cell(s)")
    telemetry, tele_dir = _telemetry_from_args(args, "campaign")
    try:
        result = run_cells(
            cells,
            cache_path=args.cache,
            workers=args.workers,
            progress=True,
            progress_path=getattr(args, "progress_log", None),
            backend=_backend_from_args(args),
            telemetry=telemetry,
        )
    finally:
        _finish_telemetry(telemetry, tele_dir)
    campaign = result.to_campaign_result()
    if campaign is not None:
        try:
            _print_table6(campaign)
            return 0
        except KeyError:
            pass  # legacy-shaped but not the paper's matrix
    print(
        format_leaderboard(
            result.leaderboard(), title=f"Scenario leaderboard ({name})"
        )
    )
    return 0


def _print_table6(result) -> None:
    rows = []
    for log, clair_fcfs, clair_sjbf, easy, easypp, rng_f, rng_s in result.table6_rows():
        rows.append(
            (
                log,
                clair_fcfs,
                clair_sjbf,
                easy,
                easypp,
                f"{rng_f[0]:.1f} - {rng_f[1]:.1f}",
                f"{rng_s[0]:.1f} - {rng_s[1]:.1f}",
            )
        )
    print(
        format_table(
            ["Trace", "Clairv FCFS", "Clairv SJBF", "EASY", "EASY++", "Learn FCFS", "Learn SJBF"],
            rows,
            title="Campaign overview (paper Table 6 layout)",
        )
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    if getattr(args, "spec", None):
        return _cmd_spec_campaign(args)
    telemetry, tele_dir = _telemetry_from_args(args, "campaign")
    try:
        result = _campaign_from_args(args, telemetry=telemetry)
    finally:
        _finish_telemetry(telemetry, tele_dir)
    _print_table6(result)
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from .spec import triple_keys_of, validate_spec_file

    if args.spec_command == "validate":
        failures = 0
        for path in args.files:
            try:
                name, cells = validate_spec_file(path)
            except Exception as exc:  # noqa: BLE001 - report every bad file
                print(f"FAIL {path}: {exc}")
                failures += 1
                continue
            legacy = sum(1 for c in cells if c.triple_key is not None)
            print(
                f"ok   {path} ({name}): {len(cells)} cell(s), "
                f"{legacy} with a legacy triple spelling"
            )
        return 1 if failures else 0

    name, cells = validate_spec_file(args.file)
    if args.format == "keys":
        entries = triple_keys_of(cells)
    elif args.format == "json":
        entries = [cell.canonical() for cell in cells]
    else:
        entries = [
            f"{cell.workload.log} n={cell.workload.n_jobs} "
            f"s={cell.workload.seed} {cell.label} [{cell.digest()}]"
            for cell in cells
        ]
    shown = entries if args.limit is None else entries[: args.limit]
    for entry in shown:
        print(entry)
    if len(shown) < len(entries):
        print(f"... ({len(entries) - len(shown)} more)")
    print(f"# {name}: {len(cells)} cell(s), {len(triple_keys_of(cells))} unique triple key(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: JSONL protocol loop over one live SimSession."""
    from .serve import build_serve_session, serve_loop

    telemetry, tele_dir = _telemetry_from_args(args, "serve")
    session = build_serve_session(
        processors=args.processors,
        scheduler=args.scheduler,
        predictor=args.predictor,
        corrector=args.corrector,
        min_prediction=args.min_prediction,
        name=args.name,
        telemetry=telemetry,
    )
    print(
        f"serving m={args.processors} scheduler={args.scheduler} "
        f"predictor={args.predictor} corrector={args.corrector}; "
        "one JSON request per line (see README 'Serving mode')",
        file=sys.stderr,
    )
    try:
        stats = serve_loop(session, sys.stdin, sys.stdout, telemetry=telemetry)
    finally:
        _finish_telemetry(telemetry, tele_dir)
    print(
        f"serve session closed: {stats.n_requests} request(s), "
        f"{stats.n_submitted} submitted, {stats.n_queries} query(ies), "
        f"{stats.n_errors} error(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .dist import run_worker

    stats = run_worker(
        args.queue,
        worker_id=args.worker_id,
        poll_interval=args.poll,
        max_idle=args.max_idle,
        max_shards=args.max_shards,
        echo=True,
        telemetry_dir=args.telemetry,
    )
    print(
        f"worker {stats.worker_id} exiting ({stats.reason}): "
        f"{stats.shards} shard(s), {stats.cells} simulated cell(s), "
        f"{stats.cached_cells} served from earlier attempts, "
        f"{stats.abandoned} abandoned lease(s)"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .dist import merge_caches

    _cells, report = merge_caches(
        args.inputs,
        out_path=args.out,
        check_versions=not args.no_version_check,
        upgrade_legacy=args.upgrade_legacy,
    )
    print(report.describe())
    print(f"wrote {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: REINFORCE a backfill policy, save the checkpoint."""
    import json

    from .dist import LocalBroker
    from .learn import TrainConfig, resolve_store, train

    config = TrainConfig(
        log=args.log,
        n_jobs=args.n_jobs,
        replicas=args.replicas,
        train_seeds=tuple(args.train_seeds) if args.train_seeds else None,
        epochs=args.epochs,
        episodes=args.episodes,
        lr=args.lr,
        temperature=args.temperature,
        seed=args.seed,
        predictor=args.predictor,
        corrector=args.corrector,
        min_prediction=args.min_prediction,
        tau=args.tau,
    )
    telemetry, tele_dir = _telemetry_from_args(args, "train")
    try:
        result = train(
            config, broker=LocalBroker(workers=args.workers), telemetry=telemetry
        )
    finally:
        _finish_telemetry(telemetry, tele_dir)
    path = result.checkpoint.save(args.store)
    if args.json:
        print(
            json.dumps(
                {
                    "digest": result.digest,
                    "path": path,
                    "best_epoch": result.best_epoch,
                    "train_avebsld": result.train_avebsld,
                    "init_avebsld": result.init_avebsld,
                    "history": result.history,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"checkpoint : {result.digest}")
    print(f"saved to   : {path} (store: {resolve_store(args.store)})")
    print(f"train seeds: {list(config.resolved_train_seeds())}")
    print(
        f"AVEbsld    : {result.train_avebsld:.3f} trained "
        f"(init {result.init_avebsld:.3f}, best epoch {result.best_epoch})"
    )
    if result.history:
        rows = [
            (
                h["epoch"],
                f"{h['mean_return']:.2f}",
                f"{h['greedy_avebsld']:.3f}",
                f"{h['entropy']:.3f}",
                f"{h['grad_norm']:.3f}",
            )
            for h in result.history
        ]
        print(
            format_table(
                ["epoch", "mean return", "greedy AVEbsld", "entropy", "|grad|"],
                rows,
                title="Training history",
            )
        )
    print(
        f"evaluate with: repro eval --policy {result.digest} --log {args.log}"
        + (f" --store {args.store}" if args.store else "")
    )
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    """``repro eval``: leaderboard of a trained policy vs heuristics."""
    import json
    import os

    from .learn import DEFAULT_STORE_ENV, evaluate_policy
    from .workload.archive import stable_seed as _stable

    if args.store:
        # resolve the store via the environment, not the spec params, so
        # the learned cells' cache identity stays store-location-free
        os.environ[DEFAULT_STORE_ENV] = args.store
    if args.seeds:
        seeds = [int(s) for s in args.seeds]
    else:
        base = _stable(args.log) + args.holdout_offset
        seeds = [base + r for r in range(args.replicas)]
    telemetry, tele_dir = _telemetry_from_args(args, "eval")
    try:
        result = evaluate_policy(
            args.policy,
            args.log,
            seeds=seeds,
            n_jobs=args.n_jobs,
            predictor=args.predictor,
            corrector=args.corrector,
            min_prediction=args.min_prediction,
            tau=args.tau,
            baselines=args.baselines,
            cache_path=args.cache,
            workers=args.workers,
            telemetry=telemetry,
        )
    finally:
        _finish_telemetry(telemetry, tele_dir)
    board = result.leaderboard()
    if args.json:
        print(
            json.dumps(
                {
                    "policy": args.policy,
                    "log": args.log,
                    "seeds": seeds,
                    "leaderboard": [
                        {
                            "label": row.label,
                            "mean_avebsld": row.mean_score,
                            "n_cells": row.n_cells,
                            "mean_seconds": row.mean_seconds,
                        }
                        for row in board
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"policy {args.policy} on {args.log} seeds {seeds}")
    print(
        format_leaderboard(
            board, title=f"Learned vs heuristic ({args.log})"
        )
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics DIR [DIR2]``: render or diff telemetry snapshots."""
    import json

    from .obs import diff_snapshots, format_snapshots, load_snapshots
    from .obs.sinks import prom_text

    if len(args.dirs) > 2:
        raise SystemExit("metrics takes one directory, or two to diff")
    if len(args.dirs) == 2:
        baseline = load_snapshots(args.dirs[0])
        current = load_snapshots(args.dirs[1])
        if not baseline and not current:
            print(f"no metrics-*.json snapshots under {args.dirs[0]} or {args.dirs[1]}")
            return 1
        print(diff_snapshots(baseline, current))
        return 0
    snapshots = load_snapshots(args.dirs[0])
    if not snapshots:
        print(f"no metrics-*.json snapshots under {args.dirs[0]}")
        return 1
    if args.format == "prom":
        print("\n".join(prom_text(snap) for snap in snapshots))
    elif args.format == "json":
        print(json.dumps(snapshots, indent=2, sort_keys=True))
    else:
        print(format_snapshots(snapshots))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: the static invariant checker (repro.analysis)."""
    from .analysis import (
        CheckConfig,
        format_json,
        format_text,
        resolve_rules,
        run_check,
        write_frozen,
    )
    from .analysis.core import FileRule, find_root

    if args.list_rules:
        for rule in resolve_rules(None):
            kind = "file" if isinstance(rule, FileRule) else "project"
            scope = ", ".join(rule.paths)
            print(f"{rule.id}  [{kind}]  {rule.title}  ({scope})")
        return 0
    select = None
    if args.rules:
        select = tuple(
            part.strip() for part in args.rules.split(",") if part.strip()
        )
    root = find_root(args.paths[0] if args.paths else ".")
    if args.update_frozen:
        path = write_frozen(root)
        print(f"frozen digests regenerated: {path}", file=sys.stderr)
    try:
        rules = resolve_rules(select)
        findings, files = run_check(
            args.paths, root=root, config=CheckConfig(select=select)
        )
    except KeyError as exc:
        raise SystemExit(f"repro check: {exc.args[0]}") from None
    if args.json:
        print(format_json(findings, len(files), rules))
    else:
        print(format_text(findings, len(files), rules))
    return 1 if findings else 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which == "4":
        return _cmd_logs()
    if args.which == "8":
        analysis, _result, procs = analyze_predictions(n_jobs=args.n_jobs)
        rows = [
            (name, round(mae), f"{eloss:.3g}")
            for name, mae, eloss in table8_rows(analysis, procs)
        ]
        print(
            format_table(
                ["Prediction Technique", "MAE (s)", "Mean E-Loss"],
                rows,
                title="Prediction error vs E-Loss (paper Table 8)",
            )
        )
        return 0

    args.logs = list(LOG_NAMES)
    result = _campaign_from_args(args)
    if args.which == "1":
        rows = [
            (log, easy, clair, format_percent(red))
            for log, easy, clair, red in result.table1_rows()
        ]
        print(
            format_table(
                ["Log", "EASY", "EASY-Clairvoyant", "decrease"],
                rows,
                title="EASY vs clairvoyant EASY (paper Table 1)",
            )
        )
    elif args.which == "6":
        return _cmd_campaign(args)
    elif args.which == "7":
        rows = leave_one_out(result)
        consensus, folds = selection_consensus(rows)
        table = [
            (
                row.log,
                f"{row.cv_score:.1f} {format_percent(row.reduction_vs_easy)}",
                f"{row.easy_score:.1f}",
                f"{row.easypp_score:.1f} {format_percent(row.reduction_vs_easypp)}",
            )
            for row in rows
        ]
        print(
            format_table(
                ["Log", "C-V Heuristic triple", "EASY", "EASY++"],
                table,
                title="Cross-validated triple selection (paper Table 7)",
            )
        )
        vs_easy, vs_easypp = average_reductions(rows)
        print(f"\nconsensus triple: {consensus.key} (selected in {folds}/6 folds)")
        print(f"average reduction vs EASY  : {vs_easy:.0f}% (paper: 28%)")
        print(f"average reduction vs EASY++: {vs_easypp:.0f}% (paper: 11%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs import setup_logging

    setup_logging(verbosity=args.verbose)
    if args.command == "logs":
        return _cmd_logs()
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "sim":
        return _cmd_sim(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "spec":
        return _cmd_spec(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "eval":
        return _cmd_eval(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "table":
        return _cmd_table(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
