"""Prediction-quality analysis (paper Section 6.4: Table 8, Figs 4-5).

Runs the main prediction techniques on one log (the paper uses Curie)
inside the winning scheduling context and collects the submission-time
predictions, so MAE / mean E-Loss and the ECDFs of errors and predicted
values can be compared across techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..predict.loss import E_LOSS
from ..sim.results import SimulationResult
from ..workload.archive import get_trace, stable_seed
from .run import run_triple_on_trace
from .triples import HeuristicTriple

__all__ = ["PredictionAnalysis", "analyze_predictions", "DEFAULT_TECHNIQUES"]

#: The four prediction techniques of Figure 4/5, plus clairvoyance for the
#: "actual value" ECDF of Figure 5.
DEFAULT_TECHNIQUES: dict[str, str] = {
    "E-Loss Regression": "ml:sq-lin-large-area",
    "Squared Loss Regression": "ml:sq-sq-constant",
    "Requested Time": "requested",
    "AVE2": "ave2",
}


@dataclass
class PredictionAnalysis:
    """Per-technique prediction vectors on a common trace."""

    log: str
    runtimes: np.ndarray
    #: predictions[technique] = submission-time predictions, seconds.
    predictions: dict[str, np.ndarray]

    def errors(self, technique: str) -> np.ndarray:
        """Signed prediction errors f - p for one technique (Figure 4)."""
        return self.predictions[technique] - self.runtimes

    def mae(self, technique: str) -> float:
        return float(np.abs(self.errors(technique)).mean())

    def mean_eloss(self, technique: str, processors: np.ndarray) -> float:
        total = 0.0
        preds = self.predictions[technique]
        for f, p, q in zip(preds, self.runtimes, processors, strict=True):
            total += E_LOSS.value(float(f), float(p), float(q))
        return total / len(preds)


def analyze_predictions(
    log: str = "Curie",
    n_jobs: int = 2000,
    seed: int | None = None,
    techniques: dict[str, str] | None = None,
    corrector: str = "incremental",
    scheduler: str = "easy-sjbf",
) -> tuple[PredictionAnalysis, SimulationResult, np.ndarray]:
    """Run each technique on the same trace; return predictions + context.

    Returns ``(analysis, last_result, processors)`` where ``processors``
    is the per-job width vector used by the E-Loss weights.
    """
    techniques = dict(techniques or DEFAULT_TECHNIQUES)
    if seed is None:
        seed = stable_seed(log)
    trace = get_trace(log, n_jobs=n_jobs, seed=seed)
    predictions: dict[str, np.ndarray] = {}
    result: SimulationResult | None = None
    for label, predictor_key in techniques.items():
        needs_correction = predictor_key not in ("requested", "clairvoyant")
        triple = HeuristicTriple(
            predictor_key, corrector if needs_correction else None, scheduler
        )
        result = run_triple_on_trace(trace, triple)
        predictions[label] = result.initial_predictions
    assert result is not None
    analysis = PredictionAnalysis(
        log=log,
        runtimes=result.runtimes,
        predictions=predictions,
    )
    return analysis, result, result.array("processors")


def table8_rows(
    analysis: PredictionAnalysis, processors: np.ndarray
) -> list[tuple[str, float, float]]:
    """(technique, MAE, mean E-Loss) rows, AVE2 and E-Loss learning first."""
    order = [
        name
        for name in ("AVE2", "E-Loss Regression")
        if name in analysis.predictions
    ]
    order += [n for n in analysis.predictions if n not in order]
    return [
        (name, analysis.mae(name), analysis.mean_eloss(name, processors))
        for name in order
    ]
