"""Batched campaign execution: share traces and feature matrices.

The paper's campaign is a 128+2-cell matrix replayed over a handful of
workloads, so most cells differ only in their component triple while the
trace underneath is identical.  Before this module every cell paid its
own fixed cost -- regenerate (or re-parse) the trace, re-digest it,
re-derive the predictor's schedule-independent feature columns -- which
dominates small cells.  Here that cost is paid **once per trace identity
per process** and shared:

* :func:`workload_key` names a trace identity: the canonical JSON of the
  workload spec (log, n_jobs, seed, filters, processors override).  Two
  cells with equal keys replay byte-identical job streams.
* :class:`TraceBundle` is the shared, immutable artifact of one
  identity: the materialised :class:`~repro.workload.trace.Trace`, its
  content digest, and (lazily, only when an ML cell asks) the
  precomputed static feature rows of
  :func:`repro.predict.features.compute_static_features`.
* :class:`BundleCache` is a small per-process LRU of bundles whose
  digest memo survives eviction, replacing the ad-hoc digest dicts the
  campaign layer used to keep.  :func:`run_spec
  <repro.core.run.run_spec>` sources every trace through it, so the
  sharing works identically in the serial path, pool children and
  ``repro worker`` processes.
* :func:`group_cells` / :func:`plan_batches` organise a cell list into
  trace-pure groups (and bounded chunks of them) so dispatch layers can
  keep same-trace cells adjacent in one process.
* :class:`BatchRunner` streams grouped cells through the shared cell
  runner; :func:`run_batch_report` is its module-level picklable form
  for process pools.

Schedules are **byte-identical** to the unbatched path: the bundle only
changes *when* work happens (once per group instead of once per cell),
never what is computed.  Memory cost is bounded by the LRU capacity
(a few simulation-sized traces, a handful of MB).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..spec import CellSpec, WorkloadSpec, canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..workload.trace import Trace

__all__ = [
    "DEFAULT_BUNDLE_CAPACITY",
    "DEFAULT_MAX_BATCH",
    "workload_key",
    "TraceBundle",
    "BundleCache",
    "bundle_cache",
    "get_bundle",
    "clear_bundle_cache",
    "group_cells",
    "plan_batches",
    "BatchStats",
    "BatchRunner",
    "run_batch_report",
]

#: How many materialised traces one process keeps alive at once.  Grouped
#: dispatch sends same-trace cells adjacently, so even capacity 1 would
#: amortise; a little headroom also serves interleaved direct callers.
DEFAULT_BUNDLE_CAPACITY = 4

#: Ceiling on how many same-trace cells ride one pool submission.  Large
#: enough to amortise the per-process bundle build, small enough that one
#: big group still spreads over the pool.
DEFAULT_MAX_BATCH = 8


def workload_key(workload: WorkloadSpec) -> str:
    """The trace-identity key: canonical JSON of the workload spec.

    Cells whose workloads render to the same key replay byte-identical
    job streams, so their trace (and every schedule-independent artifact
    derived from it) can be shared.
    """
    return canonical_json(workload.to_obj())


class TraceBundle:
    """One materialised workload, shared read-only by a group of cells.

    Everything here is schedule-independent: the trace itself, its
    content digest, and the static feature rows.  Bundles are built by
    :class:`BundleCache` and must never be mutated -- concurrent cells
    of one group all read the same objects.
    """

    def __init__(self, workload: WorkloadSpec, trace: Trace) -> None:
        self.workload = workload
        self.key = workload_key(workload)
        self.trace = trace
        self._digest: str | None = None
        self._static_rows: dict[int, np.ndarray] | None = None

    @property
    def digest(self) -> str:
        """Content digest of the trace (lazily computed, then memoised)."""
        if self._digest is None:
            self._digest = self.trace.digest()
        return self._digest

    def static_rows(self) -> dict[int, np.ndarray]:
        """job_id -> precomputed static feature row, for ML predictors.

        Computed on first request only (non-ML groups never pay) and
        bit-identical to what :func:`repro.predict.features
        .extract_features` derives live -- the trace iterates in
        (submit_time, job_id) order, which is exactly the order SUBMIT
        events drain, so per-user request aggregates replay exactly.
        """
        if self._static_rows is None:
            from ..predict.features import compute_static_features

            self._static_rows = compute_static_features(self.trace)
        return self._static_rows


class BundleCache:
    """Bounded per-process LRU of :class:`TraceBundle` objects.

    The digest memo outlives eviction: digests are 16-hex strings the
    campaign layer asks for constantly (every cache token embeds one),
    while the trace itself is only needed when a cell actually
    simulates.
    """

    def __init__(self, capacity: int = DEFAULT_BUNDLE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"bundle cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._bundles: OrderedDict[str, TraceBundle] = OrderedDict()
        #: workload key -> trace digest, kept across bundle eviction.
        self._digests: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._bundles)

    def get(self, workload: WorkloadSpec) -> TraceBundle:
        """The (shared) bundle for a workload, materialising on miss."""
        key = workload_key(workload)
        bundle = self._bundles.get(key)
        if bundle is not None:
            self._bundles.move_to_end(key)
            self.hits += 1
            return bundle
        from .run import build_workload

        self.misses += 1
        bundle = TraceBundle(workload, build_workload(workload))
        self._bundles[key] = bundle
        while len(self._bundles) > self.capacity:
            evicted_key, evicted = self._bundles.popitem(last=False)
            if evicted._digest is not None:
                self._digests[evicted_key] = evicted._digest
        return bundle

    def digest_of(self, workload: WorkloadSpec) -> str:
        """Trace content digest for a workload (memo survives eviction)."""
        key = workload_key(workload)
        bundle = self._bundles.get(key)
        if bundle is not None:
            self._bundles.move_to_end(key)
            digest = bundle.digest
        else:
            digest = self._digests.get(key) or self.get(workload).digest
        self._digests[key] = digest
        return digest

    def clear(self) -> None:
        """Drop every bundle *and* the digest memo (cold-start state)."""
        self._bundles.clear()
        self._digests.clear()


#: The process-wide cache every execution path shares.  Pool children and
#: distributed workers each hold their own (module state is per process).
_CACHE = BundleCache()


def bundle_cache() -> BundleCache:
    """The process-global bundle cache."""
    return _CACHE


def get_bundle(workload: WorkloadSpec) -> TraceBundle:
    """Shared bundle for a workload from the process-global cache."""
    return _CACHE.get(workload)


def clear_bundle_cache() -> None:
    """Reset the process-global cache (tests / cold-cost measurement)."""
    _CACHE.clear()


def group_cells(
    cells: Sequence[CellSpec],
) -> list[tuple[str, list[CellSpec]]]:
    """Group cells by trace identity, order-preserving.

    Groups appear in first-cell order and cells keep their relative
    order inside each group, so regrouping an already group-major list
    is the identity.
    """
    groups: dict[str, list[CellSpec]] = {}
    order: list[str] = []
    for cell in cells:
        key = workload_key(cell.workload)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = []
            order.append(key)
        bucket.append(cell)
    return [(key, groups[key]) for key in order]


def plan_batches(
    cells: Sequence[CellSpec], max_batch: int = DEFAULT_MAX_BATCH
) -> list[list[CellSpec]]:
    """Trace-pure batches of at most ``max_batch`` cells.

    Every batch holds cells of exactly one trace identity, so a process
    running it materialises one bundle; groups larger than ``max_batch``
    split into several batches to keep a pool balanced.  Deterministic
    and order-preserving (group-major, campaign order within).
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    batches: list[list[CellSpec]] = []
    for _key, group in group_cells(cells):
        for start in range(0, len(group), max_batch):
            batches.append(group[start : start + max_batch])
    return batches


@dataclass
class BatchStats:
    """What one :class:`BatchRunner` invocation did."""

    cells: int = 0
    groups: int = 0
    #: bundles actually materialised (misses); groups - misses were
    #: already warm in this process.
    bundles_built: int = 0


class BatchRunner:
    """Streams a campaign's cells through the shared cell runner,
    grouped by trace identity so each group's bundle is materialised
    once and reused by every cell in it.

    Results are identical to calling :func:`repro.core.run.run_cell` per
    cell -- only the fixed per-cell cost (trace regeneration, digesting,
    static feature extraction) collapses to once per group.
    """

    def __init__(self, with_telemetry: bool = False) -> None:
        self.with_telemetry = with_telemetry
        self.stats = BatchStats()

    def run(
        self,
        cells: Sequence[CellSpec],
        on_result: Callable[[CellSpec, float, dict], None] | None = None,
    ) -> list[tuple[CellSpec, float, dict]]:
        """Run every cell; returns ``(spec, score, report)`` triples in
        group-major order.  ``on_result`` (optional) streams each triple
        as it finishes."""
        from .run import run_cell_report

        cache = bundle_cache()
        results: list[tuple[CellSpec, float, dict]] = []
        for _key, group in group_cells(cells):
            self.stats.groups += 1
            misses_before = cache.misses
            for spec in group:
                score, report = run_cell_report(
                    spec, with_telemetry=self.with_telemetry
                )
                self.stats.cells += 1
                results.append((spec, score, report))
                if on_result is not None:
                    on_result(spec, score, report)
            self.stats.bundles_built += cache.misses - misses_before
        return results


def run_batch_report(
    cells: Sequence[CellSpec], with_telemetry: bool = False
) -> list[tuple[CellSpec, float, dict]]:
    """Module-level picklable batch runner for process pools.

    One pool submission carries a whole trace-pure batch, so the child
    process pays the bundle build once and every other cell of the batch
    rides the warm cache.
    """
    return BatchRunner(with_telemetry=with_telemetry).run(cells)
