"""Plain-text rendering of the paper's tables and figures.

Everything renders to strings (not stdout) so benchmarks, the CLI and
tests can all consume the same formatting.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence

import numpy as np

from ..obs import get_logger

_log = get_logger("reporting")

__all__ = [
    "format_table",
    "format_leaderboard",
    "ascii_scatter",
    "format_percent",
    "load_progress",
    "format_progress",
    "load_progress_dir",
    "aggregate_worker_progress",
    "format_dist_progress",
]

#: scheduler family marking a leaderboard row as learned (trained
#: checkpoint behind the registry) rather than heuristic.
LEARNED_FAMILIES = ("rl-backfill",)


def format_leaderboard(
    rows: Sequence,
    title: str = "Scenario leaderboard",
    baseline: str | None = None,
) -> str:
    """Render :meth:`SpecCampaignResult.leaderboard` rows, best first.

    Each row is tagged ``learned`` or ``heuristic`` (learned = the
    scheduler is a trained-checkpoint family), so ranked comparisons of
    trained policies against the paper's triples read at a glance.
    ``baseline`` (a row label) adds a per-row percentage column relative
    to that row's mean score -- negative means better than the baseline.
    """
    base_score = None
    if baseline is not None:
        base_score = next(
            (row.mean_score for row in rows if row.label == baseline), None
        )
    table_rows = []
    for row in rows:
        kind = (
            "learned"
            if any(family in row.label for family in LEARNED_FAMILIES)
            else "heuristic"
        )
        cells = [
            row.label,
            kind,
            f"{row.mean_score:.2f}",
            str(row.n_cells),
            "cached" if row.mean_seconds is None else f"{row.mean_seconds:.2f}",
        ]
        if base_score:
            delta = (row.mean_score - base_score) / base_score * 100.0
            cells.append(f"{delta:+.0f}%")
        table_rows.append(tuple(cells))
    headers = ["Components", "kind", "mean AVEbsld", "cells", "mean s/cell"]
    if base_score:
        headers.append(f"vs {baseline}")
    return format_table(headers, table_rows, title=title)


def format_percent(value: float) -> str:
    """Render a reduction percentage the way the paper does: (28%)."""
    return f"({value:.0f}%)"


def load_progress(path: str) -> list[dict]:
    """Parse a campaign progress JSONL stream (tolerates torn tail lines).

    Lines that fail to parse, or parse to something other than an
    object, are skipped and counted -- a live writer's partial append or
    a corrupted stream must never take the reader down.
    """
    events: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1  # partial trailing write from a live campaign
                continue
            if not isinstance(event, dict):
                skipped += 1
                continue
            events.append(event)
    if skipped:
        _log.warning("skipped %d unparseable line(s) in %s", skipped, path)
    return events


def format_progress(events: Sequence[dict]) -> str:
    """Render a campaign progress stream as a human-readable report.

    Works on a finished stream or a snapshot of a live one: reports cells
    finished versus pending, per-log completion, throughput, and -- while
    the campaign is still running -- a wall-clock estimate of the
    remainder.
    """
    start = next((e for e in events if e.get("event") == "start"), None)
    cells = [e for e in events if e.get("event") == "cell"]
    end = next((e for e in events if e.get("event") == "end"), None)
    if start is None:
        return "campaign progress: no start event recorded"

    total = int(start.get("total", 0))
    cached = int(start.get("cached", 0))
    pending = int(start.get("pending", max(total - cached, 0)))
    done = len(cells)
    lines = [
        f"campaign: {total} cells ({cached} cached, {pending} to simulate)",
        f"simulated: {done}/{pending}",
    ]
    if cells:
        per_log: dict[str, int] = {}
        for cell in cells:
            per_log[cell.get("log", "?")] = per_log.get(cell.get("log", "?"), 0) + 1
        for log in start.get("logs", sorted(per_log)):
            if log in per_log:
                lines.append(f"  {log}: {per_log[log]} cells")
        elapsed = float(cells[-1].get("elapsed", 0.0))
        if elapsed > 0:
            rate = done / elapsed
            lines.append(f"throughput: {rate:.2f} simulations/s over {elapsed:.0f}s")
            if end is None and rate > 0 and done < pending:
                lines.append(f"estimated remaining: {(pending - done) / rate:.0f}s")
    if end is not None:
        lines.append(f"finished in {float(end.get('elapsed', 0.0)):.0f}s")
    return "\n".join(lines)


def load_progress_dir(directory: str) -> list[dict]:
    """Merge every ``*.jsonl`` progress stream under ``directory``.

    Used for a distributed campaign's ``queue/progress/`` directory,
    where each worker appends its own stream.  Events missing a
    ``worker`` field are tagged with their file stem so aggregation can
    still attribute them.  File order (then line order) is preserved --
    ``elapsed`` values are per-worker clocks and must not be compared
    across streams.
    """
    events: list[dict] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        stem = name[: -len(".jsonl")]
        try:
            stream = load_progress(os.path.join(directory, name))
        except OSError as exc:
            # directory expansion is racy: a worker may rotate or remove
            # its stream between listdir and open
            _log.warning("could not read progress stream %s: %s", name, exc)
            continue
        for event in stream:
            events.append(event if "worker" in event else {**event, "worker": stem})
    return events


def aggregate_worker_progress(events: Sequence[dict]) -> dict[str, dict]:
    """Fold a multi-worker event stream into per-worker summaries.

    Returns ``{worker: {"cells": int, "shards_done": int,
    "shards_abandoned": int, "claims": int, "elapsed": float,
    "status": "running"|"exited", "reason": str}}``.
    """
    workers: dict[str, dict] = {}

    def entry(worker: str) -> dict:
        return workers.setdefault(
            worker,
            {
                "cells": 0,
                "shards_done": 0,
                "shards_abandoned": 0,
                "claims": 0,
                "elapsed": 0.0,
                "status": "running",
                "reason": "",
            },
        )

    for event in events:
        worker = str(event.get("worker", "?"))
        kind = event.get("event")
        summary = entry(worker)
        summary["elapsed"] = max(
            summary["elapsed"], float(event.get("elapsed", 0.0))
        )
        if kind == "cell":
            summary["cells"] += 1
        elif kind == "claim":
            summary["claims"] += 1
        elif kind == "shard_done":
            summary["shards_done"] += 1
        elif kind == "shard_abandoned":
            summary["shards_abandoned"] += 1
        elif kind == "worker_exit":
            summary["status"] = "exited"
            summary["reason"] = str(event.get("reason", ""))
    return workers


def format_dist_progress(events: Sequence[dict]) -> str:
    """Render a distributed campaign's multi-worker progress.

    Accepts the concatenation of the coordinator's progress stream and
    the workers' streams (see :func:`load_progress_dir`); any subset
    renders sensibly, including a snapshot of a live campaign.
    """
    enqueue = next((e for e in events if e.get("event") == "enqueue"), None)
    done = next((e for e in events if e.get("event") == "dist_done"), None)
    requeues = [e for e in events if e.get("event") == "requeue"]
    failures = [e for e in events if e.get("event") == "shard_failed"]
    workers = aggregate_worker_progress(
        [e for e in events if "worker" in e]
    )

    lines: list[str] = []
    if enqueue is not None:
        lines.append(
            f"distributed campaign: {enqueue.get('shards', '?')} shard(s), "
            f"{enqueue.get('cells', '?')} cell(s) enqueued "
            f"(generation {enqueue.get('generation', '?')})"
        )
    else:
        lines.append("distributed campaign: no enqueue event recorded")
    total_cells = 0
    for worker in sorted(workers):
        summary = workers[worker]
        total_cells += summary["cells"]
        state = (
            f"exited ({summary['reason']})"
            if summary["status"] == "exited"
            else "running"
        )
        abandoned = (
            f", {summary['shards_abandoned']} abandoned"
            if summary["shards_abandoned"]
            else ""
        )
        lines.append(
            f"  {worker}: {summary['cells']} cell(s), "
            f"{summary['shards_done']}/{summary['claims']} shard(s) "
            f"done{abandoned}, {state}, {summary['elapsed']:.0f}s"
        )
    if workers:
        lines.append(f"cells simulated across workers: {total_cells}")
    if requeues:
        shards = ", ".join(sorted({str(e.get("shard")) for e in requeues}))
        lines.append(f"lease expiries re-queued: {len(requeues)} ({shards})")
    if failures:
        shards = ", ".join(sorted({str(e.get("shard")) for e in failures}))
        lines.append(f"shards FAILED (attempts exhausted): {shards}")
    if done is not None:
        merge = done.get("merge")
        lines.append(
            f"finished: {done.get('shards', '?')} shard(s)"
            + (f"; {merge}" if merge else "")
        )
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table with right-aligned numeric columns."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [f"{c:.1f}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for idx, cell in enumerate(cells):
            if idx == 0:
                out.append(cell.ljust(widths[idx]))
            else:
                out.append(cell.rjust(widths[idx]))
        return "  ".join(out)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def ascii_scatter(
    points: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
    log_scale: bool = False,
) -> str:
    """Scatter plot with one marker per series (paper Figure 3 style)."""
    all_pts = [p for series in points.values() for p in series]
    if not all_pts:
        raise ValueError("no points to plot")
    xs = np.array([p[0] for p in all_pts], dtype=float)
    ys = np.array([p[1] for p in all_pts], dtype=float)
    if log_scale:
        if xs.min() <= 0 or ys.min() <= 0:
            raise ValueError("log-scale scatter needs positive values")
        xs, ys = np.log10(xs), np.log10(ys)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    markers = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, series) in enumerate(points.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"  {marker} {name}")
        for x, y in series:
            if log_scale:
                x, y = np.log10(x), np.log10(y)
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    body = "\n".join(f"|{line}" for line in lines)
    axis = "+" + "-" * width
    out = body + "\n" + axis
    if x_label or y_label:
        scale_note = " [log10 scale]" if log_scale else ""
        out += f"\n x: {x_label}{scale_note}   y: {y_label}{scale_note}"
    return out + "\n" + "\n".join(legend)
