"""The full experimental campaign (paper Section 6.2).

For every workload log, run every heuristic triple (128 of them) plus the
two clairvoyant references -- over ``replicas`` independent synthetic
trace draws per log, since a simulation-sized synthetic subset is one
sample of a stochastic workload (the paper runs each real log once; see
DESIGN.md for the protocol difference).

The campaign runner is built for throughput and restartability:

* simulations fan out through a pluggable :class:`repro.dist.Broker`:
  the default :class:`~repro.dist.broker.LocalBroker` is a single-host
  :class:`~concurrent.futures.ProcessPoolExecutor` whose results are
  consumed as they complete; ``backend="fsqueue"`` shards the cell
  matrix onto a filesystem work queue that any number of ``repro
  worker`` processes -- on any number of hosts -- drain cooperatively
  (see :mod:`repro.dist`);
* every finished cell is appended immediately to an on-disk JSONL result
  cache keyed by (trace digest, triple key, seed, engine version), so a
  killed campaign resumes where it stopped and a finished campaign
  re-runs with **zero** simulations -- under either backend;
* progress is streamed to a JSONL file (and optionally stdout) that
  :mod:`repro.core.reporting` can render at any time.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, NamedTuple

import numpy as np

from ..metrics.slowdown import DEFAULT_TAU
from ..obs.telemetry import NOOP, Telemetry
from ..sim.engine import ENGINE_VERSION
from ..spec import CellSpec, WorkloadSpec
from ..workload.archive import LOG_NAMES, stable_seed
from .batch import bundle_cache, group_cells
from .run import run_cell_report
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.broker import Broker

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "SpecCampaignResult",
    "LeaderboardRow",
    "run_campaign",
    "run_cells",
    "trace_digest",
    "workload_digest",
    "cell_token",
    "upgrade_legacy_token",
    "CACHE_VERSION",
    "LEGACY_CACHE_VERSION",
    "ResultCache",
    "iter_cache_records",
    "parse_cache_record",
]

#: Bump when the cache record layout changes.  Engine/workload semantic
#: changes are covered separately: the cache token embeds ENGINE_VERSION
#: and the per-trace content digest; component/engine-knob changes are
#: covered by the CellSpec digest.  Version 5: spec-digest cache keys.
CACHE_VERSION = 5

#: The pre-spec token layout (positional tuple keys); rows in this
#: format are still readable -- see :func:`upgrade_legacy_token`.
LEGACY_CACHE_VERSION = 4

def trace_digest(log: str, n_jobs: int, seed: int) -> str:
    """Content digest of the synthetic trace a campaign cell runs on.

    Delegates to the per-process :class:`repro.core.batch.BundleCache`:
    the first call materialises the trace -- the **same** bundle a
    subsequent :func:`~repro.core.run.run_spec` on that workload reuses
    -- and hashes its job arrays, so generator changes or reseeding
    invalidate exactly the affected cache cells and nothing else.
    """
    return bundle_cache().digest_of(
        WorkloadSpec.make(log, n_jobs=n_jobs, seed=seed)
    )


def workload_digest(workload: WorkloadSpec) -> str:
    """Trace content digest for any workload spec.

    Backed by the shared bundle cache (digests survive bundle eviction):
    filtered or machine-resized workloads digest the trace they actually
    produce, so filter/override changes invalidate exactly their own
    cells.
    """
    return bundle_cache().digest_of(workload)


def cell_token(spec: CellSpec, trace_digest_hint: str | None = None) -> str:
    """The cache key / queue identity of one cell.

    ``v<CACHE_VERSION>|e<ENGINE_VERSION>|<log>@<trace digest>|spec:<spec digest>``

    The spec digest covers everything declarative (workload shape,
    components + params, engine knobs); the trace digest covers what the
    generator actually produced, so generator changes invalidate cells
    even though specs are unchanged.  ``trace_digest_hint`` lets callers
    that already know the trace digest (the legacy-row upgrader) skip
    regeneration.
    """
    digest = trace_digest_hint or workload_digest(spec.workload)
    return (
        f"v{CACHE_VERSION}|e{ENGINE_VERSION}|{spec.workload.log}@{digest}"
        f"|spec:{spec.digest()}"
    )


def upgrade_legacy_token(token: str) -> str | None:
    """Re-key a ``LEGACY_CACHE_VERSION`` (v4, positional-tuple) cache row.

    The v4 layout was ``v4|e<E>|<log>@<digest>|<pred>|<corr>|<sched>|
    n=..|s=..|mp=..|tau=..``.  When the row was produced by the same
    engine version and its tuple lowers onto the spec layer, the
    equivalent v5 token is returned (reusing the embedded trace digest,
    so no trace is regenerated); anything else -- other versions, other
    engines, malformed keys -- returns ``None`` and the row is ignored.
    """
    parts = token.split("|")
    if len(parts) != 10 or parts[0] != f"v{LEGACY_CACHE_VERSION}":
        return None
    if parts[1] != f"e{ENGINE_VERSION}":
        return None  # stale engine semantics must not be resurrected
    log_at_digest = parts[2]
    triple_key = "|".join(parts[3:6])
    log, sep, digest = log_at_digest.partition("@")
    if not sep or not log or not digest:
        return None
    try:
        fields = dict(part.split("=", 1) for part in parts[6:])
        spec = CellSpec.from_triple(
            log,
            triple_key,
            n_jobs=int(fields["n"]),
            seed=int(fields["s"]),
            min_prediction=float(fields["mp"]),
            tau=float(fields["tau"]),
        )
    except (KeyError, ValueError, TypeError):
        return None
    return cell_token(spec, trace_digest_hint=digest)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines the *paper* campaign's numbers.

    This is a convenience grid over the declarative spec layer: it
    expands to plain :class:`repro.spec.CellSpec` cells via
    :meth:`cell_spec`, and arbitrary scenario grids (different machine
    sizes, filtered workloads, tuned component params) come from
    experiment spec files instead (:mod:`repro.spec.grid`).
    """

    logs: tuple[str, ...] = LOG_NAMES
    n_jobs: int = 2000
    replicas: int = 3
    min_prediction: float = 60.0
    tau: float = DEFAULT_TAU

    def seeds_for(self, log: str) -> list[int]:
        base = stable_seed(log)
        return [base + r for r in range(self.replicas)]

    def cell_spec(
        self, log: str, triple: HeuristicTriple | str, seed: int
    ) -> CellSpec:
        """The fully-specified cell for one (log, triple, seed)."""
        return CellSpec.from_triple(
            log,
            triple.key if isinstance(triple, HeuristicTriple) else triple,
            n_jobs=self.n_jobs,
            seed=seed,
            min_prediction=self.min_prediction,
            tau=self.tau,
        )

    def cell_specs(
        self, triples: Sequence[HeuristicTriple]
    ) -> list[CellSpec]:
        """Every cell of this config x ``triples``, in campaign order."""
        return [
            self.cell_spec(log, triple, seed)
            for log in self.logs
            for seed in self.seeds_for(log)
            for triple in triples
        ]

    def cache_token(self, log: str, triple_key: str, seed: int) -> str:
        """Compatibility shim: the token of one legacy tuple cell."""
        return cell_token(self.cell_spec(log, triple_key, seed))


@dataclass
class CampaignResult:
    """Per-(log, triple) replica scores plus convenience aggregations."""

    config: CampaignConfig
    #: scores[log][triple_key] = list of per-replica AVEbsld values.
    scores: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------
    def mean(self, log: str, triple: HeuristicTriple | str) -> float:
        key = triple.key if isinstance(triple, HeuristicTriple) else triple
        values = self.scores[log][key]
        return float(np.mean(values))

    def triple_keys(self, include_references: bool = False) -> list[str]:
        keys = [t.key for t in campaign_triples()]
        if include_references:
            keys += [t.key for t in reference_triples()]
        return keys

    def score_vector(self, log: str, keys: list[str]) -> np.ndarray:
        """Mean AVEbsld of the given triples on one log, in order."""
        return np.array([self.mean(log, k) for k in keys])

    # -- the paper's aggregations ---------------------------------------------
    def learning_range(self, log: str, scheduler: str) -> tuple[float, float]:
        """(best, worst) mean AVEbsld over the 60 ML triples of a variant."""
        values = [
            self.mean(log, t)
            for t in campaign_triples()
            if t.uses_learning and t.scheduler == scheduler
        ]
        return (float(min(values)), float(max(values)))

    def best_triple(
        self, logs: tuple[str, ...] | None = None, learning_only: bool = False
    ) -> HeuristicTriple:
        """Triple minimising the summed mean AVEbsld over ``logs``."""
        logs = logs or self.config.logs
        candidates = [
            t for t in campaign_triples() if (t.uses_learning or not learning_only)
        ]
        sums = [sum(self.mean(log, t) for log in logs) for t in candidates]
        return candidates[int(np.argmin(sums))]

    def table1_rows(self) -> list[tuple[str, float, float, float]]:
        """(log, EASY, EASY-Clairvoyant, reduction%) per log."""
        rows = []
        clairvoyant = HeuristicTriple("clairvoyant", None, "easy")
        for log in self.config.logs:
            easy = self.mean(log, EASY_TRIPLE)
            clair = self.mean(log, clairvoyant)
            rows.append((log, easy, clair, (easy - clair) / easy * 100.0))
        return rows

    def table6_rows(
        self,
    ) -> list[tuple[str, float, float, float, float, tuple, tuple]]:
        """Per log: clairvoyant FCFS/SJBF, EASY, EASY++, learning ranges."""
        rows = []
        clair_fcfs = HeuristicTriple("clairvoyant", None, "easy")
        clair_sjbf = HeuristicTriple("clairvoyant", None, "easy-sjbf")
        for log in self.config.logs:
            rows.append(
                (
                    log,
                    self.mean(log, clair_fcfs),
                    self.mean(log, clair_sjbf),
                    self.mean(log, EASY_TRIPLE),
                    self.mean(log, EASYPP_TRIPLE),
                    self.learning_range(log, "easy"),
                    self.learning_range(log, "easy-sjbf"),
                )
            )
        return rows


def parse_cache_record(line: str) -> tuple[str, float] | None:
    """One JSONL cache line -> ``(token, value)``, or ``None`` if torn.

    The single parser for the cache record format -- the warm-load path
    (:class:`ResultCache`), the distributed merge
    (:mod:`repro.dist.merge`), the coordinator's incremental result
    tailer and the worker's proven-cell harvest all route through it, so
    tolerance rules cannot drift between them.
    """
    try:
        rec = json.loads(line)
        return str(rec["token"]), float(rec["value"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def iter_cache_records(path: str) -> tuple[list[tuple[int, str, float]], int]:
    """Read one JSONL cell cache: ``([(lineno, token, value), ...], torn)``.

    Unparseable lines (torn writes, including a truncated final line)
    are skipped and counted, never fatal.
    """
    records: list[tuple[int, str, float]] = []
    torn = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            parsed = parse_cache_record(line)
            if parsed is None:
                torn += 1
                continue
            records.append((lineno, parsed[0], parsed[1]))
    return records, torn


class ResultCache:
    """Append-only JSONL cache of simulation outcomes.

    One line per finished cell: ``{"token": ..., "value": ...}``.  Every
    :meth:`put` is written through immediately, so an interrupted
    campaign loses at most the cells still in flight; corrupt or partial
    trailing lines (a crash mid-write) are skipped on load.

    Pre-redesign (``LEGACY_CACHE_VERSION``) rows are upgraded in memory
    on load -- same engine version, tuple key lowered to its spec digest
    -- so a warm cache written before the spec redesign still serves its
    cells without one re-simulation.  :attr:`legacy_rows` counts them;
    the file itself is never rewritten.
    """

    def __init__(self, path: str | None) -> None:
        self.path = path
        self._data: dict[str, float] = {}
        self._fh: IO[str] | None = None
        self.legacy_rows = 0
        legacy_prefix = f"v{LEGACY_CACHE_VERSION}|"
        if path and os.path.exists(path):
            records, _torn = iter_cache_records(path)
            for _lineno, token, value in records:
                self._data[token] = value
                if token.startswith(legacy_prefix):
                    upgraded = upgrade_legacy_token(token)
                    if upgraded is not None:
                        # serve the old row under its new identity too
                        # (same engine version, so the value still holds)
                        self._data.setdefault(upgraded, value)
                        self.legacy_rows += 1

    def __len__(self) -> int:
        return len(self._data)

    def get(self, token: str) -> float | None:
        return self._data.get(token)

    def put(self, token: str, value: float) -> None:
        self._data[token] = value
        if self.path:
            if self._fh is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                needs_newline = False
                if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                    with open(self.path, "rb") as fh:
                        fh.seek(-1, os.SEEK_END)
                        needs_newline = fh.read(1) != b"\n"
                self._fh = open(self.path, "a", encoding="utf-8")
                if needs_newline:
                    # a torn tail line (crash mid-write) must not swallow
                    # the first record we append after it
                    self._fh.write("\n")
            self._fh.write(json.dumps({"token": token, "value": value}) + "\n")
            self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Backwards-compatible alias (the seed's flat-JSON cache class name).
_DiskCache = ResultCache


class ProgressLog:
    """JSONL progress stream consumed by :mod:`repro.core.reporting`.

    The one writer behind every progress stream: the campaign
    coordinator uses it bare, distributed workers
    (:mod:`repro.dist.worker`) tag each event with their ``worker`` id
    and append (their stream outlives claim/restart cycles) -- so the
    streams :func:`repro.core.reporting.format_dist_progress` merges can
    never drift in format.
    """

    def __init__(
        self,
        path: str | None,
        echo: bool = False,
        worker: str | None = None,
        append: bool = False,
    ) -> None:
        self.path = path
        self.echo = echo
        self.worker = worker
        self._fh: IO[str] | None = None
        self._t0 = time.monotonic()
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "a" if append else "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self.worker is not None:
            event = {**event, "worker": self.worker}
        event = {**event, "elapsed": round(time.monotonic() - self._t0, 3)}
        if self._fh is not None:
            self._fh.write(json.dumps(event) + "\n")
            self._fh.flush()
        if self.echo:
            detail = {
                k: v for k, v in event.items() if k not in ("event", "worker")
            }
            print(f"[{self.worker or 'campaign'}] {event.get('event')}: {detail}")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Backwards-compatible alias (pre-dist private name).
_ProgressLog = ProgressLog


def _run_one(
    spec: CellSpec, with_telemetry: bool = False
) -> tuple[CellSpec, float, dict]:
    """Worker-side shim (must be module-level for pickling)."""
    score, report = run_cell_report(spec, with_telemetry=with_telemetry)
    return (spec, score, report)


class LeaderboardRow(NamedTuple):
    """One :meth:`SpecCampaignResult.leaderboard` line."""

    label: str
    mean_score: float
    n_cells: int
    #: mean wall seconds per simulated cell; None when every cell of the
    #: label came from the cache (nothing was timed this run).
    mean_seconds: float | None


@dataclass
class SpecCampaignResult:
    """Scores of an arbitrary cell-spec campaign, keyed by spec digest."""

    cells: list[CellSpec]
    #: spec digest -> AVEbsld.
    scores: dict[str, float] = field(default_factory=dict)
    #: spec digest -> wall seconds, for cells simulated *this* run
    #: (cache hits cost nothing and are absent).
    durations: dict[str, float] = field(default_factory=dict)

    def score(self, spec: CellSpec) -> float:
        return self.scores[spec.digest()]

    def rows(self) -> list[tuple[CellSpec, float]]:
        """(cell, score) pairs in campaign order."""
        return [(cell, self.scores[cell.digest()]) for cell in self.cells]

    def leaderboard(self) -> list[LeaderboardRow]:
        """Mean score per component-label, best first -- the generic
        report for grids that aren't the paper's triple matrix.  Rows
        carry cell counts and mean per-cell wall time (None for labels
        served entirely from the cache)."""
        by_label: dict[str, list[float]] = {}
        times: dict[str, list[float]] = {}
        for cell, score in self.rows():
            by_label.setdefault(cell.label, []).append(score)
            seconds = self.durations.get(cell.digest())
            if seconds is not None:
                times.setdefault(cell.label, []).append(seconds)
        rows = [
            LeaderboardRow(
                label=label,
                mean_score=float(np.mean(values)),
                n_cells=len(values),
                mean_seconds=(
                    float(np.mean(times[label])) if label in times else None
                ),
            )
            for label, values in by_label.items()
        ]
        return sorted(rows, key=lambda row: row.mean_score)

    def to_campaign_result(self) -> CampaignResult | None:
        """Reshape into the paper-table :class:`CampaignResult` when the
        cells form a rectangular legacy grid (every cell lowers to a
        triple key, plain workloads, uniform n_jobs/engine knobs, the
        same triples and seed count on every log); ``None`` otherwise.
        """
        if not self.cells:
            return None
        by_log: dict[str, dict[str, dict[int, float]]] = {}
        seeds_by_log: dict[str, list[int]] = {}
        knobs = set()
        for cell in self.cells:
            key = cell.triple_key
            if key is None or not cell.workload.is_plain:
                return None
            knobs.add((cell.workload.n_jobs, cell.min_prediction, cell.tau))
            log = cell.workload.log
            seed = cell.workload.seed
            by_log.setdefault(log, {}).setdefault(key, {})[seed] = self.scores[
                cell.digest()
            ]
            if seed not in seeds_by_log.setdefault(log, []):
                seeds_by_log[log].append(seed)
        if len(knobs) != 1:
            return None
        n_jobs, min_prediction, tau = next(iter(knobs))
        triple_sets = {frozenset(keys) for keys in by_log.values()}
        replica_counts = {len(seeds) for seeds in seeds_by_log.values()}
        if len(triple_sets) != 1 or len(replica_counts) != 1:
            return None
        config = CampaignConfig(
            logs=tuple(by_log),
            n_jobs=n_jobs,
            replicas=next(iter(replica_counts)),
            min_prediction=min_prediction,
            tau=tau,
        )
        result = CampaignResult(config=config)
        for log, per_triple in by_log.items():
            result.scores[log] = {}
            for key, per_seed in per_triple.items():
                if len(per_seed) != config.replicas:
                    return None  # ragged grid
                result.scores[log][key] = [
                    per_seed[seed] for seed in seeds_by_log[log]
                ]
        return result


def run_cells(
    cells: Sequence[CellSpec],
    cache_path: str | None = None,
    workers: int | None = None,
    progress: bool = False,
    progress_path: str | None = None,
    backend: Broker | str = "local",
    queue_dir: str | None = None,
    telemetry: Telemetry | None = None,
) -> SpecCampaignResult:
    """Run (or warm-load) an arbitrary list of cell specs.

    The generic campaign entry point behind ``repro campaign --spec``:
    expansion of an experiment file hands its cells here, the cache and
    every dispatch backend key them by spec digest, and the result comes
    back digest-indexed (reshape with
    :meth:`SpecCampaignResult.to_campaign_result` for the paper tables).

    ``telemetry`` collects campaign/dispatch counters and, under the
    local broker, the engine/predictor metrics merged back from every
    simulated cell.
    """
    from ..dist.broker import resolve_backend

    cells = list(cells)
    broker = resolve_backend(backend, workers=workers, queue_dir=queue_dir)
    cache = ResultCache(cache_path)
    plog = _ProgressLog(progress_path)
    durations: dict[str, float] = {}
    try:
        scores = _execute_cells(
            cells, cache, plog, broker, progress,
            telemetry=telemetry, durations=durations,
        )
    finally:
        # a failing worker must not leak the cache/progress handles; every
        # cell finished before the failure is already flushed to disk
        plog.close()
        cache.close()
    return SpecCampaignResult(cells=cells, scores=scores, durations=durations)


def run_campaign(
    config: CampaignConfig,
    cache_path: str | None = None,
    workers: int | None = None,
    include_references: bool = True,
    progress: bool = False,
    progress_path: str | None = None,
    triples: Sequence[HeuristicTriple] | None = None,
    backend: Broker | str = "local",
    queue_dir: str | None = None,
    telemetry: Telemetry | None = None,
) -> CampaignResult:
    """Run (or load from cache) the paper campaign for ``config``.

    ``triples`` restricts the campaign to a subset (default: the paper's
    128 plus, with ``include_references``, the 2 clairvoyant references).
    ``progress_path`` streams JSONL progress events; ``progress=True``
    additionally prints a line every 50 finished simulations.

    ``backend`` selects the dispatch strategy: ``"local"`` (process pool
    on this host, honouring ``workers``), ``"fsqueue"`` (coordinate
    external ``repro worker`` processes over the shared ``queue_dir``),
    or any ready :class:`repro.dist.Broker` instance.
    """
    if triples is None:
        triples = campaign_triples()
        if include_references:
            triples = triples + reference_triples()
    else:
        triples = list(triples)
    from ..dist.broker import resolve_backend

    broker = resolve_backend(backend, workers=workers, queue_dir=queue_dir)
    cache = ResultCache(cache_path)
    plog = _ProgressLog(progress_path)
    try:
        return _run_campaign_inner(
            config, cache, plog, triples, broker, progress, telemetry
        )
    finally:
        plog.close()
        cache.close()


def _run_campaign_inner(
    config: CampaignConfig,
    cache: ResultCache,
    plog: _ProgressLog,
    triples: list[HeuristicTriple],
    broker: Broker,
    progress: bool,
    telemetry: Telemetry | None = None,
) -> CampaignResult:
    wanted = config.cell_specs(triples)
    scores = _execute_cells(
        cells=wanted,
        cache=cache,
        plog=plog,
        broker=broker,
        progress=progress,
        telemetry=telemetry,
        start_extra={
            "logs": list(config.logs),
            "n_jobs": config.n_jobs,
            "replicas": config.replicas,
        },
    )
    result = CampaignResult(config=config)
    for log in config.logs:
        result.scores[log] = {}
        for triple in triples:
            values = []
            for seed in config.seeds_for(log):
                spec = config.cell_spec(log, triple, seed)
                values.append(scores[spec.digest()])
            result.scores[log][triple.key] = values
    return result


def _execute_cells(
    cells: Sequence[CellSpec],
    cache: ResultCache,
    plog: _ProgressLog,
    broker: Broker,
    progress: bool,
    start_extra: dict | None = None,
    telemetry: Telemetry | None = None,
    durations: dict[str, float] | None = None,
) -> dict[str, float]:
    """The shared execution core: warm-load from the cache, dispatch the
    remainder through the broker, return spec-digest -> score."""
    tele = telemetry if telemetry is not None else NOOP
    tokens = {spec.digest(): cell_token(spec) for spec in cells}
    scores: dict[str, float] = {}
    pending: list[CellSpec] = []
    for spec in cells:
        value = cache.get(tokens[spec.digest()])
        if value is None:
            pending.append(spec)
        else:
            scores[spec.digest()] = value
    if tele.enabled:
        tele.inc("campaign.cells.total", len(cells))
        tele.inc("campaign.cells.cached", len(cells) - len(pending))
    plog.emit(
        {
            "event": "start",
            "total": len(cells),
            "cached": len(cells) - len(pending),
            "pending": len(pending),
            **(start_extra or {}),
        }
    )
    if pending:
        # group-major dispatch order: same-trace cells land adjacently so
        # every backend (serial loop, pool batches, fsqueue shards) shares
        # one materialised trace bundle per group instead of paying the
        # per-cell fixed cost
        pending = [spec for _key, group in group_cells(pending) for spec in group]
        done = 0

        def record(
            spec: CellSpec, score: float, seconds: float | None = None
        ) -> None:
            nonlocal done
            done += 1
            scores[spec.digest()] = score
            cache.put(tokens[spec.digest()], score)
            if seconds is not None and durations is not None:
                durations[spec.digest()] = seconds
            event = {
                "event": "cell",
                "log": spec.workload.log,
                "triple": spec.label,
                "seed": spec.workload.seed,
                "avebsld": score,
                "done": done,
                "total": len(pending),
            }
            if seconds is not None:
                event["seconds"] = round(seconds, 4)
            plog.emit(event)
            if progress and done % 50 == 0:
                print(f"  campaign: {done}/{len(pending)} simulations done")

        with tele.span("campaign.dispatch", pending=len(pending)):
            broker.dispatch(pending, record, emit=plog.emit, telemetry=telemetry)
        cache.flush()
    missing = [spec for spec in cells if spec.digest() not in scores]
    if missing:
        raise RuntimeError(
            f"campaign cache missing {tokens[missing[0].digest()]}"
        )
    plog.emit({"event": "end", "total": len(cells)})
    return scores
