"""The full experimental campaign (paper Section 6.2).

For every workload log, run every heuristic triple (128 of them) plus the
two clairvoyant references -- over ``replicas`` independent synthetic
trace draws per log, since a simulation-sized synthetic subset is one
sample of a stochastic workload (the paper runs each real log once; see
DESIGN.md for the protocol difference).

The campaign runner is built for throughput and restartability:

* simulations fan out through a pluggable :class:`repro.dist.Broker`:
  the default :class:`~repro.dist.broker.LocalBroker` is a single-host
  :class:`~concurrent.futures.ProcessPoolExecutor` whose results are
  consumed as they complete; ``backend="fsqueue"`` shards the cell
  matrix onto a filesystem work queue that any number of ``repro
  worker`` processes -- on any number of hosts -- drain cooperatively
  (see :mod:`repro.dist`);
* every finished cell is appended immediately to an on-disk JSONL result
  cache keyed by (trace digest, triple key, seed, engine version), so a
  killed campaign resumes where it stopped and a finished campaign
  re-runs with **zero** simulations -- under either backend;
* progress is streamed to a JSONL file (and optionally stdout) that
  :mod:`repro.core.reporting` can render at any time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Sequence

import numpy as np

from ..metrics.slowdown import DEFAULT_TAU
from ..sim.engine import ENGINE_VERSION
from ..workload.archive import LOG_NAMES, get_trace, stable_seed
from .run import run_cell
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.broker import Broker

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "trace_digest",
    "CACHE_VERSION",
    "ResultCache",
    "iter_cache_records",
    "parse_cache_record",
]

#: Bump when the cache record layout changes.  Engine/workload semantic
#: changes are covered separately: the cache token embeds ENGINE_VERSION
#: and the per-trace content digest.
CACHE_VERSION = 4

#: memoised (log, n_jobs, seed) -> 16-hex digest of the generated trace.
_DIGEST_MEMO: dict[tuple[str, int, int], str] = {}


def trace_digest(log: str, n_jobs: int, seed: int) -> str:
    """Content digest of the synthetic trace a campaign cell runs on.

    Memoised per process: the first call generates the trace (the same
    deterministic generation the worker will repeat) and hashes its job
    arrays, so generator changes or reseeding invalidate exactly the
    affected cache cells and nothing else.
    """
    key = (log, n_jobs, seed)
    digest = _DIGEST_MEMO.get(key)
    if digest is None:
        digest = get_trace(log, n_jobs=n_jobs, seed=seed).digest()
        _DIGEST_MEMO[key] = digest
    return digest


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's numbers."""

    logs: tuple[str, ...] = LOG_NAMES
    n_jobs: int = 2000
    replicas: int = 3
    min_prediction: float = 60.0
    tau: float = DEFAULT_TAU

    def seeds_for(self, log: str) -> list[int]:
        base = stable_seed(log)
        return [base + r for r in range(self.replicas)]

    def cache_token(self, log: str, triple_key: str, seed: int) -> str:
        digest = trace_digest(log, self.n_jobs, seed)
        return (
            f"v{CACHE_VERSION}|e{ENGINE_VERSION}|{log}@{digest}|{triple_key}"
            f"|n={self.n_jobs}|s={seed}"
            f"|mp={self.min_prediction:g}|tau={self.tau:g}"
        )


@dataclass
class CampaignResult:
    """Per-(log, triple) replica scores plus convenience aggregations."""

    config: CampaignConfig
    #: scores[log][triple_key] = list of per-replica AVEbsld values.
    scores: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------
    def mean(self, log: str, triple: HeuristicTriple | str) -> float:
        key = triple.key if isinstance(triple, HeuristicTriple) else triple
        values = self.scores[log][key]
        return float(np.mean(values))

    def triple_keys(self, include_references: bool = False) -> list[str]:
        keys = [t.key for t in campaign_triples()]
        if include_references:
            keys += [t.key for t in reference_triples()]
        return keys

    def score_vector(self, log: str, keys: list[str]) -> np.ndarray:
        """Mean AVEbsld of the given triples on one log, in order."""
        return np.array([self.mean(log, k) for k in keys])

    # -- the paper's aggregations ---------------------------------------------
    def learning_range(self, log: str, scheduler: str) -> tuple[float, float]:
        """(best, worst) mean AVEbsld over the 60 ML triples of a variant."""
        values = [
            self.mean(log, t)
            for t in campaign_triples()
            if t.uses_learning and t.scheduler == scheduler
        ]
        return (float(min(values)), float(max(values)))

    def best_triple(
        self, logs: tuple[str, ...] | None = None, learning_only: bool = False
    ) -> HeuristicTriple:
        """Triple minimising the summed mean AVEbsld over ``logs``."""
        logs = logs or self.config.logs
        candidates = [
            t for t in campaign_triples() if (t.uses_learning or not learning_only)
        ]
        sums = [sum(self.mean(log, t) for log in logs) for t in candidates]
        return candidates[int(np.argmin(sums))]

    def table1_rows(self) -> list[tuple[str, float, float, float]]:
        """(log, EASY, EASY-Clairvoyant, reduction%) per log."""
        rows = []
        clairvoyant = HeuristicTriple("clairvoyant", None, "easy")
        for log in self.config.logs:
            easy = self.mean(log, EASY_TRIPLE)
            clair = self.mean(log, clairvoyant)
            rows.append((log, easy, clair, (easy - clair) / easy * 100.0))
        return rows

    def table6_rows(
        self,
    ) -> list[tuple[str, float, float, float, float, tuple, tuple]]:
        """Per log: clairvoyant FCFS/SJBF, EASY, EASY++, learning ranges."""
        rows = []
        clair_fcfs = HeuristicTriple("clairvoyant", None, "easy")
        clair_sjbf = HeuristicTriple("clairvoyant", None, "easy-sjbf")
        for log in self.config.logs:
            rows.append(
                (
                    log,
                    self.mean(log, clair_fcfs),
                    self.mean(log, clair_sjbf),
                    self.mean(log, EASY_TRIPLE),
                    self.mean(log, EASYPP_TRIPLE),
                    self.learning_range(log, "easy"),
                    self.learning_range(log, "easy-sjbf"),
                )
            )
        return rows


def parse_cache_record(line: str) -> tuple[str, float] | None:
    """One JSONL cache line -> ``(token, value)``, or ``None`` if torn.

    The single parser for the cache record format -- the warm-load path
    (:class:`ResultCache`), the distributed merge
    (:mod:`repro.dist.merge`), the coordinator's incremental result
    tailer and the worker's proven-cell harvest all route through it, so
    tolerance rules cannot drift between them.
    """
    try:
        rec = json.loads(line)
        return str(rec["token"]), float(rec["value"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def iter_cache_records(path: str) -> tuple[list[tuple[int, str, float]], int]:
    """Read one JSONL cell cache: ``([(lineno, token, value), ...], torn)``.

    Unparseable lines (torn writes, including a truncated final line)
    are skipped and counted, never fatal.
    """
    records: list[tuple[int, str, float]] = []
    torn = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            parsed = parse_cache_record(line)
            if parsed is None:
                torn += 1
                continue
            records.append((lineno, parsed[0], parsed[1]))
    return records, torn


class ResultCache:
    """Append-only JSONL cache of simulation outcomes.

    One line per finished cell: ``{"token": ..., "value": ...}``.  Every
    :meth:`put` is written through immediately, so an interrupted
    campaign loses at most the cells still in flight; corrupt or partial
    trailing lines (a crash mid-write) are skipped on load.
    """

    def __init__(self, path: str | None) -> None:
        self.path = path
        self._data: dict[str, float] = {}
        self._fh: IO[str] | None = None
        if path and os.path.exists(path):
            records, _torn = iter_cache_records(path)
            for _lineno, token, value in records:
                self._data[token] = value

    def __len__(self) -> int:
        return len(self._data)

    def get(self, token: str) -> float | None:
        return self._data.get(token)

    def put(self, token: str, value: float) -> None:
        self._data[token] = value
        if self.path:
            if self._fh is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                needs_newline = False
                if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                    with open(self.path, "rb") as fh:
                        fh.seek(-1, os.SEEK_END)
                        needs_newline = fh.read(1) != b"\n"
                self._fh = open(self.path, "a", encoding="utf-8")
                if needs_newline:
                    # a torn tail line (crash mid-write) must not swallow
                    # the first record we append after it
                    self._fh.write("\n")
            self._fh.write(json.dumps({"token": token, "value": value}) + "\n")
            self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Backwards-compatible alias (the seed's flat-JSON cache class name).
_DiskCache = ResultCache


class ProgressLog:
    """JSONL progress stream consumed by :mod:`repro.core.reporting`.

    The one writer behind every progress stream: the campaign
    coordinator uses it bare, distributed workers
    (:mod:`repro.dist.worker`) tag each event with their ``worker`` id
    and append (their stream outlives claim/restart cycles) -- so the
    streams :func:`repro.core.reporting.format_dist_progress` merges can
    never drift in format.
    """

    def __init__(
        self,
        path: str | None,
        echo: bool = False,
        worker: str | None = None,
        append: bool = False,
    ) -> None:
        self.path = path
        self.echo = echo
        self.worker = worker
        self._fh: IO[str] | None = None
        self._t0 = time.monotonic()
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "a" if append else "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self.worker is not None:
            event = {**event, "worker": self.worker}
        event = {**event, "elapsed": round(time.monotonic() - self._t0, 3)}
        if self._fh is not None:
            self._fh.write(json.dumps(event) + "\n")
            self._fh.flush()
        if self.echo:
            detail = {
                k: v for k, v in event.items() if k not in ("event", "worker")
            }
            print(f"[{self.worker or 'campaign'}] {event.get('event')}: {detail}")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Backwards-compatible alias (pre-dist private name).
_ProgressLog = ProgressLog


def _run_one(args: tuple) -> tuple[str, str, int, float]:
    """Worker-side shim (must be module-level for pickling)."""
    log, triple_key, n_jobs, seed, min_prediction, tau = args
    score = run_cell(
        log, triple_key, n_jobs=n_jobs, seed=seed, min_prediction=min_prediction, tau=tau
    )
    return (log, triple_key, seed, score)


def run_campaign(
    config: CampaignConfig,
    cache_path: str | None = None,
    workers: int | None = None,
    include_references: bool = True,
    progress: bool = False,
    progress_path: str | None = None,
    triples: Sequence[HeuristicTriple] | None = None,
    backend: "Broker | str" = "local",
    queue_dir: str | None = None,
) -> CampaignResult:
    """Run (or load from cache) the campaign for ``config``.

    ``triples`` restricts the campaign to a subset (default: the paper's
    128 plus, with ``include_references``, the 2 clairvoyant references).
    ``progress_path`` streams JSONL progress events; ``progress=True``
    additionally prints a line every 50 finished simulations.

    ``backend`` selects the dispatch strategy: ``"local"`` (process pool
    on this host, honouring ``workers``), ``"fsqueue"`` (coordinate
    external ``repro worker`` processes over the shared ``queue_dir``),
    or any ready :class:`repro.dist.Broker` instance.
    """
    if triples is None:
        triples = campaign_triples()
        if include_references:
            triples = triples + reference_triples()
    else:
        triples = list(triples)
    from ..dist.broker import resolve_backend

    broker = resolve_backend(backend, workers=workers, queue_dir=queue_dir)
    cache = ResultCache(cache_path)
    plog = _ProgressLog(progress_path)
    try:
        return _run_campaign_inner(
            config, cache, plog, triples, broker, progress
        )
    finally:
        # a failing worker must not leak the cache/progress handles; every
        # cell finished before the failure is already flushed to disk
        plog.close()
        cache.close()


def _run_campaign_inner(
    config: CampaignConfig,
    cache: ResultCache,
    plog: _ProgressLog,
    triples: list[HeuristicTriple],
    broker: "Broker",
    progress: bool,
) -> CampaignResult:
    wanted: list[tuple[str, str, int]] = []
    for log in config.logs:
        for seed in config.seeds_for(log):
            for triple in triples:
                wanted.append((log, triple.key, seed))

    pending = [
        (log, key, seed)
        for (log, key, seed) in wanted
        if cache.get(config.cache_token(log, key, seed)) is None
    ]
    plog.emit(
        {
            "event": "start",
            "total": len(wanted),
            "cached": len(wanted) - len(pending),
            "pending": len(pending),
            "logs": list(config.logs),
            "n_jobs": config.n_jobs,
            "replicas": config.replicas,
        }
    )
    if pending:
        done = 0

        def record(log: str, key: str, seed: int, score: float) -> None:
            nonlocal done
            done += 1
            cache.put(config.cache_token(log, key, seed), score)
            plog.emit(
                {
                    "event": "cell",
                    "log": log,
                    "triple": key,
                    "seed": seed,
                    "avebsld": score,
                    "done": done,
                    "total": len(pending),
                }
            )
            if progress and done % 50 == 0:
                print(f"  campaign: {done}/{len(pending)} simulations done")

        broker.dispatch(config, pending, record, emit=plog.emit)
        cache.flush()

    result = CampaignResult(config=config)
    for log in config.logs:
        result.scores[log] = {}
        for triple in triples:
            values = []
            for seed in config.seeds_for(log):
                token = config.cache_token(log, triple.key, seed)
                value = cache.get(token)
                if value is None:
                    raise RuntimeError(f"campaign cache missing {token}")
                values.append(value)
            result.scores[log][triple.key] = values
    plog.emit({"event": "end", "total": len(wanted)})
    return result
