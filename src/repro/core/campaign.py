"""The full experimental campaign (paper Section 6.2).

For every workload log, run every heuristic triple (128 of them) plus the
two clairvoyant references -- over ``replicas`` independent synthetic
trace draws per log, since a simulation-sized synthetic subset is one
sample of a stochastic workload (the paper runs each real log once; see
DESIGN.md for the protocol difference).

Results are cached on disk keyed by every input that affects the number,
so re-running a campaign (e.g. from several benchmarks) costs nothing.
Simulations are independent and dispatch across processes.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..metrics.slowdown import DEFAULT_TAU
from ..workload.archive import LOG_NAMES, stable_seed
from .run import run_triple
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign", "CACHE_VERSION"]

#: Bump when the workload generator or engine semantics change, so stale
#: cached simulation outcomes are never reused.
CACHE_VERSION = 3


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's numbers."""

    logs: tuple[str, ...] = LOG_NAMES
    n_jobs: int = 2000
    replicas: int = 3
    min_prediction: float = 60.0
    tau: float = DEFAULT_TAU

    def seeds_for(self, log: str) -> list[int]:
        base = stable_seed(log)
        return [base + r for r in range(self.replicas)]

    def cache_token(self, log: str, triple_key: str, seed: int) -> str:
        return (
            f"v{CACHE_VERSION}|{log}|{triple_key}|n={self.n_jobs}|s={seed}"
            f"|mp={self.min_prediction:g}|tau={self.tau:g}"
        )


@dataclass
class CampaignResult:
    """Per-(log, triple) replica scores plus convenience aggregations."""

    config: CampaignConfig
    #: scores[log][triple_key] = list of per-replica AVEbsld values.
    scores: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------
    def mean(self, log: str, triple: HeuristicTriple | str) -> float:
        key = triple.key if isinstance(triple, HeuristicTriple) else triple
        values = self.scores[log][key]
        return float(np.mean(values))

    def triple_keys(self, include_references: bool = False) -> list[str]:
        keys = [t.key for t in campaign_triples()]
        if include_references:
            keys += [t.key for t in reference_triples()]
        return keys

    def score_vector(self, log: str, keys: list[str]) -> np.ndarray:
        """Mean AVEbsld of the given triples on one log, in order."""
        return np.array([self.mean(log, k) for k in keys])

    # -- the paper's aggregations ---------------------------------------------
    def learning_range(self, log: str, scheduler: str) -> tuple[float, float]:
        """(best, worst) mean AVEbsld over the 60 ML triples of a variant."""
        values = [
            self.mean(log, t)
            for t in campaign_triples()
            if t.uses_learning and t.scheduler == scheduler
        ]
        return (float(min(values)), float(max(values)))

    def best_triple(
        self, logs: tuple[str, ...] | None = None, learning_only: bool = False
    ) -> HeuristicTriple:
        """Triple minimising the summed mean AVEbsld over ``logs``."""
        logs = logs or self.config.logs
        candidates = [
            t for t in campaign_triples() if (t.uses_learning or not learning_only)
        ]
        sums = [sum(self.mean(log, t) for log in logs) for t in candidates]
        return candidates[int(np.argmin(sums))]

    def table1_rows(self) -> list[tuple[str, float, float, float]]:
        """(log, EASY, EASY-Clairvoyant, reduction%) per log."""
        rows = []
        clairvoyant = HeuristicTriple("clairvoyant", None, "easy")
        for log in self.config.logs:
            easy = self.mean(log, EASY_TRIPLE)
            clair = self.mean(log, clairvoyant)
            rows.append((log, easy, clair, (easy - clair) / easy * 100.0))
        return rows

    def table6_rows(
        self,
    ) -> list[tuple[str, float, float, float, float, tuple, tuple]]:
        """Per log: clairvoyant FCFS/SJBF, EASY, EASY++, learning ranges."""
        rows = []
        clair_fcfs = HeuristicTriple("clairvoyant", None, "easy")
        clair_sjbf = HeuristicTriple("clairvoyant", None, "easy-sjbf")
        for log in self.config.logs:
            rows.append(
                (
                    log,
                    self.mean(log, clair_fcfs),
                    self.mean(log, clair_sjbf),
                    self.mean(log, EASY_TRIPLE),
                    self.mean(log, EASYPP_TRIPLE),
                    self.learning_range(log, "easy"),
                    self.learning_range(log, "easy-sjbf"),
                )
            )
        return rows


class _DiskCache:
    """Flat JSON cache of simulation outcomes."""

    def __init__(self, path: str | None) -> None:
        self.path = path
        self._data: dict[str, float] = {}
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    self._data = {str(k): float(v) for k, v in json.load(fh).items()}
            except (json.JSONDecodeError, OSError, ValueError):
                self._data = {}

    def get(self, token: str) -> float | None:
        return self._data.get(token)

    def put(self, token: str, value: float) -> None:
        self._data[token] = value

    def flush(self) -> None:
        if not self.path:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._data, fh)
        os.replace(tmp, self.path)


def _run_one(args: tuple) -> tuple[str, str, int, float]:
    """Worker-side shim (must be module-level for pickling)."""
    log, triple_key, n_jobs, seed, min_prediction, tau = args
    outcome = run_triple(
        log, triple_key, n_jobs=n_jobs, seed=seed, min_prediction=min_prediction, tau=tau
    )
    return (log, triple_key, seed, outcome.avebsld)


def run_campaign(
    config: CampaignConfig,
    cache_path: str | None = None,
    workers: int | None = None,
    include_references: bool = True,
    progress: bool = False,
) -> CampaignResult:
    """Run (or load from cache) the full campaign for ``config``."""
    triples = campaign_triples()
    if include_references:
        triples = triples + reference_triples()
    cache = _DiskCache(cache_path)

    wanted: list[tuple[str, str, int]] = []
    for log in config.logs:
        for seed in config.seeds_for(log):
            for triple in triples:
                wanted.append((log, triple.key, seed))

    pending = [
        (log, key, seed)
        for (log, key, seed) in wanted
        if cache.get(config.cache_token(log, key, seed)) is None
    ]
    if pending:
        jobs = [
            (log, key, config.n_jobs, seed, config.min_prediction, config.tau)
            for (log, key, seed) in pending
        ]
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = max(1, min(cpu - 1, 16))
        if workers <= 1 or len(jobs) <= 2:
            completed = map(_run_one, jobs)
            for idx, (log, key, seed, score) in enumerate(completed):
                cache.put(config.cache_token(log, key, seed), score)
                if progress and (idx + 1) % 50 == 0:
                    print(f"  campaign: {idx + 1}/{len(jobs)} simulations done")
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for idx, (log, key, seed, score) in enumerate(
                    pool.map(_run_one, jobs, chunksize=4)
                ):
                    cache.put(config.cache_token(log, key, seed), score)
                    if progress and (idx + 1) % 50 == 0:
                        print(f"  campaign: {idx + 1}/{len(jobs)} simulations done")
        cache.flush()

    result = CampaignResult(config=config)
    for log in config.logs:
        result.scores[log] = {}
        for triple in triples:
            values = []
            for seed in config.seeds_for(log):
                token = config.cache_token(log, triple.key, seed)
                value = cache.get(token)
                if value is None:
                    raise RuntimeError(f"campaign cache missing {token}")
                values.append(value)
            result.scores[log][triple.key] = values
    return result
