"""Single-simulation entry point used by the campaign runner.

Kept as a module-level function with a picklable signature so
:class:`concurrent.futures.ProcessPoolExecutor` can dispatch it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.slowdown import DEFAULT_TAU, average_bounded_slowdown
from ..sim.engine import Simulator
from ..sim.results import SimulationResult
from ..workload.archive import get_trace, stable_seed
from ..workload.trace import Trace
from .triples import HeuristicTriple

__all__ = ["RunOutcome", "run_triple_on_trace", "run_triple", "run_cell"]


@dataclass(frozen=True)
class RunOutcome:
    """Small, picklable summary of one simulation."""

    log: str
    triple_key: str
    seed: int
    avebsld: float
    utilization: float
    corrections: int
    max_queue_length: int

    @property
    def triple(self) -> HeuristicTriple:
        return HeuristicTriple.from_key(self.triple_key)


def run_triple_on_trace(
    trace: Trace,
    triple: HeuristicTriple,
    min_prediction: float = 60.0,
    tau: float = DEFAULT_TAU,
) -> SimulationResult:
    """Run one triple on an existing trace and return the full result."""
    scheduler, predictor, corrector = triple.build()
    simulator = Simulator(
        trace, scheduler, predictor, corrector, min_prediction=min_prediction
    )
    return simulator.run()


def run_triple(
    log: str,
    triple_key: str,
    n_jobs: int,
    seed: int | None = None,
    min_prediction: float = 60.0,
    tau: float = DEFAULT_TAU,
) -> RunOutcome:
    """Synthesise (or load) the log's trace and run one triple on it.

    Deterministic: the same arguments always produce the same outcome.
    """
    if seed is None:
        seed = stable_seed(log)
    trace = get_trace(log, n_jobs=n_jobs, seed=seed)
    triple = HeuristicTriple.from_key(triple_key)
    scheduler, predictor, corrector = triple.build()
    simulator = Simulator(
        trace, scheduler, predictor, corrector, min_prediction=min_prediction
    )
    result = simulator.run()
    return RunOutcome(
        log=log,
        triple_key=triple_key,
        seed=seed,
        avebsld=average_bounded_slowdown(result, tau),
        utilization=result.utilization(),
        corrections=result.total_corrections(),
        max_queue_length=simulator.stats.max_queue_length,
    )


def run_cell(
    log: str,
    triple_key: str,
    n_jobs: int,
    seed: int,
    min_prediction: float = 60.0,
    tau: float = DEFAULT_TAU,
) -> float:
    """One campaign cell -> its AVEbsld score.

    The single-cell execution primitive shared by the local process-pool
    fan-out (:mod:`repro.core.campaign`) and the distributed worker loop
    (:mod:`repro.dist.worker`).  Module-level and picklable so any
    executor can dispatch it; deterministic in its arguments.
    """
    outcome = run_triple(
        log,
        triple_key,
        n_jobs=n_jobs,
        seed=seed,
        min_prediction=min_prediction,
        tau=tau,
    )
    return outcome.avebsld
