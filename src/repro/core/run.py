"""Single-simulation entry points used by the campaign runner.

The primitive is now spec-shaped: :func:`run_spec` (and its score-only
form :func:`run_cell`) takes one :class:`repro.spec.CellSpec` -- the
declarative description that also keys the cache and identifies cells on
the distributed queue -- so every execution path (local pool, fsqueue
worker, CLI one-offs) consumes the same object it is keyed by.  The
legacy positional helpers (:func:`run_triple`) lower to specs.

Kept as module-level functions with picklable signatures so
:class:`concurrent.futures.ProcessPoolExecutor` can dispatch them.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from ..metrics.slowdown import DEFAULT_TAU, average_bounded_slowdown
from ..obs.telemetry import Telemetry
from ..sim.results import SimulationResult
from ..sim.session import SimSession
from ..spec import CellSpec, WorkloadSpec, filter_registry
from ..workload.archive import get_trace, stable_seed
from ..workload.trace import Trace
from .batch import TraceBundle, get_bundle
from .triples import HeuristicTriple

__all__ = [
    "RunOutcome",
    "build_workload",
    "run_spec",
    "run_spec_result",
    "run_cell",
    "run_cell_report",
    "run_components_on_trace",
    "run_triple_on_trace",
    "run_triple",
]


@dataclass(frozen=True)
class RunOutcome:
    """Small, picklable summary of one simulation."""

    log: str
    triple_key: str
    seed: int
    avebsld: float
    utilization: float
    corrections: int
    max_queue_length: int
    #: content digest of the spec that produced this outcome ("" for
    #: outcomes built by pre-spec callers).
    spec_digest: str = ""

    @property
    def triple(self) -> HeuristicTriple:
        return HeuristicTriple.from_key(self.triple_key)


def build_workload(workload: WorkloadSpec) -> Trace:
    """Materialise a workload spec: synthesise (or load) the base trace,
    apply its filters in order, then any machine-size override.

    A ``processors`` override that leaves jobs wider than the new
    machine is a :class:`ValueError` (add a ``max-width`` filter to
    shrink the workload first) -- never a silent drop.
    """
    trace = get_trace(workload.log, n_jobs=workload.n_jobs, seed=workload.seed)
    registry = filter_registry()
    for filter_spec in workload.filters:
        trace = registry.build(filter_spec)(trace)
    if workload.processors is not None:
        try:
            trace = Trace(
                trace.jobs,
                processors=workload.processors,
                name=f"{trace.name}/m{workload.processors}",
                unix_start_time=trace.unix_start_time,
            )
        except ValueError as exc:
            raise ValueError(
                f"processors override {workload.processors} is too small for "
                f"workload {workload.log!r}: {exc} (add a "
                f'{{"name": "max-width", "params": {{"processors": '
                f"{workload.processors}}}}} filter to shrink it)"
            ) from exc
    return trace


def _bind_static(predictor: object, bundle: TraceBundle) -> None:
    """Hand the bundle's precomputed static feature rows to predictors
    that can use them (duck-typed: only ML predictors expose the hook).
    """
    binder = getattr(predictor, "bind_static_features", None)
    if binder is not None:
        binder(bundle.static_rows())


def run_spec(spec: CellSpec, telemetry: Telemetry | None = None) -> RunOutcome:
    """Run one fully-specified cell.  Deterministic in the spec.

    ``telemetry`` (optional) receives the engine/predictor counters of
    the run plus the cell's wall/build time split; passing one never
    changes the schedule (instrumentation is observation-only).
    """
    tele = telemetry
    t0 = perf_counter() if tele is not None and tele.enabled else 0.0
    # traces come from the shared per-process bundle cache: same-trace
    # cells of a batched campaign pay the materialisation once
    bundle = get_bundle(spec.workload)
    trace = bundle.trace
    scheduler, predictor, corrector = spec.build_components()
    _bind_static(predictor, bundle)
    session = SimSession(
        trace.processors,
        scheduler,
        predictor,
        corrector,
        min_prediction=spec.min_prediction,
        trace_name=trace.name,
        telemetry=tele,
    )
    if tele is not None and tele.enabled:
        tele.inc("engine.time.build.seconds", perf_counter() - t0)
        with tele.span(
            "engine.cell",
            log=spec.workload.log,
            label=spec.label,
            seed=spec.workload.seed,
        ):
            session.feed(trace)
            session.drain()
        tele.inc("engine.cells")
        tele.inc("engine.time.wall.seconds", perf_counter() - t0)
    else:
        session.feed(trace)
        session.drain()
    result = session.result()
    return RunOutcome(
        log=spec.workload.log,
        triple_key=spec.label,
        seed=spec.workload.seed,
        avebsld=average_bounded_slowdown(result, spec.tau),
        utilization=result.utilization(),
        corrections=result.total_corrections(),
        max_queue_length=session.stats.max_queue_length,
        spec_digest=spec.digest(),
    )


def run_spec_result(spec: CellSpec) -> SimulationResult:
    """Run one cell and return the full per-job :class:`SimulationResult`.

    The analysis-friendly sibling of :func:`run_spec`: same declarative
    input and the same schedule, but instead of collapsing to a scored
    :class:`RunOutcome` it hands back the complete result (per-job
    starts, predictions, corrections) for plotting, metrics and
    timelines.  Deterministic in the spec.
    """
    bundle = get_bundle(spec.workload)
    trace = bundle.trace
    scheduler, predictor, corrector = spec.build_components()
    _bind_static(predictor, bundle)
    session = SimSession(
        trace.processors,
        scheduler,
        predictor,
        corrector,
        min_prediction=spec.min_prediction,
        trace_name=trace.name,
    )
    session.feed(trace)
    session.drain()
    return session.result()


def run_cell(spec: CellSpec) -> float:
    """One campaign cell -> its AVEbsld score.

    The single-cell execution primitive shared by the local process-pool
    fan-out (:mod:`repro.core.campaign`) and the distributed worker loop
    (:mod:`repro.dist.worker`).  Module-level and picklable so any
    executor can dispatch it; deterministic in its argument.
    """
    return run_spec(spec).avebsld


def run_cell_report(
    spec: CellSpec, with_telemetry: bool = False
) -> tuple[float, dict]:
    """:func:`run_cell` plus a picklable sidecar report.

    The report always carries ``seconds`` (cell wall time); with
    ``with_telemetry`` it also carries ``telemetry`` -- the snapshot of
    a cell-local registry, ready for the coordinator process to fold in
    with :meth:`repro.obs.telemetry.Telemetry.merge_snapshot`.  Pool
    executors ship this dict home instead of a live registry because
    worker processes share no memory with the coordinator.
    """
    tele = Telemetry(component="cell") if with_telemetry else None
    t0 = perf_counter()
    outcome = run_spec(spec, telemetry=tele)
    report: dict = {"seconds": perf_counter() - t0}
    if tele is not None:
        report["telemetry"] = tele.snapshot()
    return outcome.avebsld, report


def run_components_on_trace(
    trace: Trace,
    predictor: str | dict,
    corrector: str | dict | None,
    scheduler: str | dict,
    min_prediction: float = 60.0,
) -> SimulationResult:
    """Run a registry-spelled component triple on an existing trace.

    Components are anything the spec registries accept -- a family name
    (``"ave2"``, ``"easy-sjbf"``, ``"ml:sq-lin-large-area"``) or a
    parameterized mapping (``{"name": "rl-backfill", "params":
    {"policy": digest}}``) -- so pre-built traces (filtered, SWF-loaded,
    hand-crafted) run through the exact component stack that spec files
    and campaign cells use.  ``corrector=None`` (or ``"none"``) runs
    uncorrected.
    """
    from ..spec import corrector_registry, predictor_registry, scheduler_registry

    built_corrector = (
        None
        if corrector in (None, "none")
        else corrector_registry().build(corrector_registry().normalize(corrector))
    )
    session = SimSession(
        trace.processors,
        scheduler_registry().build(scheduler_registry().normalize(scheduler)),
        predictor_registry().build(predictor_registry().normalize(predictor)),
        built_corrector,
        min_prediction=min_prediction,
        trace_name=trace.name,
    )
    session.feed(trace)
    session.drain()
    return session.result()


def run_triple_on_trace(
    trace: Trace,
    triple: HeuristicTriple,
    min_prediction: float = 60.0,
) -> SimulationResult:
    """Run one triple on an existing trace and return the full result.

    (No ``tau`` parameter: this returns the raw per-job result, and the
    bounded-slowdown threshold only enters when a caller aggregates it.)
    """
    scheduler, predictor, corrector = triple.build()
    session = SimSession(
        trace.processors,
        scheduler,
        predictor,
        corrector,
        min_prediction=min_prediction,
        trace_name=trace.name,
    )
    session.feed(trace)
    session.drain()
    return session.result()


def run_triple(
    log: str,
    triple_key: str,
    n_jobs: int,
    seed: int | None = None,
    min_prediction: float = 60.0,
    tau: float = DEFAULT_TAU,
    telemetry: Telemetry | None = None,
) -> RunOutcome:
    """Legacy positional entry point; lowers to :func:`run_spec`.

    Deterministic: the same arguments always produce the same outcome
    (an omitted ``seed`` resolves to ``stable_seed(log)``).
    """
    if seed is None:
        seed = stable_seed(log)
    spec = CellSpec.from_triple(
        log,
        triple_key,
        n_jobs=n_jobs,
        seed=seed,
        min_prediction=min_prediction,
        tau=tau,
    )
    outcome = run_spec(spec, telemetry=telemetry)
    # reports expect the legacy key spelling here, not the spec label
    return RunOutcome(
        log=outcome.log,
        triple_key=triple_key,
        seed=outcome.seed,
        avebsld=outcome.avebsld,
        utilization=outcome.utilization,
        corrections=outcome.corrections,
        max_queue_length=outcome.max_queue_length,
        spec_digest=outcome.spec_digest,
    )
