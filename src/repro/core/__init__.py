"""Experiment orchestration: triples, campaign, cross-validation, reports."""

from .campaign import CampaignConfig, CampaignResult, run_campaign
from .crossval import (
    CrossValidationRow,
    average_reductions,
    leave_one_out,
    selection_consensus,
)
from .prediction_analysis import (
    DEFAULT_TECHNIQUES,
    PredictionAnalysis,
    analyze_predictions,
    table8_rows,
)
from .reporting import ascii_scatter, format_percent, format_table
from .sensitivity import SweepPoint, sweep_estimate_quality, sweep_offered_load
from .run import RunOutcome, run_triple, run_triple_on_trace
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    SJBF_REQUESTED_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "CrossValidationRow",
    "average_reductions",
    "leave_one_out",
    "selection_consensus",
    "DEFAULT_TECHNIQUES",
    "PredictionAnalysis",
    "analyze_predictions",
    "table8_rows",
    "ascii_scatter",
    "format_percent",
    "format_table",
    "SweepPoint",
    "sweep_estimate_quality",
    "sweep_offered_load",
    "RunOutcome",
    "run_triple",
    "run_triple_on_trace",
    "EASY_TRIPLE",
    "EASYPP_TRIPLE",
    "ELOSS_TRIPLE",
    "SJBF_REQUESTED_TRIPLE",
    "HeuristicTriple",
    "campaign_triples",
    "reference_triples",
]
