"""Experiment orchestration: triples, campaign, cross-validation, reports."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    ResultCache,
    run_campaign,
    trace_digest,
)
from .crossval import (
    CrossValidationRow,
    average_reductions,
    leave_one_out,
    selection_consensus,
)
from .prediction_analysis import (
    DEFAULT_TECHNIQUES,
    PredictionAnalysis,
    analyze_predictions,
    table8_rows,
)
from .reporting import (
    ascii_scatter,
    format_percent,
    format_progress,
    format_table,
    load_progress,
)
from .sensitivity import SweepPoint, sweep_estimate_quality, sweep_offered_load
from .run import RunOutcome, run_triple, run_triple_on_trace
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    SJBF_REQUESTED_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ResultCache",
    "run_campaign",
    "trace_digest",
    "CrossValidationRow",
    "average_reductions",
    "leave_one_out",
    "selection_consensus",
    "DEFAULT_TECHNIQUES",
    "PredictionAnalysis",
    "analyze_predictions",
    "table8_rows",
    "ascii_scatter",
    "format_percent",
    "format_progress",
    "format_table",
    "load_progress",
    "SweepPoint",
    "sweep_estimate_quality",
    "sweep_offered_load",
    "RunOutcome",
    "run_triple",
    "run_triple_on_trace",
    "EASY_TRIPLE",
    "EASYPP_TRIPLE",
    "ELOSS_TRIPLE",
    "SJBF_REQUESTED_TRIPLE",
    "HeuristicTriple",
    "campaign_triples",
    "reference_triples",
]
