"""Experiment orchestration: triples, campaign, cross-validation, reports."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    ResultCache,
    run_campaign,
    trace_digest,
)
from .crossval import (
    CrossValidationRow,
    average_reductions,
    leave_one_out,
    selection_consensus,
)
from .prediction_analysis import (
    DEFAULT_TECHNIQUES,
    PredictionAnalysis,
    analyze_predictions,
    table8_rows,
)
from .reporting import (
    aggregate_worker_progress,
    ascii_scatter,
    format_dist_progress,
    format_percent,
    format_progress,
    format_table,
    load_progress,
    load_progress_dir,
)
from .sensitivity import SweepPoint, sweep_estimate_quality, sweep_offered_load
from .run import RunOutcome, run_cell, run_triple, run_triple_on_trace
from .triples import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    SJBF_REQUESTED_TRIPLE,
    HeuristicTriple,
    campaign_triples,
    reference_triples,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ResultCache",
    "run_campaign",
    "trace_digest",
    "CrossValidationRow",
    "average_reductions",
    "leave_one_out",
    "selection_consensus",
    "DEFAULT_TECHNIQUES",
    "PredictionAnalysis",
    "analyze_predictions",
    "table8_rows",
    "aggregate_worker_progress",
    "ascii_scatter",
    "format_dist_progress",
    "format_percent",
    "format_progress",
    "format_table",
    "load_progress",
    "load_progress_dir",
    "SweepPoint",
    "sweep_estimate_quality",
    "sweep_offered_load",
    "RunOutcome",
    "run_cell",
    "run_triple",
    "run_triple_on_trace",
    "EASY_TRIPLE",
    "EASYPP_TRIPLE",
    "ELOSS_TRIPLE",
    "SJBF_REQUESTED_TRIPLE",
    "HeuristicTriple",
    "campaign_triples",
    "reference_triples",
]
