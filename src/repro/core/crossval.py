"""Leave-one-out triple selection (paper Section 6.3.3, Table 7).

For each workload log, the best heuristic triple is chosen on the *other*
five logs (the one minimising their summed AVEbsld) and evaluated on the
held-out log.  The paper finds the same triple selected in (almost) every
fold -- the E-Loss / Incremental / EASY-SJBF combination -- and reports
its AVEbsld against EASY and EASY++.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .campaign import CampaignResult
from .triples import EASY_TRIPLE, EASYPP_TRIPLE, HeuristicTriple

__all__ = ["CrossValidationRow", "leave_one_out", "selection_consensus"]


@dataclass(frozen=True)
class CrossValidationRow:
    """One fold of the leave-one-out evaluation."""

    log: str
    selected: HeuristicTriple
    cv_score: float  # AVEbsld of the selected triple on the held-out log
    easy_score: float
    easypp_score: float

    @property
    def reduction_vs_easy(self) -> float:
        """Percent AVEbsld reduction vs EASY (paper's parenthesised value)."""
        return (self.easy_score - self.cv_score) / self.easy_score * 100.0

    @property
    def reduction_vs_easypp(self) -> float:
        return (self.easypp_score - self.cv_score) / self.easypp_score * 100.0


def leave_one_out(result: CampaignResult) -> list[CrossValidationRow]:
    """Table 7: per-log cross-validated triple and its scores."""
    logs = result.config.logs
    if len(logs) < 2:
        raise ValueError("leave-one-out needs at least two logs")
    rows: list[CrossValidationRow] = []
    for held_out in logs:
        training = tuple(log for log in logs if log != held_out)
        selected = result.best_triple(logs=training)
        rows.append(
            CrossValidationRow(
                log=held_out,
                selected=selected,
                cv_score=result.mean(held_out, selected),
                easy_score=result.mean(held_out, EASY_TRIPLE),
                easypp_score=result.mean(held_out, EASYPP_TRIPLE),
            )
        )
    return rows


def selection_consensus(rows: list[CrossValidationRow]) -> tuple[HeuristicTriple, int]:
    """The modal selected triple and how many folds chose it.

    The paper reports the same triple selected in every fold but one.
    """
    if not rows:
        raise ValueError("no cross-validation rows")
    counts: dict[str, int] = {}
    for row in rows:
        counts[row.selected.key] = counts.get(row.selected.key, 0) + 1
    best_key = max(counts, key=lambda k: counts[k])
    return HeuristicTriple.from_key(best_key), counts[best_key]


def average_reductions(rows: list[CrossValidationRow]) -> tuple[float, float]:
    """(mean % reduction vs EASY, mean % reduction vs EASY++).

    The paper's headline numbers are 28% and 11%.
    """
    if not rows:
        raise ValueError("no cross-validation rows")
    vs_easy = float(np.mean([r.reduction_vs_easy for r in rows]))
    vs_easypp = float(np.mean([r.reduction_vs_easypp for r in rows]))
    return vs_easy, vs_easypp
