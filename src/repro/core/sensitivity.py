"""Sensitivity analyses: how results respond to workload knobs.

The paper evaluates on fixed production logs; with a synthetic substrate
we can additionally *sweep* the workload parameters and check how robust
each scheduling approach is to, e.g., offered load or user-estimate
quality.  These sweeps back the ablation benchmarks and give downstream
users a way to place their own system on the response curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..metrics.slowdown import average_bounded_slowdown
from ..workload.archive import ARCHIVE, stable_seed
from ..workload.synthetic import WorkloadModel, synthesize
from .run import run_triple_on_trace
from .triples import HeuristicTriple

__all__ = ["SweepPoint", "sweep_offered_load", "sweep_estimate_quality"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity sweep."""

    knob: str
    value: float
    triple_key: str
    avebsld: float


def _evaluate(
    model: WorkloadModel,
    triples: list[HeuristicTriple],
    knob: str,
    value: float,
    seeds: list[int],
) -> list[SweepPoint]:
    points = []
    for triple in triples:
        scores = []
        for seed in seeds:
            trace = synthesize(model, seed=seed)
            result = run_triple_on_trace(trace, triple)
            scores.append(average_bounded_slowdown(result))
        points.append(
            SweepPoint(
                knob=knob,
                value=value,
                triple_key=triple.key,
                avebsld=float(np.mean(scores)),
            )
        )
    return points


def sweep_offered_load(
    triples: list[HeuristicTriple],
    log: str = "KTH-SP2",
    loads: tuple[float, ...] = (0.7, 0.8, 0.9),
    n_jobs: int = 1500,
    replicas: int = 2,
) -> list[SweepPoint]:
    """AVEbsld of each triple as the offered load rises.

    Every approach degrades super-linearly with load; the gap between
    prediction-based triples and EASY should *grow* with load, because
    backfilling decisions matter more on a tighter machine.
    """
    base = ARCHIVE[log].model.resized(n_jobs)
    seeds = [stable_seed(log) + r for r in range(replicas)]
    points: list[SweepPoint] = []
    for load in loads:
        model = replace(base, offered_load=load)
        points.extend(_evaluate(model, triples, "offered_load", load, seeds))
    return points


def sweep_estimate_quality(
    triples: list[HeuristicTriple],
    log: str = "KTH-SP2",
    margin_scales: tuple[float, ...] = (1.0, 2.0, 4.0),
    n_jobs: int = 1500,
    replicas: int = 2,
) -> list[SweepPoint]:
    """AVEbsld of each triple as user estimates get worse.

    ``margin_scales`` multiplies the population's over-estimation margin
    range.  Requested-time-driven EASY should degrade as estimates
    worsen, while clairvoyant and learned triples should be insensitive
    (that insensitivity is the paper's motivation in Section 2.2).
    """
    base = ARCHIVE[log].model.resized(n_jobs)
    seeds = [stable_seed(log) + r for r in range(replicas)]
    points: list[SweepPoint] = []
    for scale in margin_scales:
        lo, hi = base.estimate_margin_range
        model = replace(base, estimate_margin_range=(lo * scale, hi * scale))
        points.extend(_evaluate(model, triples, "margin_scale", scale, seeds))
    return points
