"""Heuristic triples: (prediction, correction, backfilling) combinations.

The paper's campaign (Section 6.2) evaluates every combination of

* prediction technique: Requested Time, AVE2, and the 20 machine-learned
  loss configurations (Table 5) -- plus Clairvoyant as reference;
* correction mechanism: Requested Time, Incremental, Recursive Doubling
  (only for predictors that can under-predict);
* backfilling variant: EASY and EASY-SJBF.

That yields exactly 128 triples per log (2 + 6 + 120), plus 2 clairvoyant
references, matching the paper's "128 simulations per workload log".

Named instances:

* ``EASY_TRIPLE``      -- Requested Time + no correction + EASY: the
  standard EASY backfilling algorithm;
* ``EASYPP_TRIPLE``    -- AVE2 + Incremental + EASY-SJBF: EASY++
  (Tsafrir et al.);
* ``ELOSS_TRIPLE``     -- E-Loss learning + Incremental + EASY-SJBF: the
  paper's winning triple (Section 6.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..correct import Corrector, make_corrector
from ..predict import Predictor, all_loss_specs, make_predictor
from ..sched import Scheduler, make_scheduler

__all__ = [
    "HeuristicTriple",
    "campaign_triples",
    "reference_triples",
    "EASY_TRIPLE",
    "EASYPP_TRIPLE",
    "ELOSS_TRIPLE",
    "SJBF_REQUESTED_TRIPLE",
]


@dataclass(frozen=True)
class HeuristicTriple:
    """One (prediction, correction, backfilling) combination.

    Kept as a thin compatibility wrapper over the declarative spec
    layer: component names here are the legacy string shorthands, and
    :meth:`to_cell_components` /
    :meth:`repro.spec.CellSpec.from_triple` lower them onto the
    parameterized registry (:mod:`repro.spec`), which is the actual
    source of truth for construction and cache identity.
    """

    predictor: str
    corrector: str | None
    scheduler: str

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``ml:sq-lin-large-area|incremental|easy-sjbf``."""
        return f"{self.predictor}|{self.corrector or 'none'}|{self.scheduler}"

    @classmethod
    def from_key(cls, key: str) -> HeuristicTriple:
        parts = key.split("|")
        if len(parts) != 3 or not all(parts):
            raise ValueError(
                f"malformed triple key {key!r}: need three non-empty "
                f"'|'-separated components (predictor|corrector|scheduler, "
                f"with 'none' for no corrector)"
            )
        predictor, corrector, scheduler = parts
        return cls(
            predictor=predictor,
            corrector=None if corrector == "none" else corrector,
            scheduler=scheduler,
        )

    def to_cell_components(self):
        """Normalized ``(predictor, corrector, scheduler)`` component
        specs -- the lowering of this legacy triple onto the unified
        registry (see :mod:`repro.spec`)."""
        from ..spec import corrector_registry, predictor_registry, scheduler_registry

        return (
            predictor_registry().normalize(self.predictor),
            corrector_registry().normalize(self.corrector) if self.corrector else None,
            scheduler_registry().normalize(self.scheduler),
        )

    def build(self) -> tuple[Scheduler, Predictor, Corrector | None]:
        """Fresh component instances (one simulation's worth of state)."""
        scheduler = make_scheduler(self.scheduler)
        predictor = make_predictor(self.predictor)
        corrector = make_corrector(self.corrector) if self.corrector else None
        return scheduler, predictor, corrector

    @property
    def uses_learning(self) -> bool:
        return self.predictor.startswith("ml:")

    @property
    def is_clairvoyant(self) -> bool:
        return self.predictor == "clairvoyant"

    def describe(self) -> str:
        """Human-readable description for reports."""
        if self == EASY_TRIPLE:
            return "EASY (standard)"
        if self == EASYPP_TRIPLE:
            return "EASY++ (Tsafrir et al.)"
        if self == ELOSS_TRIPLE:
            return "E-Loss learning + Incremental + EASY-SJBF (paper's winner)"
        return self.key


#: Standard EASY: user estimates, no correction needed, FCFS backfill order.
EASY_TRIPLE = HeuristicTriple("requested", None, "easy")

#: EASY with SJBF order but still user estimates.
SJBF_REQUESTED_TRIPLE = HeuristicTriple("requested", None, "easy-sjbf")

#: EASY++ of Tsafrir et al.: AVE2 prediction, incremental correction, SJBF.
EASYPP_TRIPLE = HeuristicTriple("ave2", "incremental", "easy-sjbf")

#: The paper's cross-validation winner (Eq. 3 loss).
ELOSS_TRIPLE = HeuristicTriple("ml:sq-lin-large-area", "incremental", "easy-sjbf")

_CORRECTORS = ("requested", "incremental", "doubling")
_SCHEDULERS = ("easy", "easy-sjbf")


def campaign_triples() -> list[HeuristicTriple]:
    """The 128 evaluated triples, in a fixed deterministic order."""
    triples: list[HeuristicTriple] = []
    for scheduler in _SCHEDULERS:
        triples.append(HeuristicTriple("requested", None, scheduler))
    for corrector in _CORRECTORS:
        for scheduler in _SCHEDULERS:
            triples.append(HeuristicTriple("ave2", corrector, scheduler))
    for spec in all_loss_specs():
        for corrector in _CORRECTORS:
            for scheduler in _SCHEDULERS:
                triples.append(
                    HeuristicTriple(f"ml:{spec.key}", corrector, scheduler)
                )
    if len(triples) != 128:
        raise AssertionError(f"campaign must have 128 triples, got {len(triples)}")
    return triples


def reference_triples() -> list[HeuristicTriple]:
    """Clairvoyant upper-bound references (reported, not competing)."""
    return [HeuristicTriple("clairvoyant", None, s) for s in _SCHEDULERS]
