"""The invariant-checker framework: findings, rules, suppressions, the checker.

``repro.analysis`` is a rule-based static analyzer over Python ASTs that
enforces the repo's *semantic* contracts -- determinism of the engine
paths, cache-identity completeness, durability of the distributed queue
-- at lint time, before any trace has to hit the violation dynamically.

The moving parts:

* :class:`Finding` -- one violation: rule id, file, position, message.
* :class:`Rule` -- base of :class:`FileRule` (runs per matching file
  against its AST) and :class:`ProjectRule` (runs once per check over
  the repository; digest and cross-file consistency checks).
* a registry -- rules are singletons registered by stable id via
  :func:`register`; ids never get reused, so suppression comments and
  CI configurations stay meaningful across versions.
* path scopes -- every rule declares the repo-relative ``fnmatch``
  patterns it polices (overridable per :class:`CheckConfig`), because
  the contracts are *regional*: wall-clock reads are fine in the
  coordinator but forbidden in the engine.
* suppressions -- ``# repro: noqa[RULE001]`` on the offending line (or
  bare ``# repro: noqa`` for all rules; ``# repro: noqa-file[RULE001]``
  anywhere in the file for the whole file).

Run everything with :func:`run_check`; render results with
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "Rule",
    "FileRule",
    "ProjectRule",
    "FileContext",
    "ProjectContext",
    "CheckConfig",
    "register",
    "all_rules",
    "get_rule",
    "resolve_rules",
    "find_root",
    "collect_files",
    "run_check",
]

_NOQA_LINE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_NOQA_FILE = re.compile(r"#\s*repro:\s*noqa-file(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str  # repo-relative, posix separators
    line: int
    col: int
    rule: str
    message: str

    def to_obj(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _Suppressions:
    """Per-file ``# repro: noqa`` state, parsed once from the source."""

    def __init__(self, lines: list[str]) -> None:
        self.by_line: dict[int, set[str] | None] = {}  # None == all rules
        self.whole_file: set[str] | None | bool = False  # False == none
        for lineno, text in enumerate(lines, start=1):
            if "repro:" not in text:
                continue
            m = _NOQA_FILE.search(text)
            if m:
                ids = _parse_id_list(m.group(1))
                if ids is None:
                    self.whole_file = None
                elif self.whole_file is False:
                    self.whole_file = set(ids)
                elif isinstance(self.whole_file, set):
                    self.whole_file.update(ids)
                continue
            m = _NOQA_LINE.search(text)
            if m:
                ids = _parse_id_list(m.group(1))
                existing = self.by_line.get(lineno, set())
                if ids is None or existing is None:
                    self.by_line[lineno] = None
                else:
                    assert isinstance(existing, set)
                    self.by_line[lineno] = existing | set(ids)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.whole_file is None:
            return True
        if isinstance(self.whole_file, set) and rule_id in self.whole_file:
            return True
        if line in self.by_line:
            ids = self.by_line[line]
            return ids is None or rule_id in ids
        return False


def _parse_id_list(raw: str | None) -> list[str] | None:
    """``"DET001, DET002"`` -> ids; ``None`` (bare noqa) stays ``None``."""
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


class FileContext:
    """Everything a :class:`FileRule` may inspect about one file."""

    def __init__(self, root: str, relpath: str, source: str) -> None:
        self.root = root
        self.relpath = relpath  # posix separators, repo-relative
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.suppressions = _Suppressions(self.lines)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


class ProjectContext:
    """Repo-level context for :class:`ProjectRule`; parses on demand."""

    def __init__(self, root: str, files: list[str]) -> None:
        self.root = root
        self.files = files  # repo-relative posix paths in this check run
        self._trees: dict[str, ast.Module | None] = {}

    def read(self, relpath: str) -> str | None:
        path = os.path.join(self.root, *relpath.split("/"))
        try:
            with open(path, encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None

    def parse(self, relpath: str) -> ast.Module | None:
        if relpath not in self._trees:
            source = self.read(relpath)
            try:
                self._trees[relpath] = (
                    None if source is None else ast.parse(source, filename=relpath)
                )
            except SyntaxError:
                self._trees[relpath] = None
        return self._trees[relpath]


class Rule:
    """Base rule: stable id, one-line title, default path scope.

    ``paths`` are ``fnmatch`` patterns over repo-relative posix paths;
    ``exclude`` wins over ``paths``.  Subclass :class:`FileRule` or
    :class:`ProjectRule`, never this directly.
    """

    id: str = ""
    title: str = ""
    paths: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: str, config: CheckConfig) -> bool:
        patterns = config.rule_paths.get(self.id, self.paths)
        exclude = config.rule_excludes.get(self.id, self.exclude)
        if any(fnmatch.fnmatch(relpath, pattern) for pattern in exclude):
            return False
        return any(fnmatch.fnmatch(relpath, pattern) for pattern in patterns)


class FileRule(Rule):
    """A rule that inspects one file's AST at a time."""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the repository as a whole.

    It runs when any scanned file matches its ``paths`` (its *anchors*),
    so ``repro check src`` runs digest checks but checking one stray
    script does not.
    """

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    from . import rules as _rules  # noqa: F401  (import registers the battery)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    from . import rules as _rules  # noqa: F401

    return _REGISTRY[rule_id]


def resolve_rules(select: Iterable[str] | None) -> list[Rule]:
    """The rule battery, optionally narrowed to explicit ids."""
    rules = all_rules()
    if select is None:
        return rules
    known = {rule.id for rule in rules}
    wanted = list(select)
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    wanted_set = set(wanted)
    return [rule for rule in rules if rule.id in wanted_set]


@dataclass
class CheckConfig:
    """Path-scope overrides and rule selection for one check run."""

    select: tuple[str, ...] | None = None
    rule_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    rule_excludes: dict[str, tuple[str, ...]] = field(default_factory=dict)


def find_root(start: str) -> str:
    """Ascend from ``start`` to the repo root (pyproject.toml / .git)."""
    path = os.path.abspath(start)
    if os.path.isfile(path):
        path = os.path.dirname(path)
    while True:
        if os.path.exists(os.path.join(path, "pyproject.toml")) or os.path.exists(
            os.path.join(path, ".git")
        ):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start if os.path.isdir(start) else os.getcwd())
        path = parent


# NOTE: no "dist"/"build" here -- src/repro/dist is a real package (the
# same trap pytest's default norecursedirs documents in pyproject.toml)
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def collect_files(paths: Iterable[str], root: str) -> list[str]:
    """Expand files/directories into sorted repo-relative .py paths."""
    found: set[str] = set()
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.add(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.add(path)
    rels = {os.path.relpath(p, root).replace(os.sep, "/") for p in found}
    return sorted(rels)


def run_check(
    paths: Iterable[str],
    root: str | None = None,
    config: CheckConfig | None = None,
    on_error: Callable[[str, str], None] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run the battery over ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    position then rule.  Unparseable files produce a ``PARSE`` finding
    rather than aborting the run (ruff owns syntax; we still refuse to
    silently skip).
    """
    paths = list(paths)
    if root is None:
        root = find_root(paths[0] if paths else os.getcwd())
    config = config or CheckConfig()
    rules = resolve_rules(config.select)
    files = collect_files(paths, root)

    findings: list[Finding] = []
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    contexts: dict[str, FileContext] = {}
    for relpath in files:
        applicable = [r for r in file_rules if r.applies_to(relpath, config)]
        if not applicable:
            continue
        abspath = os.path.join(root, *relpath.split("/"))
        try:
            with open(abspath, encoding="utf-8") as fh:
                source = fh.read()
            ctx = FileContext(root, relpath, source)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(relpath, 1, 0, "PARSE", f"could not analyze: {exc}")
            )
            if on_error is not None:
                on_error(relpath, str(exc))
            continue
        contexts[relpath] = ctx
        for rule in applicable:
            for finding in rule.check_file(ctx):
                if not ctx.suppressions.suppressed(finding.rule, finding.line):
                    findings.append(finding)

    if project_rules:
        project_ctx = ProjectContext(root, files)
        for rule in project_rules:
            if not any(rule.applies_to(relpath, config) for relpath in files):
                continue
            for finding in rule.check_project(project_ctx):
                ctx = contexts.get(finding.path)
                if ctx is not None and ctx.suppressions.suppressed(
                    finding.rule, finding.line
                ):
                    continue
                findings.append(finding)

    findings.sort()
    return findings, files
