"""Reporters for check results: terminal text and machine JSON.

The JSON schema (``REPORT_VERSION`` 1) is a stable CI artifact::

    {
      "version": 1,
      "tool": "repro check",
      "rules": ["DET001", ...],          # battery that ran
      "files_checked": 123,
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "counts": {"DET001": 2, ...},      # only rules with findings
      "ok": false
    }
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence

from .core import Finding, Rule

__all__ = ["REPORT_VERSION", "format_text", "to_json_obj", "format_json"]

REPORT_VERSION = 1


def format_text(
    findings: Sequence[Finding], files_checked: int, rules: Iterable[Rule]
) -> str:
    """Human-facing report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in findings]
    rule_ids = [rule.id for rule in rules]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        by_rule = ", ".join(f"{rule}:{n}" for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({by_rule}); suppress a line with `# repro: noqa[RULE]`"
        )
    else:
        lines.append(
            f"ok: {files_checked} file(s) clean under "
            f"{len(rule_ids)} rule(s) ({', '.join(rule_ids)})"
        )
    return "\n".join(lines)


def to_json_obj(
    findings: Sequence[Finding], files_checked: int, rules: Iterable[Rule]
) -> dict:
    counts = Counter(finding.rule for finding in findings)
    return {
        "version": REPORT_VERSION,
        "tool": "repro check",
        "rules": [rule.id for rule in rules],
        "files_checked": files_checked,
        "findings": [finding.to_obj() for finding in findings],
        "counts": dict(sorted(counts.items())),
        "ok": not findings,
    }


def format_json(
    findings: Sequence[Finding], files_checked: int, rules: Iterable[Rule]
) -> str:
    return json.dumps(
        to_json_obj(findings, files_checked, rules), indent=2, sort_keys=True
    )
