"""``repro.analysis`` -- the AST-based invariant checker behind
``repro check``.

A small rule framework (:mod:`repro.analysis.core`) plus a battery of
repo-specific rules (:mod:`repro.analysis.rules`) that statically
enforce the contracts the reproduction rests on: engine-path
determinism (DET*), crash-durable queue writes (DUR*), encoding
discipline (ENC*), NOOP-guarded telemetry and stdout hygiene (OBS*),
obs dependency-freedom (IMP*), the byte-frozen oracle / ENGINE_VERSION
pact (FRZ001, :mod:`repro.analysis.frozen`), and cache-identity
completeness of engine knobs (SPEC001).

Typical use::

    from repro.analysis import run_check, all_rules
    findings, files = run_check(["src"])

Suppress a deliberate violation on its line with ``# repro: noqa[ID]``.
"""

from .core import (
    CheckConfig,
    FileContext,
    FileRule,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    collect_files,
    find_root,
    get_rule,
    resolve_rules,
    run_check,
)
from .frozen import compute_frozen, load_frozen, write_frozen
from .report import format_json, format_text, to_json_obj

__all__ = [
    "CheckConfig",
    "FileContext",
    "FileRule",
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "collect_files",
    "find_root",
    "get_rule",
    "resolve_rules",
    "run_check",
    "compute_frozen",
    "load_frozen",
    "write_frozen",
    "format_json",
    "format_text",
    "to_json_obj",
]
