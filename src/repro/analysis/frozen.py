"""FRZ001's machinery: content digests for the frozen oracle and the
scheduling-semantics modules, pinned against ``ENGINE_VERSION``.

The contract has two tiers:

* **Oracle tier** -- ``src/repro/sched/legacy.py`` is the byte-frozen
  reimplementation of the seed scheduler that every optimisation is
  proven byte-identical against.  Its digest changing is *always* a
  finding: the oracle may only be re-frozen deliberately, with the
  regenerated data file showing up in review.
* **Semantics tier** -- modules whose code decides schedules
  (``sched/``, ``sim/``, ``correct/``, ``predict/``).  Editing one is
  fine **iff** either ``ENGINE_VERSION`` was bumped (caches invalidate)
  or the change is proven byte-identical (oracle tests green) and the
  digests are regenerated with ``repro check --update-frozen`` -- a
  checked-in diff a reviewer can hold the author to.

The recorded state lives in ``src/repro/analysis/data/frozen.json``::

    {
      "engine_version": 2,
      "oracle": {"src/repro/sched/legacy.py": "<sha256>"},
      "semantics": {"src/repro/sim/engine.py": "<sha256>", ...}
    }
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import json
import os
from collections.abc import Iterator

from .core import Finding, ProjectContext

__all__ = [
    "DATA_RELPATH",
    "ORACLE_FILES",
    "SEMANTICS_GLOBS",
    "compute_frozen",
    "load_frozen",
    "write_frozen",
    "check_frozen",
]

DATA_RELPATH = "src/repro/analysis/data/frozen.json"
ENGINE_RELPATH = "src/repro/sim/engine.py"

ORACLE_FILES = ("src/repro/sched/legacy.py",)

SEMANTICS_GLOBS = (
    "src/repro/sched/*.py",
    "src/repro/sim/*.py",
    "src/repro/correct/*.py",
    "src/repro/predict/*.py",
)

_RULE = "FRZ001"
_REGEN = "repro check --update-frozen"


def _digest_file(root: str, relpath: str) -> str | None:
    path = os.path.join(root, *relpath.split("/"))
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return None


def semantics_files(root: str) -> list[str]:
    """Every on-disk module the semantics tier covers (sorted)."""
    found: set[str] = set()
    for pattern in SEMANTICS_GLOBS:
        directory = os.path.join(root, *pattern.split("/")[:-1])
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            continue
        prefix = "/".join(pattern.split("/")[:-1])
        for name in names:
            relpath = f"{prefix}/{name}"
            if fnmatch.fnmatch(relpath, pattern):
                found.add(relpath)
    return sorted(found - set(ORACLE_FILES))


def current_engine_version(root: str) -> tuple[int | None, int]:
    """``(ENGINE_VERSION, lineno)`` parsed statically from engine.py."""
    path = os.path.join(root, *ENGINE_RELPATH.split("/"))
    try:
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=ENGINE_RELPATH)
    except (OSError, SyntaxError):
        return None, 1
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "ENGINE_VERSION":
                    value = node.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ):
                        return value.value, node.lineno
                    return None, node.lineno
    return None, 1


def compute_frozen(root: str) -> dict:
    """The digest record for the tree as it is on disk right now."""
    version, _ = current_engine_version(root)
    oracle = {
        relpath: _digest_file(root, relpath)
        for relpath in ORACLE_FILES
        if _digest_file(root, relpath) is not None
    }
    semantics = {}
    for relpath in semantics_files(root):
        digest = _digest_file(root, relpath)
        if digest is not None:
            semantics[relpath] = digest
    return {
        "engine_version": version,
        "oracle": oracle,
        "semantics": semantics,
    }


def load_frozen(root: str) -> dict | None:
    path = os.path.join(root, *DATA_RELPATH.split("/"))
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_frozen(root: str) -> str:
    """Regenerate the data file (tmp + replace); returns its path."""
    path = os.path.join(root, *DATA_RELPATH.split("/"))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(compute_frozen(root), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def check_frozen(ctx: ProjectContext) -> Iterator[Finding]:
    """The FRZ001 battery over one repository."""
    root = ctx.root
    recorded = load_frozen(root)
    if recorded is None:
        yield Finding(
            DATA_RELPATH, 1, 0, _RULE,
            f"frozen-digest data file missing or unreadable; run `{_REGEN}` "
            "and commit the result",
        )
        return

    current_version, version_line = current_engine_version(root)
    recorded_version = recorded.get("engine_version")

    # oracle tier: any drift is a finding, version bump or not
    for relpath in ORACLE_FILES:
        want = (recorded.get("oracle") or {}).get(relpath)
        have = _digest_file(root, relpath)
        if want is None:
            yield Finding(
                DATA_RELPATH, 1, 0, _RULE,
                f"oracle file {relpath} has no recorded digest; run `{_REGEN}`",
            )
        elif have is None:
            yield Finding(
                relpath, 1, 0, _RULE,
                "byte-frozen oracle file is missing from the tree",
            )
        elif have != want:
            yield Finding(
                relpath, 1, 0, _RULE,
                "byte-frozen oracle modified (content digest changed).  The "
                "legacy oracle must never drift; revert the edit, or re-freeze "
                f"deliberately with `{_REGEN}` and justify the diff in review",
            )

    if current_version != recorded_version:
        yield Finding(
            ENGINE_RELPATH, version_line, 0, _RULE,
            f"ENGINE_VERSION is {current_version} but the frozen digests were "
            f"recorded at {recorded_version}; run `{_REGEN}` so the semantics "
            "digests re-pin against the new version",
        )
        return  # per-file drift is expected mid-bump; one finding suffices

    recorded_semantics: dict = recorded.get("semantics") or {}
    on_disk = semantics_files(root)
    for relpath in on_disk:
        have = _digest_file(root, relpath)
        want = recorded_semantics.get(relpath)
        if want is None:
            yield Finding(
                relpath, 1, 0, _RULE,
                "new scheduling-semantics module with no recorded digest; "
                f"run `{_REGEN}` to pin it",
            )
        elif have != want:
            yield Finding(
                relpath, 1, 0, _RULE,
                "scheduling-semantics module changed without an "
                "ENGINE_VERSION bump.  Either bump ENGINE_VERSION "
                "(sim/engine.py) so stale caches die, or -- if the oracle "
                "suite proves schedules byte-identical -- regenerate the "
                f"digests with `{_REGEN}` and let review see the re-pin",
            )
    for relpath in sorted(set(recorded_semantics) - set(on_disk)):
        yield Finding(
            DATA_RELPATH, 1, 0, _RULE,
            f"recorded semantics module {relpath} no longer exists; "
            f"run `{_REGEN}`",
        )
