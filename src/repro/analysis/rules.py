"""The rule battery: repo-specific determinism/durability/identity checks.

Every rule here encodes a contract the rest of the repository states in
prose (module docstrings, ROADMAP invariants) but until now could only
enforce dynamically.  Rule ids are stable forever -- suppression
comments and CI configs depend on them -- so retired rules leave a gap
rather than freeing their id.

File rules (per-AST):

* ``DET001`` -- no wall-clock/entropy sources in engine paths.
* ``DET002`` -- no unsorted directory scans in coordination code.
* ``DET003`` -- no environment reads in engine paths.
* ``DUR001`` -- ``repro.dist`` writes final files via tmp + ``os.replace``.
* ``ENC001`` -- text-mode ``open()`` must pin ``encoding=``.
* ``OBS001`` -- hot-loop telemetry behind the ``enabled`` guard.
* ``OBS002`` -- no ``print()`` in library code.
* ``IMP001`` -- ``repro.obs`` stays dependency-free.

Project rules (per-repository):

* ``FRZ001`` -- frozen-oracle/semantics digests vs ``ENGINE_VERSION``
  (see :mod:`repro.analysis.frozen`).
* ``SPEC001`` -- engine knobs must enter the ``CellSpec`` digest.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from .core import (
    FileContext,
    FileRule,
    Finding,
    ProjectContext,
    ProjectRule,
    register,
)

__all__ = [
    "ENGINE_PATHS",
    "COORDINATION_PATHS",
    "LIBRARY_PATHS",
]

#: The byte-determinism region: code on these paths decides (or feeds
#: decisions about) when jobs start, so any nondeterminism here breaks
#: the frozen-oracle guarantee.
ENGINE_PATHS = (
    "src/repro/sim/*",
    "src/repro/sched/*",
    "src/repro/predict/*",
    "src/repro/learn/*",
)

#: Coordination code whose scan order decides claim order, harvest
#: order, or merge content across hosts and filesystems.
COORDINATION_PATHS = (
    "src/repro/dist/*",
    "src/repro/core/*",
    "src/repro/obs/*",
)

#: Library (non-CLI) code: everything under ``src/repro`` except the
#: command front end and the reporting layer, which own stdout.
LIBRARY_PATHS = (
    "src/repro/sim/*",
    "src/repro/sched/*",
    "src/repro/predict/*",
    "src/repro/correct/*",
    "src/repro/workload/*",
    "src/repro/dist/*",
    "src/repro/obs/*",
    "src/repro/serve/*",
    "src/repro/learn/*",
    "src/repro/spec/*",
    "src/repro/metrics/*",
    "src/repro/analysis/*",
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _walk_calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


def _call_mode_literal(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call; ``"r"`` when omitted,
    ``None`` when it is not a string literal (unknowable statically)."""
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


# -- DET001 -------------------------------------------------------------------

_DET001_EXACT = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "time.ctime": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "date.today": "wall clock",
    "os.urandom": "entropy",
    "uuid.uuid1": "entropy",
    "uuid.uuid4": "entropy",
}

#: seedable constructors on the numpy.random namespace (building one
#: with an explicit seed is exactly how determinism is done right).
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _det001_reason(name: str) -> str | None:
    if name in _DET001_EXACT:
        return _DET001_EXACT[name]
    if name.startswith("secrets."):
        return "entropy"
    if name.startswith("random.") and name != "random.Random":
        # the module-level functions share one ambient, unseeded state;
        # random.Random(seed) instances are the sanctioned spelling
        return "ambient RNG state"
    for prefix in ("numpy.random.", "np.random."):
        if name.startswith(prefix) and name[len(prefix):] not in _NP_RANDOM_OK:
            return "ambient RNG state"
    return None


@register
class Det001WallClockEntropy(FileRule):
    """Engine paths must be pure functions of trace + spec + seed."""

    id = "DET001"
    title = "wall-clock/entropy source in an engine path"
    paths = ENGINE_PATHS
    # the checkpoint store is I/O plumbing (env-addressed file cache),
    # not schedule semantics; its wall-clock metadata stamps are benign
    exclude = ("src/repro/learn/checkpoint.py",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            name = dotted_name(call.func)
            if name is None:
                continue
            reason = _det001_reason(name)
            if reason is not None:
                yield Finding(
                    ctx.relpath, call.lineno, call.col_offset, self.id,
                    f"{name}() is a {reason} source; engine paths must be "
                    "deterministic functions of (trace, spec, seed) -- thread "
                    "a seeded generator through the spec instead",
                )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "random", "secrets"
            ):
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset, self.id,
                    f"`from {node.module} import ...` in an engine path hides "
                    "an ambient RNG behind a bare name; import the module and "
                    "use seeded instances",
                )


# -- DET002 -------------------------------------------------------------------

_SCAN_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_SCAN_METHODS = {"iterdir", "glob", "rglob"}


@register
class Det002UnsortedScan(FileRule):
    """Directory iteration order is filesystem-dependent; coordination
    code must sort it (or reduce it to an order-free set)."""

    id = "DET002"
    title = "unsorted directory scan in coordination code"
    paths = COORDINATION_PATHS

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            name = dotted_name(call.func)
            is_scan = name in _SCAN_CALLS or (
                name not in ("glob.glob", "glob.iglob")
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _SCAN_METHODS
            )
            if not is_scan:
                continue
            if self._order_free(ctx, call):
                continue
            yield Finding(
                ctx.relpath, call.lineno, call.col_offset, self.id,
                f"{name or call.func.attr}() order is filesystem-dependent; "
                "wrap the scan in sorted(...) (or reduce it to a set) so "
                "claim/harvest order is identical on every platform",
            )

    @staticmethod
    def _order_free(ctx: FileContext, call: ast.Call) -> bool:
        """True when an enclosing expression already erases scan order:
        a ``sorted(...)``/``set(...)``/``len(...)`` call or a set
        comprehension between the scan and its statement."""
        node: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, ast.Call):
                fname = dotted_name(ancestor.func)
                if fname in ("sorted", "set", "frozenset", "len") and (
                    node in ancestor.args
                    or any(node is kw.value for kw in ancestor.keywords)
                ):
                    return True
            if isinstance(ancestor, (ast.SetComp, ast.GeneratorExp, ast.ListComp)):
                # keep climbing: a comprehension is order-free only if
                # *it* feeds sorted()/set()/a set comprehension
                if isinstance(ancestor, ast.SetComp):
                    return True
            if isinstance(ancestor, ast.stmt):
                return False
            node = ancestor
        return False


# -- DET003 -------------------------------------------------------------------


@register
class Det003EnvRead(FileRule):
    """Configuration must flow through the spec (and so the cache
    digest), never through ambient process environment."""

    id = "DET003"
    title = "environment read in an engine path"
    paths = ("src/repro/sim/*", "src/repro/sched/*", "src/repro/predict/*")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            name = dotted_name(node) if isinstance(node, (ast.Attribute,)) else None
            if name == "os.environ":
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset, self.id,
                    "os.environ read in an engine path; engine behaviour must "
                    "be a function of the CellSpec (cache identity), not the "
                    "process environment",
                )
            elif isinstance(node, ast.Call) and dotted_name(node.func) == "os.getenv":
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset, self.id,
                    "os.getenv() in an engine path; thread the knob through "
                    "the CellSpec instead",
                )


# -- DUR001 -------------------------------------------------------------------


@register
class Dur001NonAtomicWrite(FileRule):
    """A crash mid-write must never leave a half-written final file in
    the shared queue directory: write a tmp name, then ``os.replace``."""

    id = "DUR001"
    title = "non-atomic write to a final path in repro.dist"
    paths = ("src/repro/dist/*",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            if dotted_name(call.func) != "open":
                continue
            mode = _call_mode_literal(call)
            if mode is None or not any(ch in mode for ch in "wx"):
                continue  # reads and append-only streams are the protocol
            if self._function_replaces(ctx, call):
                continue
            yield Finding(
                ctx.relpath, call.lineno, call.col_offset, self.id,
                f"open(..., {mode!r}) writes a final path in place; a crash "
                "leaves a torn file other hosts will read.  Write "
                "`<path>.tmp.<pid>` then os.replace() onto the final name",
            )

    @staticmethod
    def _function_replaces(ctx: FileContext, call: ast.Call) -> bool:
        func = ctx.enclosing_function(call)
        if func is None:
            return False
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and dotted_name(node.func) in (
                "os.replace", "os.rename"
            ):
                return True
        return False


# -- ENC001 -------------------------------------------------------------------


@register
class Enc001OpenEncoding(FileRule):
    """Queue directories and caches cross hosts; the platform default
    text encoding must never decide what bytes land in them."""

    id = "ENC001"
    title = "text-mode open() without an explicit encoding"
    paths = ("src/repro/*",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            if dotted_name(call.func) != "open":
                continue
            mode = _call_mode_literal(call)
            if mode is None or "b" in mode:
                continue
            if _has_keyword(call, "encoding"):
                continue
            yield Finding(
                ctx.relpath, call.lineno, call.col_offset, self.id,
                f"text-mode open(..., {mode!r}) without encoding=; the "
                "platform default is host-dependent -- pass "
                'encoding="utf-8" explicitly',
            )


# -- OBS001 -------------------------------------------------------------------

_TELE_RECEIVER = re.compile(r"^(self\.)?_?tele(metry)?$")
_TELE_MUTATORS = {"inc", "observe", "gauge", "gauge_max", "event"}


def _test_checks_enabled(test: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "enabled"
        for node in ast.walk(test)
    )


@register
class Obs001UnguardedTelemetry(FileRule):
    """Hot-loop telemetry must keep the disabled path at one attribute
    check: ``if tele.enabled:`` around record calls (the ``span()``
    context manager is inert when disabled and needs no guard)."""

    id = "OBS001"
    title = "unguarded telemetry call in an engine hot path"
    paths = ("src/repro/sim/*", "src/repro/sched/*", "src/repro/predict/*")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in _TELE_MUTATORS:
                continue
            receiver = dotted_name(call.func.value)
            if receiver is None or not _TELE_RECEIVER.match(receiver):
                continue
            if self._guarded(ctx, call):
                continue
            yield Finding(
                ctx.relpath, call.lineno, call.col_offset, self.id,
                f"{receiver}.{call.func.attr}(...) outside an "
                "`if <telemetry>.enabled:` guard; the NOOP-guarded attribute "
                "pattern keeps the telemetry-off hot path at one branch "
                "(see repro.obs.telemetry)",
            )

    @staticmethod
    def _guarded(ctx: FileContext, call: ast.Call) -> bool:
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, (ast.If, ast.While)) and _test_checks_enabled(
                ancestor.test
            ):
                return True
            if isinstance(ancestor, ast.IfExp) and _test_checks_enabled(
                ancestor.test
            ):
                return True
        func = ctx.enclosing_function(call)
        if func is None:
            return False
        # accept an early-exit guard anywhere above the call in the same
        # function: `if not tele.enabled: return`
        for node in ast.walk(func):
            if (
                isinstance(node, ast.If)
                and node.lineno < call.lineno
                and _test_checks_enabled(node.test)
                and any(
                    isinstance(stmt, (ast.Return, ast.Raise, ast.Continue))
                    for stmt in node.body
                )
            ):
                return True
        return False


# -- OBS002 -------------------------------------------------------------------


@register
class Obs002PrintInLibrary(FileRule):
    """Library layers report through ``repro.obs`` (metrics, logging) or
    return data; stdout belongs to the CLI and the reporting layer."""

    id = "OBS002"
    title = "print() in library code"
    paths = LIBRARY_PATHS

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx):
            if isinstance(call.func, ast.Name) and call.func.id == "print":
                yield Finding(
                    ctx.relpath, call.lineno, call.col_offset, self.id,
                    "print() in library code; use repro.obs.log logging, "
                    "telemetry, or return the data to the caller (stdout "
                    "belongs to the CLI/reporting layer)",
                )


# -- IMP001 -------------------------------------------------------------------


@register
class Imp001ObsDependencyFree(FileRule):
    """``repro.obs`` is importable from every layer *because* it imports
    none of them (telemetry.py states the contract; this enforces it)."""

    id = "IMP001"
    title = "repro.obs importing another repro module"
    paths = ("src/repro/obs/*",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            offender: str | None = None
            if isinstance(node, ast.ImportFrom):
                if node.level >= 2:
                    offender = "." * node.level + (node.module or "")
                elif node.module and (
                    node.module == "repro" or node.module.startswith("repro.")
                ) and not node.module.startswith("repro.obs"):
                    offender = node.module
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.") and not alias.name.startswith(
                        "repro.obs"
                    ):
                        offender = alias.name
            if offender is not None:
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset, self.id,
                    f"import of {offender!r} breaks repro.obs's "
                    "dependency-free contract (every layer must be able to "
                    "import obs without cycles)",
                )


# -- FRZ001 -------------------------------------------------------------------


@register
class Frz001FrozenOracle(ProjectRule):
    """The byte-frozen oracle and the semantics/ENGINE_VERSION pact;
    heavy lifting in :mod:`repro.analysis.frozen`."""

    id = "FRZ001"
    title = "frozen-oracle / ENGINE_VERSION digest drift"
    paths = (
        "src/repro/sched/*",
        "src/repro/sim/*",
        "src/repro/correct/*",
        "src/repro/predict/*",
    )

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        from .frozen import check_frozen

        return check_frozen(ctx)


# -- SPEC001 ------------------------------------------------------------------

#: engine-construction parameters that are structural (what to run /
#: how to observe it), not semantic knobs, so they may stay outside the
#: cache digest.  Reviewed additions only.
_SPEC_STRUCTURAL_PARAMS = frozenset(
    {
        "self",
        "trace",
        "processors",
        "scheduler",
        "predictor",
        "corrector",
        "telemetry",
        "trace_name",
        "start_time",
    }
)

_SPEC_CELLSPEC = "src/repro/spec/cellspec.py"
_SPEC_ENGINE_ENTRYPOINTS = {
    "src/repro/sim/engine.py": (("Simulator", "__init__"), (None, "simulate")),
    "src/repro/sim/session.py": ((("SimSession"), "__init__"),),
}


@register
class Spec001KnobEscapesDigest(ProjectRule):
    """Every semantic engine knob must be a ``CellSpec`` engine field,
    or two different configurations share one cache token."""

    id = "SPEC001"
    title = "engine knob outside the CellSpec cache digest"
    paths = (_SPEC_CELLSPEC, "src/repro/sim/engine.py", "src/repro/sim/session.py")

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        knobs = self._digested_knobs(ctx)
        if knobs is None:
            yield Finding(
                _SPEC_CELLSPEC, 1, 0, self.id,
                "could not locate the engine-knob set in CellSpec.to_obj()/"
                "from_obj(); SPEC001 needs the `\"engine\": {...}` literal "
                "to know what the digest covers",
            )
            return
        for relpath, targets in _SPEC_ENGINE_ENTRYPOINTS.items():
            tree = ctx.parse(relpath)
            if tree is None:
                continue
            for cls_name, func_name in targets:
                func = _find_function(tree, cls_name, func_name)
                if func is None:
                    continue
                for arg in _all_args(func):
                    if arg.arg in _SPEC_STRUCTURAL_PARAMS or arg.arg in knobs:
                        continue
                    yield Finding(
                        relpath, func.lineno, func.col_offset, self.id,
                        f"engine parameter {arg.arg!r} of "
                        f"{cls_name + '.' if cls_name else ''}{func_name} is "
                        "neither a CellSpec engine knob nor a declared "
                        "structural parameter; add it to the CellSpec engine "
                        "block (and bump SPEC_VERSION) so it cannot escape "
                        "cache identity",
                    )

    @staticmethod
    def _digested_knobs(ctx: ProjectContext) -> set[str] | None:
        tree = ctx.parse(_SPEC_CELLSPEC)
        if tree is None:
            return None
        knobs: set[str] = set()
        for node in ast.walk(tree):
            # the `"engine": {"min_prediction": ..., "tau": ...}` literal
            # in CellSpec.to_obj() is the canonical digest surface
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values, strict=True):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "engine"
                        and isinstance(value, ast.Dict)
                    ):
                        for subkey in value.keys:
                            if isinstance(subkey, ast.Constant) and isinstance(
                                subkey.value, str
                            ):
                                knobs.add(subkey.value)
        return knobs or None


def _find_function(
    tree: ast.Module, cls_name: str | None, func_name: str
) -> ast.FunctionDef | None:
    if cls_name is None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == func_name:
                return node
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == func_name:
                    return item
    return None


def _all_args(func: ast.FunctionDef) -> list[ast.arg]:
    args = func.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]
