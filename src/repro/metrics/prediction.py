"""Prediction-quality metrics (paper Section 6.4, Table 8).

Two views of prediction error:

* **MAE** (mean absolute error), the symmetric standard measure;
* **mean E-Loss** (or any :class:`~repro.predict.loss.LossSpec`), the
  scheduling-aware asymmetric measure the paper argues is what actually
  matters -- Table 8's point is that AVE2 wins on MAE yet loses by four
  orders of magnitude on E-Loss.

All values are in seconds, like the paper's Table 8.
"""

from __future__ import annotations

import numpy as np

from ..predict.loss import LossSpec
from ..sim.results import SimulationResult

__all__ = [
    "mean_absolute_error",
    "mean_loss",
    "prediction_errors",
    "under_prediction_rate",
    "prediction_report",
]


def prediction_errors(result: SimulationResult) -> np.ndarray:
    """Per-job signed error ``f_j - p_j`` of the submission-time prediction."""
    return result.initial_predictions - result.runtimes


def mean_absolute_error(result: SimulationResult) -> float:
    """MAE of submission-time predictions, seconds."""
    return float(np.abs(prediction_errors(result)).mean())


def mean_loss(result: SimulationResult, spec: LossSpec) -> float:
    """Mean of ``spec`` over the run's predictions (Table 8 column)."""
    predictions = result.initial_predictions
    runtimes = result.runtimes
    processors = result.array("processors")
    total = 0.0
    for f, p, q in zip(predictions, runtimes, processors, strict=True):
        total += spec.value(float(f), float(p), float(q))
    return total / max(1, len(result))


def under_prediction_rate(result: SimulationResult) -> float:
    """Fraction of jobs whose prediction fell short of the actual runtime."""
    return float(np.mean(prediction_errors(result) < 0))


def prediction_report(result: SimulationResult, spec: LossSpec) -> dict[str, float]:
    """MAE + mean loss + misprediction balance, for tables and tests."""
    errors = prediction_errors(result)
    return {
        "mae": float(np.abs(errors).mean()),
        "mean_loss": mean_loss(result, spec),
        "under_rate": float(np.mean(errors < 0)),
        "over_rate": float(np.mean(errors > 0)),
        "mean_error": float(errors.mean()),
    }
