"""Objective functions and analysis metrics."""

from .correlation import correlation_summary, pairwise_correlations, pearson
from .ecdf import ascii_ecdf_chart, ecdf, ecdf_at
from .prediction import (
    mean_absolute_error,
    mean_loss,
    prediction_errors,
    prediction_report,
    under_prediction_rate,
)
from .slowdown import (
    DEFAULT_TAU,
    average_bounded_slowdown,
    bounded_slowdowns,
    slowdown_summary,
)

__all__ = [
    "correlation_summary",
    "pairwise_correlations",
    "pearson",
    "ascii_ecdf_chart",
    "ecdf",
    "ecdf_at",
    "mean_absolute_error",
    "mean_loss",
    "prediction_errors",
    "prediction_report",
    "under_prediction_rate",
    "DEFAULT_TAU",
    "average_bounded_slowdown",
    "bounded_slowdowns",
    "slowdown_summary",
]
