"""Scheduling objectives: bounded slowdown and friends (paper Section 5.3).

The paper's sole reported objective is AVEbsld with tau = 10 s.  The
per-job bounded slowdown is

    bsld_j = max( (wait_j + p_j) / max(p_j, tau), 1 )

where ``tau`` prevents second-long jobs from producing unbounded values.
Additional aggregate statistics (median, percentiles, weighted averages)
are provided for the extended analyses.
"""

from __future__ import annotations

import numpy as np

from ..sim.results import SimulationResult

__all__ = [
    "DEFAULT_TAU",
    "bounded_slowdowns",
    "average_bounded_slowdown",
    "slowdown_summary",
]

#: The literature's standard threshold, used in all the paper's tables.
DEFAULT_TAU = 10.0


def bounded_slowdowns(
    wait_times: np.ndarray, runtimes: np.ndarray, tau: float = DEFAULT_TAU
) -> np.ndarray:
    """Vector of per-job bounded slowdowns.

    Raises :class:`ValueError` on negative waits or non-positive runtimes
    (both indicate a simulation bug, not a workload property).
    """
    wait_times = np.asarray(wait_times, dtype=float)
    runtimes = np.asarray(runtimes, dtype=float)
    if wait_times.shape != runtimes.shape:
        raise ValueError("wait_times and runtimes must have the same shape")
    if tau <= 0:
        raise ValueError("tau must be positive")
    if wait_times.size and wait_times.min() < 0:
        raise ValueError("negative wait time")
    if runtimes.size and runtimes.min() <= 0:
        raise ValueError("non-positive runtime")
    return np.maximum((wait_times + runtimes) / np.maximum(runtimes, tau), 1.0)


def average_bounded_slowdown(
    result: SimulationResult, tau: float = DEFAULT_TAU
) -> float:
    """AVEbsld of a simulation run (the paper's headline metric)."""
    return float(
        bounded_slowdowns(result.wait_times, result.runtimes, tau).mean()
    )


def slowdown_summary(
    result: SimulationResult, tau: float = DEFAULT_TAU
) -> dict[str, float]:
    """Mean / median / tail percentiles of the bsld distribution."""
    values = bounded_slowdowns(result.wait_times, result.runtimes, tau)
    return {
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "p90": float(np.quantile(values, 0.90)),
        "p99": float(np.quantile(values, 0.99)),
        "max": float(values.max()),
        "frac_at_floor": float(np.mean(values <= 1.0 + 1e-12)),
    }
