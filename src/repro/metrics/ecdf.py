"""Empirical cumulative distribution functions (paper Figures 4 and 5).

The paper visualises prediction behaviour through ECDFs of prediction
errors (Fig. 4) and of the predicted values themselves (Fig. 5).  This
module computes ECDFs and renders them as ASCII line charts so the
benchmark harness can "draw" the figures in a terminal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ecdf", "ecdf_at", "ascii_ecdf_chart"]


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` with x sorted ascending and F stepping to 1."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("ecdf of empty sample")
    x = np.sort(values)
    y = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, y


def ecdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the ECDF of ``values`` at arbitrary ``points``."""
    values = np.sort(np.asarray(values, dtype=float))
    points = np.asarray(points, dtype=float)
    return np.searchsorted(values, points, side="right") / values.size


def ascii_ecdf_chart(
    series: dict[str, np.ndarray],
    x_min: float,
    x_max: float,
    width: int = 72,
    height: int = 18,
    x_label: str = "",
) -> str:
    """Render several ECDFs as an ASCII chart.

    Each series gets a single marker character; overlapping cells show
    the later series.  The y axis spans [0, 1].
    """
    if not series:
        raise ValueError("no series to plot")
    if x_max <= x_min:
        raise ValueError("x_max must exceed x_min")
    markers = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]
    xs = np.linspace(x_min, x_max, width)
    legend = []
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"  {marker} {name}")
        y = ecdf_at(values, xs)
        for col in range(width):
            row = height - 1 - int(round(y[col] * (height - 1)))
            grid[row][col] = marker
    lines = []
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        prefix = f"{frac:4.2f} |"
        lines.append(prefix + "".join(row))
    axis = "     +" + "-" * width
    labels = f"     {x_min:<12.6g}{' ' * max(0, width - 24)}{x_max:>12.6g}"
    out = "\n".join(lines) + "\n" + axis + "\n" + labels
    if x_label:
        out += f"\n     ({x_label})"
    return out + "\n" + "\n".join(legend)
