"""Cross-log performance correlation (paper Section 6.3.2, Figure 3).

The paper measures, for every pair of logs, the Pearson correlation of
heuristic-triple AVEbsld scores, finding a low mean (0.26): a triple
that wins on one system says little about another, which motivates the
cross-validated selection of Section 6.3.3.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

__all__ = ["pearson", "pairwise_correlations", "correlation_summary"]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("samples must have the same shape")
    if x.size < 2:
        raise ValueError("need at least two points")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        raise ValueError("constant sample has undefined correlation")
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def pairwise_correlations(
    scores_by_log: dict[str, np.ndarray]
) -> dict[tuple[str, str], float]:
    """Pearson correlation of triple scores for every pair of logs.

    ``scores_by_log`` maps each log to the vector of AVEbsld scores of
    the same heuristic triples, in the same order.
    """
    if len(scores_by_log) < 2:
        raise ValueError("need at least two logs")
    lengths = {len(v) for v in scores_by_log.values()}
    if len(lengths) != 1:
        raise ValueError("all logs must score the same triples")
    out: dict[tuple[str, str], float] = {}
    for (name_a, a), (name_b, b) in combinations(scores_by_log.items(), 2):
        out[(name_a, name_b)] = pearson(np.asarray(a), np.asarray(b))
    return out


def correlation_summary(
    scores_by_log: dict[str, np.ndarray]
) -> dict[str, float]:
    """Mean / min / max pairwise correlation (the paper reports 0.26 /
    0.01 / 0.80)."""
    values = list(pairwise_correlations(scores_by_log).values())
    return {
        "mean": float(np.mean(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
        "n_pairs": float(len(values)),
    }
