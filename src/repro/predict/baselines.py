"""Baseline predictors: Clairvoyant, Requested Time, AVE_k(p).

These are the comparison points of the paper's campaign (Section 6.2):

* **Clairvoyant** returns the actual running time -- an oracle marking
  the upper bound of what prediction can buy (Table 1, Table 6);
* **Requested Time** returns the user's estimate ``p~_j`` -- with EASY
  this is exactly the standard EASY backfilling algorithm;
* **AVE2** returns the mean of the user's last two completed runtimes
  (Tsafrir et al. 2007) -- with Incremental correction and EASY-SJBF this
  is exactly EASY++.  ``k`` generalises to AVE3 etc. (extension).
"""

from __future__ import annotations

from ..sim.results import JobRecord
from .base import Predictor, UserHistoryTracker

__all__ = ["ClairvoyantPredictor", "RequestedTimePredictor", "RecentAveragePredictor"]


class ClairvoyantPredictor(Predictor):
    """Oracle: predicts the actual running time exactly."""

    name = "clairvoyant"

    def predict(self, record: JobRecord, now: float) -> float:
        return record.runtime

    def estimate(self, record: JobRecord, now: float) -> float:
        return record.runtime


class RequestedTimePredictor(Predictor):
    """Predicts the user-requested upper bound (standard EASY behaviour)."""

    name = "requested"

    def predict(self, record: JobRecord, now: float) -> float:
        return record.requested_time


class RecentAveragePredictor(Predictor):
    """Mean of the user's last ``k`` completed runtimes (AVE_k(p)).

    Falls back to the requested time while the user has no completed
    history, as in Tsafrir et al.'s system-generated predictions.
    """

    def __init__(self, k: int = 2) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.name = f"ave{k}"
        self._tracker = UserHistoryTracker()

    def predict(self, record: JobRecord, now: float) -> float:
        average = self._tracker.average_recent_runtime(record.job.user, self.k)
        self._tracker.on_submit(record.job, now)
        if average is None:
            return record.requested_time
        return average

    def estimate(self, record: JobRecord, now: float) -> float:
        # read-only twin of predict(): no submission is registered
        average = self._tracker.average_recent_runtime(record.job.user, self.k)
        if average is None:
            return record.requested_time
        return average

    def on_start(self, record: JobRecord, now: float) -> None:
        self._tracker.on_start(record.job, now)

    def on_finish(self, record: JobRecord, now: float) -> None:
        # record.runtime honours externally-observed completions
        self._tracker.on_finish(record.job, now, record.runtime)
