"""Degree-2 polynomial basis expansion (paper Eq. 1).

Phi(x) = (1, x_1..x_n, x_1^2..x_n^2, x_i x_j for i<j), giving
``1 + 2n + n(n-1)/2`` terms -- the dimensionality the paper states for
its weight vector.  Cross terms let the linear learner capture pairwise
feature interactions (e.g. requested time x history average).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PolynomialBasis"]


class PolynomialBasis:
    """Expands length-``n`` feature vectors into the degree-2 basis."""

    def __init__(self, n_features: int) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_features = int(n_features)
        iu, ju = np.triu_indices(n_features, k=1)
        self._iu = iu
        self._ju = ju
        self.dim = 1 + 2 * n_features + n_features * (n_features - 1) // 2

    def expand(self, x: np.ndarray) -> np.ndarray:
        """Phi(x); raises if ``x`` has the wrong length or non-finite values."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected shape ({self.n_features},), got {x.shape}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("features must be finite")
        out = np.empty(self.dim, dtype=float)
        out[0] = 1.0
        n = self.n_features
        out[1 : n + 1] = x
        out[n + 1 : 2 * n + 1] = x * x
        out[2 * n + 1 :] = x[self._iu] * x[self._ju]
        return out

    def term_names(self, feature_names: tuple[str, ...] | None = None) -> list[str]:
        """Human-readable names of the basis terms (for model inspection)."""
        n = self.n_features
        if feature_names is None:
            feature_names = tuple(f"x{i}" for i in range(n))
        if len(feature_names) != n:
            raise ValueError("feature_names length mismatch")
        names = ["1"]
        names.extend(feature_names)
        names.extend(f"{f}^2" for f in feature_names)
        names.extend(
            f"{feature_names[i]}*{feature_names[j]}"
            for i, j in zip(self._iu, self._ju, strict=True)
        )
        return names
