"""Feature extraction -- the paper's Table 2.

Twenty features per job, computed at its release date ``r_j`` from the
job description, the user's history, the user's currently-running jobs
and the wall-clock time of day / week.  The extractor is deliberately
restricted to information available in a Standard Workload Format stream
at submission time (paper Section 4.1, "minimal information").

Feature order is fixed and public (:data:`FEATURE_NAMES`); tests pin it.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from ..workload.job import Job
from .base import UserHistoryTracker

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "STATIC_FEATURE_INDICES",
    "compute_static_features",
    "extract_features",
]

_DAY = 86400.0
_WEEK = 7.0 * _DAY

#: Names of the features, in the order :func:`extract_features` emits them.
FEATURE_NAMES: tuple[str, ...] = (
    "requested_time",          # p~_j
    "last_runtime_1",          # p(k)_{j-1}
    "last_runtime_2",          # p(k)_{j-2}
    "last_runtime_3",          # p(k)_{j-3}
    "ave2_runtime",            # AVE(k)_2(p)
    "ave3_runtime",            # AVE(k)_3(p)
    "aveall_runtime",          # AVE(k)_all(p)
    "processors",              # q_j
    "ave_hist_processors",     # AVE(k)_{hist,rj}(q)
    "processors_over_avehist", # q_j / AVE(k)_{hist,rj}(q)
    "ave_running_processors",  # AVE(k)_{curr,rj}(q)
    "n_running",               # Jobs Currently Running
    "longest_running",         # Longest Current running time (so far)
    "sum_running",             # Sum Current running times (so far)
    "occupied_resources",      # Occupied Resources
    "break_time",              # time since user's last completion
    "cos_day",
    "sin_day",
    "cos_week",
    "sin_week",
)

N_FEATURES = len(FEATURE_NAMES)

#: Columns of :data:`FEATURE_NAMES` that depend only on the job stream
#: itself -- the job's own description, the per-user submission-request
#: aggregates, and the time of day/week at release -- never on runtimes,
#: completions, or anything the scheduler decides.  These are identical
#: across every cell replaying one trace and can be precomputed once.
STATIC_FEATURE_INDICES: tuple[int, ...] = (0, 7, 8, 9, 16, 17, 18, 19)


def compute_static_features(jobs: Iterable[Job]) -> dict[int, np.ndarray]:
    """Precompute the schedule-independent feature columns of a trace.

    ``jobs`` must arrive in submission order -- the order SUBMIT events
    drain, i.e. sorted by (submit_time, job_id) -- so the per-user
    request aggregates replay exactly the accumulation
    ``UserHistoryTracker.on_submit`` performs live.  Each row holds the
    :data:`STATIC_FEATURE_INDICES` values for one job, bit-identical to
    what :func:`extract_features` would compute at that job's release,
    keyed by job id.
    """
    n_submitted: dict[int, int] = {}
    sum_processors: dict[int, float] = {}
    rows: dict[int, np.ndarray] = {}
    for job in jobs:
        now = job.submit_time
        count = n_submitted.get(job.user, 0)
        total = sum_processors.get(job.user, 0.0)
        ave_hist_q = total / count if count else 0.0
        q_over_hist = job.processors / ave_hist_q if ave_hist_q > 0 else 1.0
        day_angle = 2.0 * math.pi * ((now % _DAY) / _DAY)
        week_angle = 2.0 * math.pi * ((now % _WEEK) / _WEEK)
        rows[job.job_id] = np.array(
            [
                job.requested_time,
                float(job.processors),
                ave_hist_q,
                q_over_hist,
                math.cos(day_angle),
                math.sin(day_angle),
                math.cos(week_angle),
                math.sin(week_angle),
            ],
            dtype=float,
        )
        n_submitted[job.user] = count + 1
        sum_processors[job.user] = total + job.processors
    return rows


def extract_features(
    job: Job,
    tracker: UserHistoryTracker,
    now: float,
    static: np.ndarray | None = None,
) -> np.ndarray:
    """Feature vector for ``job`` released at ``now``.

    The tracker must *not* yet include this job's own submission (call
    ``tracker.on_submit`` after extracting).  ``static`` (optional) is
    this job's precomputed row from :func:`compute_static_features`,
    valid only when ``now`` equals the job's submit time and the tracker
    has replayed exactly the preceding submissions of the same trace;
    the dynamic columns are always computed live.
    """
    state = tracker.state(job.user)
    last = tracker.last_runtimes(job.user, 3)
    last1 = last[0] if len(last) > 0 else 0.0
    last2 = last[1] if len(last) > 1 else 0.0
    last3 = last[2] if len(last) > 2 else 0.0
    n_recent = len(last)
    ave2 = (last1 + last2) / min(2, n_recent) if n_recent else 0.0
    ave3 = (last1 + last2 + last3) / min(3, n_recent) if n_recent else 0.0
    aveall = state.sum_runtimes / state.n_completed if state.n_completed else 0.0

    if static is not None:
        (
            requested_time,
            processors_f,
            ave_hist_q,
            q_over_hist,
            cos_day,
            sin_day,
            cos_week,
            sin_week,
        ) = static
    else:
        requested_time = job.requested_time
        processors_f = float(job.processors)
        ave_hist_q = (
            state.sum_processors / state.n_submitted if state.n_submitted else 0.0
        )
        q_over_hist = job.processors / ave_hist_q if ave_hist_q > 0 else 1.0
        day_angle = 2.0 * math.pi * ((now % _DAY) / _DAY)
        week_angle = 2.0 * math.pi * ((now % _WEEK) / _WEEK)
        cos_day = math.cos(day_angle)
        sin_day = math.sin(day_angle)
        cos_week = math.cos(week_angle)
        sin_week = math.sin(week_angle)

    running = state.running
    n_running = len(running)
    if n_running:
        so_far = [now - start for (start, _q) in running.values()]
        longest = max(so_far)
        total = sum(so_far)
        occupied = sum(q for (_s, q) in running.values())
        ave_curr_q = occupied / n_running
    else:
        longest = total = 0.0
        occupied = 0
        ave_curr_q = 0.0

    break_time = now - state.last_completion if state.last_completion >= 0 else 0.0

    return np.array(
        [
            requested_time,
            last1,
            last2,
            last3,
            ave2,
            ave3,
            aveall,
            processors_f,
            ave_hist_q,
            q_over_hist,
            ave_curr_q,
            float(n_running),
            longest,
            total,
            float(occupied),
            break_time,
            cos_day,
            sin_day,
            cos_week,
            sin_week,
        ],
        dtype=float,
    )
