"""Predictor interface and shared user-history tracking.

A predictor supplies the scheduler-visible running-time estimate for each
job at submission and may learn online from completions.  The engine
drives it through three hooks:

* :meth:`Predictor.predict` when a job is submitted (returns seconds);
* :meth:`Predictor.on_start` when a job begins executing;
* :meth:`Predictor.on_finish` when a job really completes (the only
  moment its actual running time becomes observable -- this is where
  online learning happens).

Predictions are clamped by the engine to ``[min_prediction,
requested_time]``: a prediction above the requested time is meaningless
because the job would be killed, and non-positive predictions are not
usable by backfilling.

:class:`UserHistoryTracker` centralises the per-user state that several
predictors and the feature extractor need (paper Table 2): completed-job
runtimes, resource-request history, currently-running jobs and the time
of the last completion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

from ..sim.results import JobRecord
from ..workload.job import Job

__all__ = ["Predictor", "UserHistoryTracker", "UserState"]


class Predictor(ABC):
    """Base class for running-time predictors."""

    #: short identifier used in reports and triple names.
    name: str = "base"

    @abstractmethod
    def predict(self, record: JobRecord, now: float) -> float:
        """Predicted running time (seconds) for a job submitted at ``now``.

        Called exactly once per job, at submission -- implementations may
        register the submission in their history state.  Probes that must
        not mutate anything (live-session ``query()``) go through
        :meth:`estimate` instead.
        """

    def estimate(self, record: JobRecord, now: float) -> float:
        """A **pure** prediction for query probes: no state is touched.

        Sessions use this to answer "where would this job land?" without
        the submission side effects of :meth:`predict`.  The default
        returns the requested time (always a valid upper bound);
        predictors with cheap read-only state override it.
        """
        return record.requested_time

    def observe(self, job: Job, runtime: float, now: float) -> None:
        """Learn from an *externally observed* completion.

        Live-session entry point: keeps per-user state hot from jobs this
        predictor never predicted (history replayed into a fresh serving
        process, completions reported by a real cluster).  The default
        routes through :meth:`on_finish` with the observed runtime
        stamped onto a throwaway record; predictors that key updates on
        their own submission-time state (e.g. pending feature vectors)
        degrade gracefully to a history-only update.
        """
        if runtime <= 0:
            raise ValueError(f"observed runtime must be > 0, got {runtime}")
        observed = job.with_updates(
            runtime=float(runtime),
            requested_time=max(job.requested_time, float(runtime)),
        )
        record = JobRecord(job=observed)
        record.predicted_runtime = observed.runtime
        self.on_finish(record, now)

    def on_start(self, record: JobRecord, now: float) -> None:
        """A job began executing.  Default: nothing."""

    def on_finish(self, record: JobRecord, now: float) -> None:
        """A job completed; its ``runtime`` is now observable."""


@dataclass
class UserState:
    """Running history for one user."""

    #: runtimes of completed jobs, most recent last (bounded window).
    recent_runtimes: deque = field(default_factory=lambda: deque(maxlen=64))
    #: count and sum over *all* completed jobs (for AVE_all).
    n_completed: int = 0
    sum_runtimes: float = 0.0
    #: count and sum of resource requests over all *submitted* jobs.
    n_submitted: int = 0
    sum_processors: float = 0.0
    #: time of this user's most recent completion; -1 before any.
    last_completion: float = -1.0
    #: currently running jobs: job_id -> (start_time, processors).
    running: dict = field(default_factory=dict)


class UserHistoryTracker:
    """Tracks the per-user quantities of the paper's Table 2 features."""

    def __init__(self) -> None:
        self._users: dict[int, UserState] = {}

    def state(self, user: int) -> UserState:
        """State for ``user`` (created on first touch)."""
        try:
            return self._users[user]
        except KeyError:
            state = UserState()
            self._users[user] = state
            return state

    @property
    def n_users(self) -> int:
        return len(self._users)

    # -- engine-event mirroring ------------------------------------------------
    def on_submit(self, job: Job, now: float) -> None:
        """Record a submission (updates resource-request history)."""
        state = self.state(job.user)
        state.n_submitted += 1
        state.sum_processors += job.processors

    def on_start(self, job: Job, now: float) -> None:
        """Record an execution start."""
        self.state(job.user).running[job.job_id] = (now, job.processors)

    def on_finish(self, job: Job, now: float, runtime: float | None = None) -> None:
        """Record a completion (updates runtime history, running set).

        ``runtime`` overrides ``job.runtime`` when the *observed* runtime
        differs from the trace value (externally completed session jobs).
        """
        if runtime is None:
            runtime = job.runtime
        state = self.state(job.user)
        state.running.pop(job.job_id, None)
        state.recent_runtimes.append(runtime)
        state.n_completed += 1
        state.sum_runtimes += runtime
        state.last_completion = now

    # -- queries used by features and baseline predictors ----------------------
    def last_runtimes(self, user: int, k: int) -> list[float]:
        """Up to ``k`` most recent completed runtimes, most recent first."""
        recent = self.state(user).recent_runtimes
        return list(recent)[-1 : -k - 1 : -1]

    def average_recent_runtime(self, user: int, k: int) -> float | None:
        """Mean of the last ``k`` completed runtimes; None if no history."""
        last = self.last_runtimes(user, k)
        if not last:
            return None
        return sum(last) / len(last)
